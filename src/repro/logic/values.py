"""The three-valued (0, 1, X) logic domain.

Zero-delay fault simulation of synchronous sequential circuits needs an
unknown value: flip-flops power up in an unknown state, and a fault is only
*detected* when the good machine and the faulty machine both carry known,
differing values at a primary output.  Every simulator in this repository
therefore computes over the domain {0, 1, X}.

Values are small integers chosen so that they double as 2-bit field codes
when gate states are packed into words (see :mod:`repro.logic.tables`):

========  =====  ========
constant  value  bit code
========  =====  ========
``ZERO``  0      ``0b00``
``ONE``   1      ``0b01``
``X``     2      ``0b10``
========  =====  ========

The code ``0b11`` is unused and never appears in a packed state.
"""

from __future__ import annotations

ZERO = 0
ONE = 1
X = 2

#: All legal logic values, in code order.
VALUES = (ZERO, ONE, X)

#: Printable name for each value, indexed by the value itself.
VALUE_NAMES = ("0", "1", "X")

_CHAR_TO_VALUE = {
    "0": ZERO,
    "1": ONE,
    "x": X,
    "X": X,
    "u": X,
    "U": X,
    "-": X,
}

# Inversion table indexed by value: NOT 0 = 1, NOT 1 = 0, NOT X = X.
_INVERT = (ONE, ZERO, X)


def is_binary(value: int) -> bool:
    """Return True when *value* is a known logic value (0 or 1)."""
    return value == ZERO or value == ONE


def invert(value: int) -> int:
    """Three-valued logical NOT."""
    return _INVERT[value]


def value_from_char(char: str) -> int:
    """Parse a single vector character (``0``, ``1``, ``x``/``X``/``u``/``-``).

    Raises :class:`ValueError` on anything else, because a silently
    misparsed test vector corrupts every downstream coverage number.
    """
    try:
        return _CHAR_TO_VALUE[char]
    except KeyError:
        raise ValueError(f"not a logic value character: {char!r}") from None


def value_to_char(value: int) -> str:
    """Format a logic value as the single character used in vector files."""
    if value not in VALUES:
        raise ValueError(f"not a logic value: {value!r}")
    return VALUE_NAMES[value]
