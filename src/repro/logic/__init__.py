"""Three-valued logic values and table-driven gate evaluation.

This package is the lowest substrate layer: the 0/1/X value domain used by
every simulator in the repository, and the packed-state lookup tables that
make concurrent fault-element evaluation a single table access, as Section 2
of Lee & Reddy (DAC 1992) requires ("the state of a gate is packed into a
word so that the output can be efficiently evaluated by table look up").
"""

from repro.logic.values import (
    ZERO,
    ONE,
    X,
    VALUES,
    VALUE_NAMES,
    is_binary,
    invert,
    value_from_char,
    value_to_char,
)
from repro.logic.tables import (
    GateType,
    evaluate,
    evaluate_packed,
    packed_table,
    pack_inputs,
    unpack_inputs,
    MAX_TABLE_ARITY,
)

__all__ = [
    "ZERO",
    "ONE",
    "X",
    "VALUES",
    "VALUE_NAMES",
    "is_binary",
    "invert",
    "value_from_char",
    "value_to_char",
    "GateType",
    "evaluate",
    "evaluate_packed",
    "packed_table",
    "pack_inputs",
    "unpack_inputs",
    "MAX_TABLE_ARITY",
]
