"""Gate types and table-driven three-valued evaluation.

Concurrent fault simulation evaluates every explicit faulty gate one by one,
so gate evaluation speed dominates (Section 2 of the paper: "Fast evaluation
is extremely important in concurrent fault simulation ... normally this is
achieved through table look up").  This module provides both:

* :func:`evaluate` — a direct three-valued evaluator over an input tuple,
  used by reference simulators and to *construct* lookup tables, and
* :func:`packed_table` / :func:`evaluate_packed` — per-(type, arity) lookup
  tables indexed by a packed input word, 2 bits per pin, used on the hot
  paths of the concurrent engine and by macro gates.

Tables are built lazily and memoized; an ``AND`` table of arity 4 has
``1 << 8`` entries and is built once per process.
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Callable, Sequence, Tuple

from repro.logic.values import ONE, VALUES, X, ZERO, invert

#: Widest gate for which a packed lookup table is built.  Wider gates fall
#: back to iterative evaluation; macro extraction (``repro.circuit.macro``)
#: also respects this bound when growing fanout-free regions.
MAX_TABLE_ARITY = 6


class GateType(enum.Enum):
    """Primitive element types of the netlist model.

    ``INPUT`` and ``DFF`` are *sources* for the combinational network: their
    output is set by the test vector or by the clock update, never by
    combinational evaluation.  ``MACRO`` gates (created by macro extraction)
    evaluate through an explicit table attached to the gate rather than
    through this module's per-type tables.
    """

    INPUT = "INPUT"
    DFF = "DFF"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    MACRO = "MACRO"


#: Gate types whose output is driven by combinational evaluation.
COMBINATIONAL_TYPES = frozenset(
    {
        GateType.BUF,
        GateType.NOT,
        GateType.AND,
        GateType.NAND,
        GateType.OR,
        GateType.NOR,
        GateType.XOR,
        GateType.XNOR,
        GateType.CONST0,
        GateType.CONST1,
        GateType.MACRO,
    }
)

#: Gate types acting as level-0 sources of the combinational network.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.DFF})

_INVERTED_OF = {
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
    GateType.NOT: GateType.BUF,
}


def _eval_and(inputs: Sequence[int]) -> int:
    result = ONE
    for value in inputs:
        if value == ZERO:
            return ZERO
        if value == X:
            result = X
    return result


def _eval_or(inputs: Sequence[int]) -> int:
    result = ZERO
    for value in inputs:
        if value == ONE:
            return ONE
        if value == X:
            result = X
    return result


def _eval_xor(inputs: Sequence[int]) -> int:
    parity = ZERO
    for value in inputs:
        if value == X:
            return X
        parity ^= value
    return parity


def evaluate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate *gate_type* over three-valued *inputs*.

    This is the reference semantics for every primitive type; the packed
    tables are generated from it, so the two can never drift apart.
    """
    if gate_type is GateType.AND:
        return _eval_and(inputs)
    if gate_type is GateType.NAND:
        return invert(_eval_and(inputs))
    if gate_type is GateType.OR:
        return _eval_or(inputs)
    if gate_type is GateType.NOR:
        return invert(_eval_or(inputs))
    if gate_type is GateType.XOR:
        return _eval_xor(inputs)
    if gate_type is GateType.XNOR:
        return invert(_eval_xor(inputs))
    if gate_type is GateType.BUF:
        if len(inputs) != 1:
            raise ValueError("BUF takes exactly one input")
        return inputs[0]
    if gate_type is GateType.NOT:
        if len(inputs) != 1:
            raise ValueError("NOT takes exactly one input")
        return invert(inputs[0])
    if gate_type is GateType.CONST0:
        return ZERO
    if gate_type is GateType.CONST1:
        return ONE
    raise ValueError(f"{gate_type} is not combinationally evaluable here")


def pack_inputs(values: Sequence[int]) -> int:
    """Pack three-valued input values into a word, 2 bits per pin.

    Pin ``i`` occupies bits ``2*i`` and ``2*i + 1``; the codes are the
    values themselves (see :mod:`repro.logic.values`).
    """
    packed = 0
    for position, value in enumerate(values):
        packed |= value << (2 * position)
    return packed


def unpack_inputs(packed: int, arity: int) -> Tuple[int, ...]:
    """Inverse of :func:`pack_inputs` for a gate of the given *arity*."""
    return tuple((packed >> (2 * position)) & 0b11 for position in range(arity))


def build_table(function: Callable[[Tuple[int, ...]], int], arity: int) -> Tuple[int, ...]:
    """Build a packed-input lookup table from an arbitrary evaluator.

    Entries whose packed index contains the unused code ``0b11`` on any pin
    are filled with ``X``; they are unreachable from legal packed states but
    keeping them defined makes the table total and indexing branch-free.
    Used both for the primitive types below and for macro truth tables
    (including the *faulty* tables that represent functional faults).
    """
    if arity > MAX_TABLE_ARITY:
        raise ValueError(f"arity {arity} exceeds MAX_TABLE_ARITY={MAX_TABLE_ARITY}")
    size = 1 << (2 * arity)
    table = [X] * size
    for index in range(size):
        inputs = unpack_inputs(index, arity)
        if any(value not in VALUES for value in inputs):
            continue
        table[index] = function(inputs)
    return tuple(table)


@lru_cache(maxsize=None)
def packed_table(gate_type: GateType, arity: int) -> Tuple[int, ...]:
    """Memoized packed-input lookup table for a primitive gate type."""
    return build_table(lambda inputs: evaluate(gate_type, inputs), arity)


def evaluate_packed(gate_type: GateType, packed: int, arity: int) -> int:
    """Table-lookup evaluation of a primitive gate from a packed input word.

    Falls back to unpack-and-iterate for gates wider than
    :data:`MAX_TABLE_ARITY`.
    """
    if arity <= MAX_TABLE_ARITY:
        return packed_table(gate_type, arity)[packed]
    return evaluate(gate_type, unpack_inputs(packed, arity))


def inverted_base(gate_type: GateType) -> GateType:
    """Return the non-inverting counterpart of an inverting type, if any.

    Useful for fault-equivalence collapsing (a NAND collapses like an AND
    followed by an inverter).
    """
    return _INVERTED_OF.get(gate_type, gate_type)
