"""Common result and work-accounting types shared by every fault simulator.

All engines (concurrent variants, PROOFS baseline, serial oracle) return a
:class:`FaultSimResult`, so the harness, the cross-validation tests and the
benchmark tables treat them interchangeably.  Besides detections, a result
carries deterministic *work counters* — gate evaluations, fault-element
visits, events — which let the benchmarks compare algorithms independently
of interpreter noise, and a memory model in the units the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.faults.model import Fault

#: One observed output mismatch: ``(cycle, po_position)`` with the cycle
#: 1-based and ``po_position`` the index into ``circuit.outputs``.  Only
#: definite binary disagreements with the good machine qualify — an
#: unknown on either side never enters a response.
Failure = Tuple[int, int]

if TYPE_CHECKING:
    from repro.obs.metrics import Telemetry


@dataclass
class WorkCounters:
    """Deterministic operation counts accumulated during one run."""

    cycles: int = 0
    good_evaluations: int = 0
    fault_evaluations: int = 0
    element_visits: int = 0
    events: int = 0
    gates_scheduled: int = 0

    def total_work(self) -> int:
        """A single scalar summarizing algorithmic effort."""
        return (
            self.good_evaluations
            + self.fault_evaluations
            + self.element_visits
            + self.events
        )


@dataclass
class MemoryStats:
    """Fault-element memory accounting in the paper's units.

    ``element_bytes``/``descriptor_bytes`` model the C implementation's
    footprint (a fault element is an id, a packed state word and a pointer;
    a descriptor holds the global per-fault record), so the megabyte figures
    are comparable in *shape* to the paper's tables even though the Python
    objects themselves are larger.
    """

    live_elements: int = 0
    peak_elements: int = 0
    num_descriptors: int = 0
    element_bytes: int = 12
    descriptor_bytes: int = 20

    def note_elements(self, live: int) -> None:
        self.live_elements = live
        if live > self.peak_elements:
            self.peak_elements = live

    @property
    def peak_bytes(self) -> int:
        return (
            self.peak_elements * self.element_bytes
            + self.num_descriptors * self.descriptor_bytes
        )

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / 1_000_000.0


@dataclass
class FaultSimResult:
    """Outcome of simulating one fault universe against one test sequence."""

    engine: str
    circuit_name: str
    num_faults: int
    num_vectors: int
    detected: Dict[Fault, int] = field(default_factory=dict)
    #: Faults whose machine showed an unknown value at an output whose good
    #: value was known (first such cycle).  A fault may appear here *and*
    #: in ``detected`` — potential detection often precedes the hard one.
    potentially_detected: Dict[Fault, int] = field(default_factory=dict)
    counters: WorkCounters = field(default_factory=WorkCounters)
    memory: MemoryStats = field(default_factory=MemoryStats)
    wall_seconds: float = 0.0
    #: True when the run was stopped by a budget/watchdog before consuming
    #: the whole test sequence; ``truncation_reason`` says which limit hit.
    truncated: bool = False
    truncation_reason: Optional[str] = None
    #: Engine-ladder degradations behind this result, oldest first: dicts
    #: with ``engine``, ``to``, ``reason`` (see ``repro.robust.ladder``).
    fallbacks: List[dict] = field(default_factory=list)
    #: Window counts per packing axis ("fault"/"pattern") for the vector
    #: engine (see ``repro.vector``); empty for every other engine.
    axis_windows: Dict[str, int] = field(default_factory=dict)
    #: Full output responses per fault — every ``(cycle, po_position)``
    #: binary mismatch against the good machine, in cycle order — recorded
    #: only when the run was asked to (``record_responses``), which also
    #: disables fault dropping.  ``None`` for ordinary runs; the diagnosis
    #: subsystem's dictionary builder is the consumer.
    responses: Optional[Dict[Fault, Tuple[Failure, ...]]] = None
    #: Recorded run telemetry (:class:`repro.obs.Telemetry`) when the run
    #: was traced with a recording tracer; None otherwise.  The import is
    #: type-checking-only so this module stays import-light at runtime
    #: (obs imports result, not back).
    telemetry: Optional[Telemetry] = None

    @property
    def num_detected(self) -> int:
        return len(self.detected)

    @property
    def coverage(self) -> float:
        """Fault coverage as a fraction in [0, 1]."""
        if self.num_faults == 0:
            return 0.0
        return self.num_detected / self.num_faults

    @property
    def potential_coverage(self) -> float:
        """Coverage counting potential detections (hard ∪ potential)."""
        if self.num_faults == 0:
            return 0.0
        covered = set(self.detected) | set(self.potentially_detected)
        return len(covered) / self.num_faults

    def detection_profile(self) -> Dict[int, int]:
        """Cycle -> number of first detections at that cycle."""
        profile: Dict[int, int] = {}
        for cycle in self.detected.values():
            profile[cycle] = profile.get(cycle, 0) + 1
        return dict(sorted(profile.items()))

    def undetected(self, universe) -> list:
        """Faults from *universe* this run never detected."""
        return [fault for fault in universe if fault not in self.detected]

    def summary(self) -> str:
        text = (
            f"{self.engine}: {self.num_detected}/{self.num_faults} faults "
            f"({100.0 * self.coverage:.2f}%) in {self.num_vectors} vectors, "
            f"{self.wall_seconds:.3f}s, peak {self.memory.peak_megabytes:.3f} MB"
        )
        if self.truncated:
            text += f" [truncated: {self.truncation_reason}]"
        if self.fallbacks:
            steps = " -> ".join(
                [self.fallbacks[0]["engine"]] + [f["to"] for f in self.fallbacks]
            )
            text += f" [degraded: {steps}]"
        if self.axis_windows:
            mix = ", ".join(
                f"{axis}={count}" for axis, count in sorted(self.axis_windows.items())
            )
            text += f" [axis windows: {mix}]"
        return text
