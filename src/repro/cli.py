"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``stats``           circuit statistics and fault counts (Table 2 shape)
``lint``            static netlist diagnostics (``file:line``-located)
``simulate``        stuck-at fault simulation with any engine
``transition``      transition-fault simulation (two-pass concurrent)
``generate-tests``  coverage-directed test generation
``build-dictionary`` build a fault-dictionary artifact (full no-drop sim)
``diagnose``        rank fault candidates for observed tester failures
``tables``          regenerate the paper's evaluation tables
``serve``           run the fault-simulation service (REST API + workers)
``inspect``         render a recorded trace directory (timeline, balance)

``lint`` exits 0 when the netlist is clean at the chosen severity, 1 when
it has findings and 2 on usage or parse errors.  ``simulate``,
``transition`` and ``tables`` accept ``--prune-untestable`` (drop
structurally untestable faults; survivor detections are bit-identical),
``--collapse`` (simulate one representative per fault-equivalence class
of the *full* universe and expand detections back — bit-identical to
simulating the whole universe; ``--collapse dominance`` adds
fanout-free-region dominators with a serial-oracle audit of the
conservative expansions) and ``--sanitize`` (fault-list invariant checks
at every phase boundary).

Circuits are named (``s27``, ``s298`` ... — synthetic stand-ins except the
embedded real ``s27``) or paths to ISCAS-89 ``.bench`` files.  Test sets
are text files with one ``0/1/X`` vector per line (PI order), produced by
``generate-tests`` or by hand.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analyze.collapse import CollapseAuditError
from repro.circuit.library import load
from repro.circuit.netlist import NetlistError
from repro.circuit.stats import circuit_stats
from repro.faults.transition import all_transition_faults
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.harness.reporting import format_table
from repro.harness.runner import (
    ENGINE_NAMES,
    WORD_ENGINES,
    engine_options,
    run_stuck_at,
    run_transition,
)
from repro.parallel.sharding import STRATEGIES
from repro.patterns.atpg import generate_tests
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import format_vectors, parse_vectors
from repro.robust import (
    Budget,
    CampaignInterrupted,
    DEFAULT_LADDER,
    TableCampaign,
    VECTOR_LADDER,
    config_fingerprint,
    run_checkpointed,
    run_with_ladder,
)


def _load_tests(args, circuit):
    if args.tests:
        with open(args.tests) as handle:
            return parse_vectors(handle.read(), circuit)
    return random_sequence(circuit, args.random_patterns, seed=args.seed)


def _make_tracer(args):
    """Tracer for the run, or ``None`` when no observability flag is set.

    Per-gate event records are only collected when a trace file will
    actually receive them; ``--profile`` alone needs just the aggregates.
    Parallel runs (``--jobs`` > 1) record inside every worker and merge —
    the in-process tracer sees nothing there, but returning one still
    signals the runner to arm worker-side telemetry.
    """
    if not (args.trace or args.profile):
        return None
    from repro.obs import RecordingTracer

    return RecordingTracer(record_events=bool(args.trace) and args.jobs == 1)


def _parallel_trace_dir(args) -> Optional[str]:
    """Under ``--jobs`` > 1, ``--trace`` names a trace *directory*."""
    if args.jobs > 1 and args.trace:
        return args.trace
    return None


class _CliTrace:
    """Root-span bookkeeping for a traced parallel CLI run.

    The CLI is the trace's entry point, so it mints the
    :class:`~repro.obs.TraceContext` whose root span id *is* the trace id
    and emits the root span around the whole run; the campaign and shard
    workers parent everything under it.
    """

    def __init__(self, trace_dir: Optional[str]) -> None:
        self.trace_dir = trace_dir
        self.ctx = None
        self._writer = None
        self._start = 0.0
        if trace_dir is not None:
            import time

            from repro.obs import SpanWriter, TraceContext

            self.ctx = TraceContext.new_trace()
            self._writer = SpanWriter(trace_dir, label="cli")
            self._start = time.time()

    def finish(self, name: str, **attrs) -> None:
        if self._writer is None:
            return
        import time

        self._writer.emit(name, self.ctx, self._start, time.time(), **attrs)
        self._writer.close()


def _emit_observability(args, result, circuit, tracer) -> None:
    if not (args.trace or args.profile):
        return
    from repro.obs import profile_report, write_jsonl_trace

    if args.trace:
        if args.jobs > 1:
            print(
                f"# wrote span trace to {args.trace}/ "
                f"(render with: python -m repro inspect {args.trace})",
                file=sys.stderr,
            )
        else:
            count = write_jsonl_trace(tracer.records, args.trace)
            print(f"# wrote {count} trace records to {args.trace}", file=sys.stderr)
    if args.profile:
        if result.telemetry is None:
            print(f"# engine {result.engine!r} recorded no telemetry", file=sys.stderr)
        else:
            print()
            print(profile_report(result.telemetry, circuit=circuit))


def _add_circuit_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="benchmark name or .bench file path")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="synthetic circuit scale (default 1.0)"
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a JSONL event trace of the run to PATH; with --jobs K>1 "
        "PATH is a trace directory receiving every process's span files "
        "(render with `repro inspect PATH`)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a profile report (phase times, hot gates, drop timeline)",
    )


def _add_robust_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write campaign progress here; resumable with --resume",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the --checkpoint file instead of starting over",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        metavar="N",
        help="cycles between periodic checkpoint writes (default 64)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        metavar="S",
        help="wall-clock budget; a breached run stops cleanly, flagged truncated",
    )
    parser.add_argument(
        "--max-cycles", type=int, metavar="N", help="clock-cycle budget"
    )
    parser.add_argument(
        "--max-memory-mb",
        type=float,
        metavar="MB",
        help="modelled fault-element memory budget",
    )


def _make_budget(args) -> Optional[Budget]:
    if not (args.max_seconds or args.max_cycles or args.max_memory_mb):
        return None
    return Budget(
        max_wall_seconds=args.max_seconds,
        max_cycles=args.max_cycles,
        max_memory_bytes=(
            int(args.max_memory_mb * 2**20) if args.max_memory_mb else None
        ),
    )


def _check_robust_args(args) -> None:
    if args.resume and not args.checkpoint:
        raise ValueError("--resume requires --checkpoint FILE")


def _checked_word_width(args):
    """Validate ``--word-width`` against the engine; None when unset."""
    width = getattr(args, "word_width", None)
    if width is None:
        return None
    from repro.vector.packing import validate_word_width

    if args.engine not in WORD_ENGINES:
        raise ValueError(
            f"--word-width only applies to the word-packed engines "
            f"{WORD_ENGINES}, not {args.engine!r}"
        )
    return validate_word_width(width)


def _add_parallel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="K",
        help="shard the fault universe over K worker processes (default 1)",
    )
    parser.add_argument(
        "--shard-strategy",
        choices=STRATEGIES,
        default="round-robin",
        help="fault partition strategy under --jobs (default round-robin)",
    )


def _check_parallel_args(args) -> None:
    if args.jobs < 1:
        raise ValueError("--jobs must be >= 1")
    if args.jobs > 1 and getattr(args, "ladder", False):
        raise ValueError("--ladder audits a single engine; use --jobs 1")


def _add_analyze_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--prune-untestable",
        action="store_true",
        help="drop provably untestable faults (structural analysis) before "
        "simulating; detections on the surviving faults are bit-identical",
    )
    parser.add_argument(
        "--collapse",
        nargs="?",
        const="equivalence",
        choices=("equivalence", "dominance"),
        default=None,
        metavar="MODE",
        help="simulate one representative per fault class of the full "
        "universe, then expand detections back through the class map "
        "(bit-identical to simulating the whole universe); 'dominance' "
        "additionally drops fanout-free-region dominators, expanding them "
        "conservatively with a serial-oracle audit (default MODE: "
        "equivalence)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="check fault-list invariants at every phase boundary "
        "(concurrent engines only; debugging aid, does not change results)",
    )


def _analysis_faults(args, circuit, transition: bool):
    """Resolve ``--prune-untestable``/``--collapse`` into a fault list.

    Returns ``(faults, collapsed)``: the list the engine should simulate
    (``None`` means the engine builds its default universe itself) and the
    :class:`~repro.analyze.CollapsedUniverse` expansion map (``None``
    without ``--collapse``).  Composition order is prune-then-collapse:
    pruning drops whole classes (equivalent faults are untestable
    together), and the collapse targets the pruned *full* universe so the
    expanded result is bit-identical to simulating every survivor.
    """
    collapse_mode = getattr(args, "collapse", None)
    faults = None
    if collapse_mode is not None:
        faults = (
            all_transition_faults(circuit)
            if transition
            else all_stuck_at_faults(circuit)
        )
    if args.prune_untestable:
        from repro.analyze import prune_untestable

        universe = faults
        if universe is None:
            universe = (
                all_transition_faults(circuit)
                if transition
                else stuck_at_universe(circuit)
            )
        report = prune_untestable(circuit, universe)
        print(f"# {report.summary()}", file=sys.stderr)
        faults = report.kept
    if collapse_mode is None:
        return faults, None
    from repro.analyze import collapse_universe

    collapsed = collapse_universe(
        circuit, faults, mode=collapse_mode, transition=transition
    )
    print(f"# {collapsed.summary()}", file=sys.stderr)
    return list(collapsed.representatives), collapsed


def _expand_result(circuit, tests, collapsed, result):
    """Expand a representatives-only result onto the full universe.

    Dominance-mode runs confirm every proposed inheritance against the
    serial oracle inside :func:`repro.analyze.expand_verified`; refuted
    proposals are dropped (left undetected) rather than emitted, and the
    confirmation tally is reported on stderr.
    """
    if collapsed is None:
        return result
    if collapsed.implied_by:
        from repro.analyze import expand_verified

        expanded, report = expand_verified(
            circuit, tests.vectors, collapsed, result
        )
        print(f"# {report.summary()}", file=sys.stderr)
        return expanded
    return collapsed.expand(result)


def _add_test_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--tests", help="vector file (one 0/1/X vector per line)")
    parser.add_argument(
        "--random-patterns",
        type=int,
        default=256,
        help="random vector count when no --tests file is given (default 256)",
    )
    parser.add_argument("--seed", type=int, default=1992)


def cmd_stats(args) -> int:
    from repro.analyze import collapse_universe

    circuit = load(args.circuit, scale=args.scale)
    stats = circuit_stats(circuit)
    full = all_stuck_at_faults(circuit)
    equivalence = collapse_universe(circuit)
    dominance = collapse_universe(circuit, mode="dominance")
    transition = all_transition_faults(circuit)
    print(
        format_table(
            ["metric", "value"],
            [
                ("primary inputs", stats.num_inputs),
                ("primary outputs", stats.num_outputs),
                ("flip-flops", stats.num_dffs),
                ("combinational gates", stats.num_gates),
                ("levels", stats.num_levels),
                ("lines", stats.num_lines),
                ("stuck-at faults (full universe)", len(full)),
                ("collapsed stuck-at faults", equivalence.num_representatives),
                (
                    "equivalence collapse ratio",
                    f"{100.0 * equivalence.ratio:.1f}%",
                ),
                (
                    "dominance representatives",
                    dominance.num_representatives,
                ),
                ("dominance collapse ratio", f"{100.0 * dominance.ratio:.1f}%"),
                ("transition faults", len(transition)),
            ],
            title=f"{circuit.name}",
        )
    )
    return 0


def cmd_lint(args) -> int:
    """Static netlist diagnostics; exit 0 clean / 1 findings / 2 errors."""
    from repro.analyze import has_findings, lint_bench_text, lint_circuit, lint_path

    if os.path.isfile(args.circuit):
        name = args.circuit
        diagnostics = lint_path(args.circuit)
    elif args.circuit == "s27":
        from repro.circuit.library import S27_BENCH

        name = "s27"
        diagnostics = lint_bench_text(S27_BENCH, name)
    else:
        circuit = load(args.circuit, scale=args.scale)
        name = circuit.name
        diagnostics = lint_circuit(circuit)
    if args.format == "json":
        from repro.obs import write_diagnostics_json

        write_diagnostics_json(diagnostics, sys.stdout)
    else:
        from repro.obs import format_diagnostics

        print(format_diagnostics(diagnostics, name))
        try:
            circuit = load(args.circuit, scale=args.scale)
        except (NetlistError, FileNotFoundError, ValueError):
            circuit = None  # the diagnostics above already tell the story
        if circuit is not None:
            from repro.analyze import collapse_universe

            print(f"# {collapse_universe(circuit).summary()}", file=sys.stderr)
    return 1 if has_findings(diagnostics, fail_on=args.fail_on) else 0


def cmd_simulate(args) -> int:
    _check_robust_args(args)
    _check_parallel_args(args)
    word_width = _checked_word_width(args)
    circuit = load(args.circuit, scale=args.scale)
    tests = _load_tests(args, circuit)
    tracer = _make_tracer(args)
    budget = _make_budget(args)
    faults, collapsed = _analysis_faults(args, circuit, transition=False)
    fingerprint_extra = (
        collapsed.fingerprint_material() if collapsed is not None else ()
    )
    options = None
    if args.sanitize:
        if args.ladder:
            raise ValueError(
                "--ladder picks its own engines; --sanitize needs a fixed one"
            )
        base = engine_options(args.engine)
        if base is None:
            raise ValueError(
                f"--sanitize requires a concurrent engine (csim*), not {args.engine!r}"
            )
        options = base.with_(sanitize=True)
    cli_trace = _CliTrace(_parallel_trace_dir(args))
    if args.ladder:
        if args.checkpoint:
            raise ValueError("--ladder and --checkpoint are mutually exclusive")
        # --engine vsim puts the vector kernel on top as the fast rung;
        # any other engine choice keeps the default csim-MV-first ladder.
        result = run_with_ladder(
            circuit,
            tests,
            VECTOR_LADDER if args.engine == "vsim" else DEFAULT_LADDER,
            faults=faults,
            tracer=tracer,
            budget=budget,
            word_width=word_width,
        )
    elif args.checkpoint and args.jobs > 1:
        from repro.parallel import run_parallel

        result = run_parallel(
            circuit,
            tests,
            args.engine,
            faults=faults,
            options=options,
            jobs=args.jobs,
            shard_strategy=args.shard_strategy,
            budget=budget,
            telemetry=args.profile,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            trace_dir=cli_trace.trace_dir,
            trace_ctx=cli_trace.ctx,
            record_events=cli_trace.trace_dir is not None,
            word_width=word_width,
            fingerprint_extra=fingerprint_extra,
        )
    elif args.checkpoint:
        result = run_checkpointed(
            circuit,
            tests,
            args.engine,
            faults=faults,
            options=options,
            tracer=tracer,
            budget=budget,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            word_width=word_width,
            fingerprint_extra=fingerprint_extra,
        )
    else:
        result = run_stuck_at(
            circuit,
            tests,
            args.engine,
            faults=faults,
            options=options,
            tracer=tracer,
            budget=budget,
            jobs=args.jobs,
            shard_strategy=args.shard_strategy,
            trace_dir=cli_trace.trace_dir,
            trace_ctx=cli_trace.ctx,
            record_events=cli_trace.trace_dir is not None,
            word_width=word_width,
        )
    cli_trace.finish(
        f"simulate {circuit.name}", engine=args.engine, jobs=args.jobs
    )
    result = _expand_result(circuit, tests, collapsed, result)
    print(result.summary())
    if args.verbose:
        from repro.faults.model import fault_name

        for fault, cycle in sorted(result.detected.items(), key=lambda kv: kv[1]):
            print(f"  cycle {cycle:5}: {fault_name(circuit, fault)}")
    _emit_observability(args, result, circuit, tracer)
    return 0


def cmd_transition(args) -> int:
    _check_robust_args(args)
    _check_parallel_args(args)
    circuit = load(args.circuit, scale=args.scale)
    tests = _load_tests(args, circuit)
    tracer = _make_tracer(args)
    budget = _make_budget(args)
    faults, collapsed = _analysis_faults(args, circuit, transition=True)
    fingerprint_extra = (
        collapsed.fingerprint_material() if collapsed is not None else ()
    )
    options = None
    if args.sanitize:
        from repro.concurrent.options import SimOptions

        options = SimOptions(split_lists=True, sanitize=True)
    cli_trace = _CliTrace(_parallel_trace_dir(args))
    if args.checkpoint and args.jobs > 1:
        from repro.parallel import run_parallel

        result = run_parallel(
            circuit,
            tests,
            transition=True,
            faults=faults,
            options=options,
            jobs=args.jobs,
            shard_strategy=args.shard_strategy,
            budget=budget,
            telemetry=args.profile,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            trace_dir=cli_trace.trace_dir,
            trace_ctx=cli_trace.ctx,
            record_events=cli_trace.trace_dir is not None,
            fingerprint_extra=fingerprint_extra,
        )
    elif args.checkpoint:
        result = run_checkpointed(
            circuit,
            tests,
            transition=True,
            faults=faults,
            options=options,
            tracer=tracer,
            budget=budget,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            checkpoint_every=args.checkpoint_every,
            fingerprint_extra=fingerprint_extra,
        )
    else:
        result = run_transition(
            circuit,
            tests,
            faults=faults,
            tracer=tracer,
            budget=budget,
            jobs=args.jobs,
            shard_strategy=args.shard_strategy,
            sanitize=args.sanitize,
            trace_dir=cli_trace.trace_dir,
            trace_ctx=cli_trace.ctx,
            record_events=cli_trace.trace_dir is not None,
        )
    cli_trace.finish(f"transition {circuit.name}", jobs=args.jobs)
    result = _expand_result(circuit, tests, collapsed, result)
    print(result.summary())
    _emit_observability(args, result, circuit, tracer)
    return 0


def _parse_failures(kind: str, text: str):
    """``--failures`` syntax -> validated observed failures.

    Full-response queries are comma-separated ``CYCLE:OUTPUT`` pairs
    (1-based cycle, 0-based primary-output position); pass/fail queries
    are comma-separated failing cycle numbers.
    """
    from repro.diagnosis.store import parse_observed

    items: list = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if kind == "full":
            if ":" not in token:
                raise ValueError(
                    "--failures for a full-response dictionary takes "
                    f"CYCLE:OUTPUT pairs, got {token!r}"
                )
            cycle, position = token.split(":", 1)
            items.append([int(cycle), int(position)])
        else:
            items.append(int(token))
    return parse_observed(kind, items)


def _dictionary_for(args, circuit, tests):
    """The query's dictionary: the ``--dictionary`` artifact if it exists,
    else a fresh build — written back to the artifact path when given."""
    from repro.diagnosis import build_responses
    from repro.diagnosis.store import (
        decode_dictionary,
        encode_dictionary,
        read_dictionary,
        write_dictionary,
    )

    path = getattr(args, "dictionary", None)
    if path and os.path.exists(path):
        print(f"# dictionary: loaded from {path}", file=sys.stderr)
        return decode_dictionary(read_dictionary(path), kind=args.kind)
    collapse = None if args.no_collapse else "equivalence"
    responses = build_responses(
        circuit,
        tests,
        kind=args.kind,
        engine=args.engine,
        collapse=collapse,
        jobs=args.jobs,
        shard_strategy=args.shard_strategy,
        checkpoint_path=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
        checkpoint_every=getattr(args, "checkpoint_every", 64),
        budget=_make_budget(args) if hasattr(args, "max_seconds") else None,
        word_width=_checked_word_width(args),
    )
    blob = encode_dictionary(
        circuit.name, len(tests), responses, args.kind, collapse=collapse
    )
    if path:
        write_dictionary(path, blob)
        print(f"# dictionary: built and written to {path}", file=sys.stderr)
    return decode_dictionary(blob)


def cmd_build_dictionary(args) -> int:
    """Build a fault dictionary and write it as a ``repro-dict/1`` artifact."""
    _check_robust_args(args)
    _check_parallel_args(args)
    circuit = load(args.circuit, scale=args.scale)
    tests = _load_tests(args, circuit)
    from repro.diagnosis import build_responses
    from repro.diagnosis.store import encode_dictionary, read_manifest, write_dictionary

    collapse = None if args.no_collapse else "equivalence"
    responses = build_responses(
        circuit,
        tests,
        kind=args.kind,
        engine=args.engine,
        collapse=collapse,
        jobs=args.jobs,
        shard_strategy=args.shard_strategy,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        checkpoint_every=args.checkpoint_every,
        budget=_make_budget(args),
        word_width=_checked_word_width(args),
    )
    blob = encode_dictionary(
        circuit.name, len(tests), responses, args.kind, collapse=collapse
    )
    write_dictionary(args.output, blob)
    manifest = read_manifest(blob)
    print(
        f"{args.output}: dictionary[{manifest['kind']}] for "
        f"{manifest['circuit']}: {manifest['num_detected']}/"
        f"{manifest['num_faults']} faults detected over "
        f"{manifest['num_vectors']} vectors ({len(blob)} bytes)"
    )
    return 0


def cmd_diagnose(args) -> int:
    """Rank dictionary candidates for observed failures; optionally explain.

    Prints the canonical ``repro-diagnosis/1`` document — byte-identical
    to what ``POST /diagnose`` returns for the same query.
    """
    _check_robust_args(args)
    _check_parallel_args(args)
    circuit = load(args.circuit, scale=args.scale)
    tests = _load_tests(args, circuit)
    from repro.diagnosis.store import diagnosis_report

    observed = _parse_failures(args.kind, args.failures)
    dictionary = _dictionary_for(args, circuit, tests)
    body = diagnosis_report(
        circuit,
        tests,
        dictionary,
        observed,
        top=args.top,
        explain=args.explain,
    )
    sys.stdout.buffer.write(body)
    sys.stdout.buffer.flush()
    if args.explain:
        import json as _json

        document = _json.loads(body)
        if "explain" in document:
            print(f"\n{document['explain']['text']}", file=sys.stderr)
    return 0


def cmd_generate_tests(args) -> int:
    circuit = load(args.circuit, scale=args.scale)
    tests, coverage = generate_tests(
        circuit, effort=args.effort, seed=args.seed, target_coverage=args.target
    )
    text = format_vectors(tests)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    print(
        f"# {len(tests)} vectors, {100 * coverage:.2f}% stuck-at coverage",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args) -> int:
    """Boot the fault-simulation service and serve until interrupted.

    SIGTERM triggers a graceful drain: submissions answer 503 +
    Retry-After, ``/healthz`` reports ``draining``, in-flight batches
    finish (or checkpoint), and the process exits once the worker pool
    retires or the drain grace expires — whichever comes first.
    """
    import signal
    import tempfile
    import threading

    from repro.serve import FaultSimService, ServeConfig, make_server
    from repro.serve.api import ServeHandler

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-serve-")
    config = ServeConfig(
        state_dir=state_dir,
        queue_limit=args.queue_limit,
        workers=args.workers,
        max_batch=args.max_batch,
        checkpoint_every=args.checkpoint_every,
        max_seconds_per_job=args.max_seconds_per_job,
        cache_results=not args.no_cache,
        trace_dir=args.trace_dir,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        retry_backoff_base=args.retry_backoff,
    )
    service = FaultSimService(config)
    recovered = service.recover()
    if recovered:
        print(f"# recovered {recovered} unfinished job(s)", file=sys.stderr)
    if args.requeue_dead:
        resurrected = service.requeue_dead()
        if resurrected:
            print(
                f"# resurrected {resurrected} dead-lettered job(s)", file=sys.stderr
            )
    service.start()
    server = make_server(service, host=args.host, port=args.port)
    if args.verbose:
        ServeHandler.verbose = True

    def _drain_then_shutdown() -> None:
        service.begin_drain()
        service.await_drained(timeout=args.drain_grace)
        server.shutdown()

    def _on_sigterm(signum, frame) -> None:
        print("# SIGTERM: draining", file=sys.stderr)
        threading.Thread(
            target=_drain_then_shutdown, name="serve-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _on_sigterm)
    host, port = server.server_address[:2]
    print(f"# repro serve: http://{host}:{port} "
          f"({config.workers} worker(s), state in {state_dir})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
    return 0


def cmd_inspect(args) -> int:
    """Render a recorded trace directory: timeline, balance, churn."""
    from repro.obs import inspect_trace

    if not os.path.isdir(args.trace_dir):
        raise ValueError(f"{args.trace_dir}: not a trace directory")
    print(
        inspect_trace(
            args.trace_dir,
            trace_id=args.trace_id,
            flamegraph=args.flamegraph,
            top_k=args.top,
            columns=args.columns,
        )
    )
    return 0


def cmd_tables(args) -> int:
    from repro.harness import tables

    _check_robust_args(args)
    if args.jobs < 1:
        raise ValueError("--jobs must be >= 1")
    campaign = None
    if args.checkpoint:
        fingerprint = config_fingerprint(
            "tables",
            args.scale,
            bool(args.quick),
            bool(args.deterministic),
            bool(args.prune_untestable),
            bool(args.sanitize),
            args.collapse or "",
        )
        campaign = TableCampaign(
            args.checkpoint, resume=args.resume, fingerprint=fingerprint
        )
    print(
        tables.all_tables(
            scale=args.scale,
            quick=args.quick,
            campaign=campaign,
            deterministic=args.deterministic,
            jobs=args.jobs,
            prune_untestable=args.prune_untestable,
            collapse=args.collapse,
            sanitize=args.sanitize,
        )
    )
    return 0


def package_version() -> str:
    """The installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - Python < 3.8
        pass
    from repro import __version__

    return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Concurrent fault simulation for synchronous sequential "
        "circuits (Lee & Reddy, DAC 1992).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="circuit statistics and fault counts")
    _add_circuit_arg(stats)
    stats.set_defaults(handler=cmd_stats)

    lint = commands.add_parser(
        "lint", help="static netlist diagnostics (undriven nets, cycles, ...)"
    )
    _add_circuit_arg(lint)
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "info"),
        default="error",
        help="lowest severity that makes the exit code 1 (default error)",
    )
    lint.set_defaults(handler=cmd_lint)

    simulate = commands.add_parser("simulate", help="stuck-at fault simulation")
    _add_circuit_arg(simulate)
    _add_test_args(simulate)
    simulate.add_argument(
        "--engine", choices=ENGINE_NAMES, default="csim-MV", help="default csim-MV"
    )
    simulate.add_argument(
        "--word-width",
        type=int,
        metavar="N",
        help="machines packed per word for the word engines (PROOFS/vsim): "
        "a power of two >= 8 (default 64)",
    )
    simulate.add_argument(
        "--verbose", action="store_true", help="list detections with cycles"
    )
    simulate.add_argument(
        "--ladder",
        action="store_true",
        help="run the engine ladder: audit the result against the serial "
        "oracle, degrading csim-MV -> csim -> serial on any failure "
        "(with --engine vsim the vector kernel tops the ladder: "
        "vsim -> csim-MV -> csim -> serial)",
    )
    _add_obs_args(simulate)
    _add_robust_args(simulate)
    _add_parallel_args(simulate)
    _add_analyze_args(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    transition = commands.add_parser(
        "transition", help="transition-fault simulation (two-pass concurrent)"
    )
    _add_circuit_arg(transition)
    _add_test_args(transition)
    _add_obs_args(transition)
    _add_robust_args(transition)
    _add_parallel_args(transition)
    _add_analyze_args(transition)
    transition.set_defaults(handler=cmd_transition)

    def _add_dictionary_build_args(sub: argparse.ArgumentParser) -> None:
        from repro.diagnosis import DICTIONARY_KINDS

        sub.add_argument(
            "--kind",
            choices=DICTIONARY_KINDS,
            default="full",
            help="dictionary format: 'full' keeps (cycle, output) "
            "resolution, 'passfail' only failing cycles (default full)",
        )
        sub.add_argument(
            "--engine",
            choices=ENGINE_NAMES,
            default="csim-MV",
            help="builder engine; every engine yields a bit-identical "
            "dictionary (default csim-MV)",
        )
        sub.add_argument(
            "--word-width",
            type=int,
            metavar="N",
            help="machines packed per word for the word engines "
            "(PROOFS/vsim): a power of two >= 8 (default 64)",
        )
        sub.add_argument(
            "--no-collapse",
            action="store_true",
            help="simulate the full universe verbatim instead of "
            "equivalence representatives (bit-identical, just slower)",
        )

    build_dict = commands.add_parser(
        "build-dictionary",
        help="build a fault-dictionary artifact by full (no-drop) fault "
        "simulation over the collapsed universe",
    )
    _add_circuit_arg(build_dict)
    _add_test_args(build_dict)
    _add_dictionary_build_args(build_dict)
    build_dict.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="FILE",
        help="write the repro-dict/1 artifact here (atomic replace)",
    )
    _add_robust_args(build_dict)
    _add_parallel_args(build_dict)
    build_dict.set_defaults(handler=cmd_build_dictionary)

    diagnose = commands.add_parser(
        "diagnose",
        help="rank fault candidates for observed tester failures against "
        "a fault dictionary (built on the fly or loaded from an artifact)",
    )
    _add_circuit_arg(diagnose)
    _add_test_args(diagnose)
    _add_dictionary_build_args(diagnose)
    diagnose.add_argument(
        "--failures",
        required=True,
        metavar="LIST",
        help="observed failures: comma-separated CYCLE:OUTPUT pairs for "
        "--kind full (1-based cycle, 0-based output position), or "
        "comma-separated failing cycles for --kind passfail",
    )
    diagnose.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="candidates to rank (default 10)",
    )
    diagnose.add_argument(
        "--explain",
        action="store_true",
        help="re-simulate the top candidate with the tracer and attach its "
        "causal divergence chain (fault site -> first diverging gate per "
        "cycle -> observed outputs); a rendering is printed to stderr",
    )
    diagnose.add_argument(
        "--dictionary",
        metavar="FILE",
        help="dictionary artifact cache: loaded when FILE exists, "
        "otherwise the built dictionary is written there",
    )
    _add_robust_args(diagnose)
    _add_parallel_args(diagnose)
    diagnose.set_defaults(handler=cmd_diagnose)

    gen = commands.add_parser(
        "generate-tests", help="coverage-directed test generation"
    )
    _add_circuit_arg(gen)
    gen.add_argument("--effort", choices=("standard", "high"), default="standard")
    gen.add_argument("--seed", type=int, default=1992)
    gen.add_argument("--target", type=float, default=None, help="stop at this coverage")
    gen.add_argument("-o", "--output", help="write vectors here instead of stdout")
    gen.set_defaults(handler=cmd_generate_tests)

    inspect = commands.add_parser(
        "inspect",
        help="render a recorded trace directory (span timeline, shard "
        "balance, gate churn, flamegraph stacks)",
    )
    inspect.add_argument(
        "trace_dir", help="directory a traced run wrote its span files into"
    )
    inspect.add_argument(
        "--trace-id", help="which trace to render when the directory holds several"
    )
    inspect.add_argument(
        "--flamegraph",
        metavar="FILE",
        help="also write collapsed stacks to FILE (flamegraph.pl format)",
    )
    inspect.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="K",
        help="gates in the churn ranking (default 10)",
    )
    inspect.add_argument(
        "--columns",
        type=int,
        default=48,
        metavar="N",
        help="timeline bar width in characters (default 48)",
    )
    inspect.set_defaults(handler=cmd_inspect)

    tables = commands.add_parser("tables", help="regenerate the paper's tables")
    tables.add_argument("--scale", type=float, default=0.25)
    tables.add_argument("--quick", action="store_true")
    tables.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="write per-cell campaign progress here; resumable with --resume",
    )
    tables.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted table campaign from --checkpoint",
    )
    tables.add_argument(
        "--deterministic",
        action="store_true",
        help="zero the wall-clock columns so resumed output is byte-identical",
    )
    tables.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="K",
        help="compute table cells in K worker processes (default 1)",
    )
    _add_analyze_args(tables)
    tables.set_defaults(handler=cmd_tables)

    serve = commands.add_parser(
        "serve",
        help="run the fault-simulation service (async job queue + REST API)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8350, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N", help="worker threads (default 2)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        metavar="N",
        help="queued-job bound; beyond it submissions get 429 (default 256)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="max jobs coalesced into one circuit instantiation (default 8)",
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="N",
        help="cycles between per-job checkpoint writes (default 16)",
    )
    serve.add_argument(
        "--max-seconds-per-job",
        type=float,
        metavar="S",
        help="wall-clock budget per job; breached jobs finish truncated",
    )
    serve.add_argument(
        "--state-dir",
        metavar="DIR",
        help="durable state (jobs, results, cache, checkpoints); "
        "default: a fresh temporary directory",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache",
    )
    serve.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="record a span trace of every job here "
        "(render with `repro inspect DIR`)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds a claimed job may miss heartbeats before the reaper "
        "re-queues it (default 30)",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="execution attempts per job before dead-lettering (default 3)",
    )
    serve.add_argument(
        "--retry-backoff",
        type=float,
        default=0.25,
        metavar="S",
        help="base of the exponential retry backoff in seconds (default 0.25)",
    )
    serve.add_argument(
        "--requeue-dead",
        action="store_true",
        help="resurrect every dead-lettered job at startup",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        metavar="S",
        help="seconds SIGTERM waits for in-flight batches before exiting "
        "(default 30)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request to stderr"
    )
    serve.set_defaults(handler=cmd_serve)

    return parser


def _resume_hint(argv: Optional[List[str]]) -> str:
    words = list(argv) if argv is not None else sys.argv[1:]
    if "--resume" not in words:
        words = words + ["--resume"]
    return "python -m repro " + " ".join(words)


def main(argv: Optional[List[str]] = None) -> int:
    """Parse and dispatch; expected failures become clean exit codes.

    Anticipated errors — bad netlists, missing files, bad argument
    combinations, corrupt checkpoints (``CheckpointError`` is a
    ``ValueError``) — exit 2 with a one-line message instead of a
    traceback.  Parse-time failures (unknown subcommand, bad flag values)
    are converted from ``SystemExit`` to a returned code, so in-process
    callers get ``2`` plus argparse's usage text rather than an
    exception.  Interrupts exit 130, printing where the campaign's
    progress was saved and the exact command that resumes it.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:  # argparse error (code 2) or --help/--version (0)
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    try:
        return args.handler(args)
    except CampaignInterrupted as exc:
        print("interrupted", file=sys.stderr)
        if exc.checkpoint_path:
            print(
                f"progress saved to {exc.checkpoint_path}; resume with:\n"
                f"  {_resume_hint(argv)}",
                file=sys.stderr,
            )
        return 130
    except KeyboardInterrupt:
        print("interrupted (no checkpoint; progress lost)", file=sys.stderr)
        return 130
    except (NetlistError, FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CollapseAuditError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        from repro.diagnosis import DictionaryBuildTruncated

        if not isinstance(exc, DictionaryBuildTruncated):
            raise
        print(f"error: {exc}", file=sys.stderr)
        if getattr(args, "checkpoint", None):
            print(
                f"progress saved to {args.checkpoint}; resume with:\n"
                f"  {_resume_hint(argv)}",
                file=sys.stderr,
            )
        return 130
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # standard Unix tools.  Detach stdout so interpreter shutdown
        # does not raise a second BrokenPipeError while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
