"""Levelization of the combinational network.

Zero-delay fault simulation of a synchronous circuit needs gates evaluated
"orderly according to its level, where the level of a gate is assigned so
that all its fanins are at the lower levels" (Section 2.1).  Primary inputs
and flip-flop outputs are the level-0 sources; every combinational gate gets
level ``1 + max(level of fanins)``.  A combinational cycle (a feedback path
not broken by a flip-flop) is a modelling error for this class of circuits
and is reported with the offending gates named.
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.circuit.netlist import Circuit, NetlistError
from repro.logic.tables import GateType


class LevelizationError(NetlistError):
    """Raised when the combinational part of a circuit contains a cycle.

    A :class:`NetlistError` subclass: a cyclic netlist is a malformed
    netlist, and callers hardened against bad input (the CLI, the
    ``.bench`` fuzz tests) catch the base class.
    """


def find_cycle(circuit: Circuit, within: List[int]) -> List[int]:
    """Locate one concrete combinational cycle among the gates *within*.

    Iterative DFS restricted to the stuck subgraph; returns the gate indices
    of the cycle with the entry gate repeated at the end (``a -> b -> a``),
    or an empty list when no cycle exists among *within*.
    """
    gates = circuit.gates
    candidates = set(within)
    color = {index: 0 for index in candidates}  # 0 white, 1 on stack, 2 done
    for start in within:
        if color[start] != 0:
            continue
        stack = [(start, iter(gates[start].fanin))]
        color[start] = 1
        path = [start]
        while stack:
            node, fanin_iter = stack[-1]
            advanced = False
            for src in fanin_iter:
                if src not in candidates:
                    continue
                if color[src] == 1:
                    cycle = path[path.index(src):] + [src]
                    return cycle
                if color[src] == 0:
                    color[src] = 1
                    path.append(src)
                    stack.append((src, iter(gates[src].fanin)))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
                stack.pop()
    return []


def levelize(circuit: Circuit) -> None:
    """Assign levels in-place and record the evaluation order on *circuit*.

    Uses Kahn's algorithm over the combinational subgraph: edges from DFF
    outputs are cut (a DFF's Q is a source; its D input is a sink), so only
    true combinational feedback remains cyclic.
    """
    gates = circuit.gates
    pending: List[int] = [0] * len(gates)
    ready = deque()

    for gate in gates:
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            gate.level = 0
            continue
        # Count only combinational dependencies; sources are already settled.
        count = sum(1 for src in gate.fanin if gates[src].gtype not in (GateType.INPUT, GateType.DFF))
        pending[gate.index] = count
        if count == 0:
            gate.level = 1
            ready.append(gate.index)

    order: List[int] = []
    max_level = 0
    while ready:
        index = ready.popleft()
        gate = gates[index]
        level = 1
        for src in gate.fanin:
            level = max(level, gates[src].level + 1)
        gate.level = level
        max_level = max(max_level, level)
        order.append(index)
        for sink in gate.fanout:
            sink_gate = gates[sink]
            if sink_gate.gtype in (GateType.INPUT, GateType.DFF):
                continue
            pending[sink] -= 1
            if pending[sink] == 0:
                ready.append(sink)

    expected = sum(
        1 for gate in gates if gate.gtype not in (GateType.INPUT, GateType.DFF)
    )
    if len(order) != expected:
        stuck_indices = [
            index
            for index in range(len(gates))
            if pending[index] > 0 and gates[index].gtype not in (GateType.INPUT, GateType.DFF)
        ]
        stuck = [gates[index].name for index in stuck_indices]
        path = find_cycle(circuit, stuck_indices)
        detail = f"; cycle: {' -> '.join(gates[i].name for i in path)}" if path else ""
        raise LevelizationError(
            f"combinational cycle in {circuit.name!r} through gates: "
            f"{', '.join(sorted(stuck)[:10])}{detail}"
        )

    # Stable level-major order: Kahn's queue already emits non-decreasing
    # levels only for unit-delay-like graphs, so sort explicitly (stable on
    # insertion order within a level, which keeps runs deterministic).
    order.sort(key=lambda index: gates[index].level)
    circuit.order = tuple(order)
    circuit.num_levels = max_level
