"""Gate-level netlist model for synchronous sequential circuits.

The model is the one the paper assumes: a combinational network of primitive
gates between primary inputs, D flip-flop outputs (present state) on one
side and primary outputs, D flip-flop inputs (next state) on the other.
Flip-flops are modelled as gates of type ``DFF`` whose single fanin is the
``D`` signal and whose output is ``Q``; they act as level-0 sources for the
combinational network and are updated only at cycle boundaries.

Circuits are constructed through :class:`CircuitBuilder` and are immutable
once built: every simulator keeps its own state arrays indexed by gate
index, so a frozen structural skeleton shared across engines is both safe
and fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.logic.tables import (
    COMBINATIONAL_TYPES,
    GateType,
    MAX_TABLE_ARITY,
    evaluate,
)


class NetlistError(ValueError):
    """Raised for structurally invalid circuits (bad fanin, cycles, ...)."""


@dataclass
class Gate:
    """One netlist element.

    ``fanin``/``fanout`` hold gate indices.  ``table`` is only populated for
    ``MACRO`` gates: the packed-input truth table produced by macro
    extraction.  ``macro_gates`` records, for a macro, the original gate
    names it absorbed (used to report faults against the flat netlist).
    ``line`` is the 1-based source line of the defining statement when the
    gate came from a parsed netlist file (0 for programmatic construction);
    lint diagnostics and netlist errors cite it.
    """

    index: int
    name: str
    gtype: GateType
    fanin: Tuple[int, ...]
    fanout: Tuple[int, ...] = ()
    is_output: bool = False
    level: int = -1
    table: Optional[Tuple[int, ...]] = None
    macro_gates: Tuple[str, ...] = ()
    line: int = 0

    @property
    def arity(self) -> int:
        return len(self.fanin)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gate({self.index}, {self.name!r}, {self.gtype.name})"


class Circuit:
    """An immutable, levelized synchronous sequential circuit.

    Attributes
    ----------
    gates:
        All gates, indexed by :attr:`Gate.index`.
    inputs / outputs / dffs:
        Gate indices of primary inputs, primary outputs (gates whose value
        is observed each cycle) and flip-flops.
    order:
        Combinational gate indices in non-decreasing level order; evaluating
        gates in this order settles the combinational network in one pass.
    """

    def __init__(
        self,
        name: str,
        gates: List[Gate],
        inputs: List[int],
        outputs: List[int],
        dffs: List[int],
    ) -> None:
        self.name = name
        self.gates: Tuple[Gate, ...] = tuple(gates)
        self.inputs: Tuple[int, ...] = tuple(inputs)
        self.outputs: Tuple[int, ...] = tuple(outputs)
        self.dffs: Tuple[int, ...] = tuple(dffs)
        self._index_of: Dict[str, int] = {gate.name: gate.index for gate in self.gates}
        # Filled by levelize(); stored here so every engine shares it.
        self.order: Tuple[int, ...] = ()
        self.num_levels: int = 0

    # -- lookups ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def gate(self, name: str) -> Gate:
        """Look a gate up by signal name."""
        try:
            return self.gates[self._index_of[name]]
        except KeyError:
            raise NetlistError(f"no gate named {name!r} in circuit {self.name!r}") from None

    def has_gate(self, name: str) -> bool:
        return name in self._index_of

    def index_of(self, name: str) -> int:
        return self.gate(name).index

    # -- derived views ---------------------------------------------------

    @property
    def combinational(self) -> Iterable[Gate]:
        """Gates evaluated by combinational settling, in level order."""
        return (self.gates[index] for index in self.order)

    @property
    def num_combinational(self) -> int:
        return len(self.order)

    def source_indices(self) -> Tuple[int, ...]:
        """Level-0 sources of the combinational network (PIs then DFFs)."""
        return self.inputs + self.dffs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}: {len(self.inputs)} PI, {len(self.outputs)} PO, "
            f"{len(self.dffs)} DFF, {self.num_combinational} gates)"
        )


class CircuitBuilder:
    """Incremental construction of a :class:`Circuit`.

    Signals may be referenced before they are defined (netlist formats list
    gates in arbitrary order); fanin resolution happens in :meth:`build`.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._gates: List[Tuple[str, GateType, Tuple[str, ...]]] = []
        self._by_name: Dict[str, int] = {}
        self._lines: List[int] = []
        self._outputs: List[str] = []
        self._output_lines: Dict[str, int] = {}
        self._macro_tables: Dict[str, Tuple[Tuple[int, ...], Tuple[str, ...]]] = {}

    def _define(
        self, name: str, gtype: GateType, fanin: Sequence[str], line: int = 0
    ) -> None:
        if name in self._by_name:
            first = self._lines[self._by_name[name]]
            where = f" (first defined at line {first})" if first else ""
            raise NetlistError(f"signal {name!r} defined twice{where}")
        self._by_name[name] = len(self._gates)
        self._gates.append((name, gtype, tuple(fanin)))
        self._lines.append(line)

    # -- element constructors -------------------------------------------

    def add_input(self, name: str, line: int = 0) -> None:
        """Declare a primary input."""
        self._define(name, GateType.INPUT, (), line)

    def add_dff(self, name: str, d_signal: str, line: int = 0) -> None:
        """Declare a D flip-flop whose output is *name* and input *d_signal*."""
        self._define(name, GateType.DFF, (d_signal,), line)

    def add_gate(
        self, name: str, gtype: GateType, fanin: Sequence[str], line: int = 0
    ) -> None:
        """Declare a combinational gate driving signal *name*."""
        if gtype not in COMBINATIONAL_TYPES:
            raise NetlistError(f"{gtype} is not a combinational gate type")
        if gtype in (GateType.BUF, GateType.NOT) and len(fanin) != 1:
            raise NetlistError(f"{gtype.name} gate {name!r} must have exactly one fanin")
        if gtype in (GateType.CONST0, GateType.CONST1) and fanin:
            raise NetlistError(f"constant gate {name!r} must have no fanin")
        if gtype is GateType.MACRO:
            raise NetlistError("use add_macro() for MACRO gates")
        if len(fanin) == 0 and gtype not in (GateType.CONST0, GateType.CONST1):
            raise NetlistError(f"gate {name!r} has no fanin")
        self._define(name, gtype, fanin, line)

    def add_macro(
        self,
        name: str,
        fanin: Sequence[str],
        table: Sequence[int],
        absorbed: Sequence[str] = (),
    ) -> None:
        """Declare a table-driven macro gate (produced by macro extraction)."""
        arity = len(fanin)
        if arity == 0 or arity > MAX_TABLE_ARITY:
            raise NetlistError(f"macro {name!r} arity {arity} out of range")
        if len(table) != 1 << (2 * arity):
            raise NetlistError(f"macro {name!r} table has wrong size")
        self._define(name, GateType.MACRO, fanin)
        self._macro_tables[name] = (tuple(table), tuple(absorbed))

    def set_output(self, name: str, line: int = 0) -> None:
        """Mark an existing or future signal as a primary output.

        Duplicate OUTPUT declarations are rejected: they are always a netlist
        authoring mistake and previously were silently deduplicated.
        """
        if name in self._output_lines:
            first = self._output_lines[name]
            where = f" (first declared at line {first})" if first else ""
            raise NetlistError(f"output {name!r} declared twice{where}")
        self._output_lines[name] = line
        self._outputs.append(name)

    # -- finalization ----------------------------------------------------

    def build(self) -> Circuit:
        """Resolve names, compute fanout, validate, levelize and freeze."""
        from repro.circuit.levelize import levelize  # local import: avoid cycle

        index_of = {name: index for index, (name, _, _) in enumerate(self._gates)}
        gates: List[Gate] = []
        inputs: List[int] = []
        dffs: List[int] = []

        for index, (name, gtype, fanin_names) in enumerate(self._gates):
            line = self._lines[index]
            fanin: List[int] = []
            for source in fanin_names:
                if source not in index_of:
                    where = f" (line {line})" if line else ""
                    raise NetlistError(
                        f"gate {name!r} references undefined signal {source!r}{where}"
                    )
                fanin.append(index_of[source])
            table, absorbed = self._macro_tables.get(name, (None, ()))
            gates.append(
                Gate(
                    index=index,
                    name=name,
                    gtype=gtype,
                    fanin=tuple(fanin),
                    table=table,
                    macro_gates=absorbed,
                    line=line,
                )
            )
            if gtype is GateType.INPUT:
                inputs.append(index)
            elif gtype is GateType.DFF:
                dffs.append(index)

        outputs: List[int] = []
        for name in self._outputs:
            if name not in index_of:
                decl = self._output_lines.get(name, 0)
                where = f" (declared at line {decl})" if decl else ""
                raise NetlistError(f"output {name!r} is not a defined signal{where}")
            outputs.append(index_of[name])
        if not outputs:
            raise NetlistError(f"circuit {self.name!r} declares no primary outputs")

        fanout: Dict[int, List[int]] = {gate.index: [] for gate in gates}
        for gate in gates:
            for source in gate.fanin:
                fanout[source].append(gate.index)
        for gate in gates:
            gate.fanout = tuple(fanout[gate.index])
            if gate.is_output:
                raise NetlistError("is_output must not be preset")
        for index in outputs:
            gates[index].is_output = True

        circuit = Circuit(self.name, gates, inputs, outputs, dffs)
        levelize(circuit)
        return circuit


def evaluate_gate(gate: Gate, input_values: Sequence[int]) -> int:
    """Evaluate one gate over explicit three-valued input values.

    Reference path used by the simple simulators and by table construction;
    the concurrent engine uses packed-state lookups instead.
    """
    if gate.gtype is GateType.MACRO:
        assert gate.table is not None
        from repro.logic.tables import pack_inputs

        return gate.table[pack_inputs(input_values)]
    return evaluate(gate.gtype, input_values)
