"""Gate-level circuit substrate.

Netlist model, ISCAS-89 ``.bench`` I/O, levelization, statistics, macro
extraction, synthetic benchmark generation, and the embedded benchmark
library used by the paper-reproduction harness.
"""

from repro.circuit.netlist import Circuit, CircuitBuilder, Gate, NetlistError
from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.levelize import levelize, LevelizationError
from repro.circuit.stats import CircuitStats, circuit_stats
from repro.circuit.hierarchy import HierarchicalBuilder, HierarchicalCircuit, Module
from repro.circuit.macro import MacroCircuit, Region, extract_macros

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "NetlistError",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "levelize",
    "LevelizationError",
    "CircuitStats",
    "circuit_stats",
    "HierarchicalBuilder",
    "HierarchicalCircuit",
    "Module",
    "MacroCircuit",
    "Region",
    "extract_macros",
]
