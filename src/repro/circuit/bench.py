"""ISCAS-89 ``.bench`` netlist reader and writer.

The paper evaluates on the ISCAS-89 benchmark suite, which is distributed in
this format::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = DFF(G14)
    G11 = NAND(G0, G1)

The parser accepts the common format variants seen in circulating copies of
the suite (``BUFF`` vs ``BUF``, blank fanin lists rejected, case-insensitive
gate keywords, whitespace anywhere).  The writer emits canonical text that
round-trips through the parser, which the test suite checks property-style.
"""

from __future__ import annotations

import io
import re
from typing import TextIO, Union

from repro.circuit.netlist import Circuit, CircuitBuilder, NetlistError
from repro.logic.tables import GateType

_GATE_KEYWORDS = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_KEYWORD_FOR_TYPE = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}

_ASSIGN_RE = re.compile(
    r"^(?P<name>[^\s=]+)\s*=\s*(?P<kind>[A-Za-z01]+)\s*\(\s*(?P<args>[^)]*)\)\s*$"
)
_DECL_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<name>[^)\s]+)\s*\)\s*$", re.IGNORECASE)


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a built, levelized :class:`Circuit`.

    Every failure — unparsable line, bad gate declaration, and the
    structural errors found at build time (undefined signal, duplicate
    definition, no outputs, combinational cycle) — surfaces as a
    :class:`NetlistError`.  Line-attributable errors carry ``name:line:``
    context; whole-circuit errors carry ``name:`` context.
    """
    builder = CircuitBuilder(name)
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        try:
            declaration = _DECL_RE.match(line)
            if declaration:
                kind = declaration.group("kind").upper()
                signal = declaration.group("name")
                if kind == "INPUT":
                    builder.add_input(signal, line=line_number)
                else:
                    builder.set_output(signal, line=line_number)
                continue

            assignment = _ASSIGN_RE.match(line)
            if assignment is None:
                raise NetlistError(f"cannot parse line: {raw_line.strip()!r}")

            signal = assignment.group("name")
            keyword = assignment.group("kind").upper()
            args = [
                token.strip()
                for token in assignment.group("args").split(",")
                if token.strip()
            ]
            gtype = _GATE_KEYWORDS.get(keyword)
            if gtype is None:
                raise NetlistError(f"unknown gate keyword {keyword!r}")
            if gtype is GateType.DFF:
                if len(args) != 1:
                    raise NetlistError("DFF must have exactly one fanin")
                builder.add_dff(signal, args[0], line=line_number)
            else:
                builder.add_gate(signal, gtype, args, line=line_number)
        except NetlistError as exc:
            raise NetlistError(f"{name}:{line_number}: {exc}") from None
    try:
        return builder.build()
    except NetlistError as exc:
        raise NetlistError(f"{name}: {exc}") from None


def parse_bench_file(path: str) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file stem."""
    with open(path) as handle:
        text = handle.read()
    stem = path.rsplit("/", 1)[-1]
    if stem.endswith(".bench"):
        stem = stem[: -len(".bench")]
    return parse_bench(text, name=stem)


def write_bench(circuit: Circuit, stream: Union[TextIO, None] = None) -> str:
    """Serialize *circuit* to ``.bench`` text (macro gates are rejected).

    Returns the text; also writes it to *stream* when one is given.
    """
    out = io.StringIO()
    out.write(f"# {circuit.name}\n")
    for index in circuit.inputs:
        out.write(f"INPUT({circuit.gates[index].name})\n")
    for index in circuit.outputs:
        out.write(f"OUTPUT({circuit.gates[index].name})\n")
    out.write("\n")
    for gate in circuit.gates:
        if gate.gtype is GateType.INPUT:
            continue
        if gate.gtype is GateType.MACRO:
            raise NetlistError(
                f"gate {gate.name!r}: macro gates have no .bench form; write the flat circuit"
            )
        keyword = _KEYWORD_FOR_TYPE[gate.gtype]
        args = ", ".join(circuit.gates[src].name for src in gate.fanin)
        out.write(f"{gate.name} = {keyword}({args})\n")
    text = out.getvalue()
    if stream is not None:
        stream.write(text)
    return text
