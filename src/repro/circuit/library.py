"""The benchmark circuit library used by the reproduction harness.

Two sources:

* the real ISCAS-89 ``s27`` circuit, embedded verbatim (it is tiny and
  appears in virtually every fault-simulation paper as the worked example);
* deterministic synthetic stand-ins for the rest of the ISCAS-89 suite,
  generated to the published PI/PO/DFF/gate counts of each circuit (see
  DESIGN.md §3 for why this substitution preserves the paper's comparisons).

``load(name)`` returns either kind; passing a filesystem path to a real
``.bench`` file also works, so users with the actual suite get the genuine
circuits.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.circuit.bench import parse_bench, parse_bench_file
from repro.circuit.generate import CircuitProfile, generate_circuit
from repro.circuit.netlist import Circuit, NetlistError

#: The real ISCAS-89 s27 netlist.
S27_BENCH = """
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
"""

#: Published structural statistics of the ISCAS-89 circuits appearing in the
#: paper's tables: (primary inputs, primary outputs, flip-flops, gates).
#: These drive the synthetic stand-in profiles.
ISCAS89_PROFILES: Dict[str, CircuitProfile] = {
    name: CircuitProfile(name, pi, po, dff, gates)
    for name, (pi, po, dff, gates) in {
        "s298": (3, 6, 14, 119),
        "s344": (9, 11, 15, 160),
        "s349": (9, 11, 15, 161),
        "s382": (3, 6, 21, 158),
        "s386": (7, 7, 6, 159),
        "s400": (3, 6, 21, 162),
        "s444": (3, 6, 21, 181),
        "s526": (3, 6, 21, 193),
        "s641": (35, 24, 19, 379),
        "s713": (35, 23, 19, 393),
        "s820": (18, 19, 5, 289),
        "s832": (18, 19, 5, 287),
        "s1196": (14, 14, 18, 529),
        "s1238": (14, 14, 18, 508),
        "s1423": (17, 5, 74, 657),
        "s1488": (8, 19, 6, 653),
        "s1494": (8, 19, 6, 647),
        "s5378": (35, 49, 179, 2779),
        "s35932": (35, 320, 1728, 16065),
    }.items()
}

#: Circuits appearing in each of the paper's tables, in table order.
TABLE3_CIRCUITS = (
    "s298",
    "s344",
    "s349",
    "s382",
    "s386",
    "s400",
    "s444",
    "s526",
    "s641",
    "s713",
    "s820",
    "s832",
    "s1196",
    "s1238",
    "s1488",
    "s1494",
    "s5378",
    "s35932",
)
TABLE4_CIRCUITS = ("s298", "s344", "s382", "s400", "s444", "s526", "s1423", "s5378")
TABLE5_CIRCUIT = "s35932"
TABLE6_CIRCUITS = ("s298", "s344", "s382", "s444", "s526", "s1196", "s1488", "s5378")


def available_circuits() -> List[str]:
    """Names loadable through :func:`load`, smallest first."""
    names = ["s27"] + sorted(ISCAS89_PROFILES, key=lambda name: ISCAS89_PROFILES[name].num_gates)
    return names


def load(name: str, scale: float = 1.0) -> Circuit:
    """Load a benchmark circuit by name, path, or synthetic profile.

    ``scale`` proportionally shrinks synthetic stand-ins (useful to keep CI
    benchmark runs short); it is ignored for real netlists.
    """
    if name == "s27":
        return parse_bench(S27_BENCH, name="s27")
    if os.path.sep in name or name.endswith(".bench"):
        return parse_bench_file(name)
    profile = ISCAS89_PROFILES.get(name)
    if profile is None:
        raise NetlistError(
            f"unknown benchmark circuit {name!r}; known: {available_circuits()}"
        )
    return generate_circuit(profile.scaled(scale))
