"""Macro extraction: collapsing fanout-free regions into table-driven gates.

Section 2.2's third improvement: "it is advantageous to partition the
circuit into macro modules ... Macro extraction collapses many events into
an event to save computation time [and] reduces the memory requirement
because many fault elements are collapsed into one fault element."  Macros
here are fanout-free regions (as in the paper) capped at a configurable
input count so each macro evaluates through one packed-input lookup table.

Stuck-at faults whose site lies inside a macro are translated into
*functional faults*: a private faulty lookup table obtained by re-simulating
the region's internal gates with the stuck line forced ("stuck at faults may
be translated into functional faults which can be represented by look up
table entries").

Both the good tables and the faulty tables are built by simulating the
internal gates with the same three-valued algebra the flat simulator uses,
so a macro circuit is *value-exact* against the flat circuit — the
cross-validation tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, CircuitBuilder, evaluate_gate
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType, MAX_TABLE_ARITY, build_table


@dataclass
class Region:
    """One fanout-free region of the flat circuit.

    ``pins`` are the flat gate indices feeding the region, in macro pin
    order (duplicates allowed: a multi-load source can feed two pins).
    ``internal`` are the absorbed flat gates in topological order, ending
    with ``root``.
    """

    root: int
    pins: Tuple[int, ...]
    internal: Tuple[int, ...]

    @property
    def is_trivial(self) -> bool:
        return len(self.internal) == 1


def evaluate_region(
    flat: Circuit,
    region: Region,
    pin_values: Sequence[int],
    injection: Optional[StuckAtFault] = None,
) -> int:
    """Three-valued evaluation of a region, optionally with one stuck fault.

    The injection is a stuck-at fault on a flat gate inside the region
    (input pin or output line); pin forcing is applied when the owning gate
    is evaluated, output forcing right after it.

    Duplicate pins (one source feeding two pins) are written in pin order;
    at run time the macro's fanin reads the same source for both pins, so
    only consistent (equal-valued) combinations are ever looked up and the
    inconsistent table entries this writes are unreachable.
    """
    values: Dict[int, int] = {}
    for pin_index, source in enumerate(region.pins):
        values[source] = pin_values[pin_index]
    for gate_index in region.internal:
        gate = flat.gates[gate_index]
        inputs = [values[source] for source in gate.fanin]
        if (
            injection is not None
            and injection.gate == gate_index
            and injection.pin != OUTPUT_PIN
        ):
            inputs[injection.pin] = injection.value
        value = evaluate_gate(gate, inputs)
        if (
            injection is not None
            and injection.gate == gate_index
            and injection.pin == OUTPUT_PIN
        ):
            value = injection.value
        values[gate_index] = value
    return values[region.root]


class MacroCircuit:
    """A macro-transformed circuit plus the fault-translation machinery."""

    def __init__(
        self,
        flat: Circuit,
        circuit: Circuit,
        regions: Dict[int, Region],
        owner: Dict[int, int],
        plain_roots: frozenset,
        good_tables: Dict[int, Tuple[int, ...]],
    ) -> None:
        #: The original, flat circuit (faults are defined against it).
        self.flat = flat
        #: The working circuit with MACRO gates.
        self.circuit = circuit
        #: flat root index -> region
        self.regions = regions
        #: flat combinational gate index -> flat root index of its region
        self.owner = owner
        #: flat root indices kept as plain (non-table) gates (too wide)
        self.plain_roots = plain_roots
        self._good_tables = good_tables
        self._new_index: Dict[str, int] = {
            gate.name: gate.index for gate in circuit.gates
        }

    def good_table(self, root: int) -> Tuple[int, ...]:
        """The fault-free lookup table of the region rooted at *root*."""
        return self._good_tables[root]

    def faulty_table(self, root: int, fault: StuckAtFault) -> Tuple[int, ...]:
        """The functional-fault table of *fault* inside the region at *root*."""
        region = self.regions[root]
        return build_table(
            lambda inputs: evaluate_region(self.flat, region, inputs, injection=fault),
            len(region.pins),
        )

    def new_index_of(self, flat_index: int) -> int:
        """Index in the macro circuit of a surviving flat gate (by name)."""
        return self._new_index[self.flat.gates[flat_index].name]

    def translate_stuck_at(self, fault: StuckAtFault):
        """Translate a flat stuck-at fault for the macro circuit.

        Returns ``(site_gate, behavior, pin, value, table)`` matching the
        fields of :class:`repro.concurrent.elements.FaultDescriptor`, with
        *behavior* as a string: ``"force_output"``, ``"force_input"`` or
        ``"table"``.
        """
        flat = self.flat
        site = flat.gates[fault.gate]
        if site.gtype in (GateType.INPUT, GateType.DFF):
            site_new = self.new_index_of(fault.gate)
            if fault.pin == OUTPUT_PIN:
                return (site_new, "force_output", OUTPUT_PIN, fault.value, None)
            return (site_new, "force_input", fault.pin, fault.value, None)

        root = self.owner[fault.gate]
        if root in self.plain_roots:
            # The region is a single too-wide gate kept structural.
            site_new = self.new_index_of(root)
            if fault.pin == OUTPUT_PIN:
                return (site_new, "force_output", OUTPUT_PIN, fault.value, None)
            return (site_new, "force_input", fault.pin, fault.value, None)

        site_new = self.new_index_of(root)
        table = self.faulty_table(root, fault)
        return (site_new, "table", OUTPUT_PIN, fault.value, table)

    def summary(self) -> str:
        macros = sum(1 for root in self.regions if root not in self.plain_roots)
        collapsed = sum(
            len(region.internal)
            for root, region in self.regions.items()
            if root not in self.plain_roots
        )
        return (
            f"{self.flat.name}: {self.flat.num_combinational} gates -> "
            f"{len(self.regions)} regions ({macros} macros covering {collapsed} gates)"
        )


def _primary_roots(circuit: Circuit) -> frozenset:
    """Combinational gates that must head their own region.

    A gate is a primary root when it is observed (primary output), drives a
    flip-flop, or drives anything other than exactly one combinational
    input pin.
    """
    loads: Dict[int, List[Tuple[int, int]]] = {gate.index: [] for gate in circuit.gates}
    for gate in circuit.gates:
        for pin, source in enumerate(gate.fanin):
            loads[source].append((gate.index, pin))
    roots = set()
    for gate in circuit.gates:
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            continue
        pins = loads[gate.index]
        if gate.is_output or len(pins) != 1:
            roots.add(gate.index)
            continue
        sink_gate, _ = pins[0]
        if circuit.gates[sink_gate].gtype is GateType.DFF:
            roots.add(gate.index)
    return frozenset(roots)


def _validate_preassigned(circuit: Circuit, region: Region) -> None:
    """A preassigned region must be a legal macro: single observable
    output (the root), internal gates unobserved and feeding only inside
    the region, pins within the table bound."""
    internal = set(region.internal)
    if region.root not in internal:
        raise ValueError(f"region root {region.root} not among its internal gates")
    if len(region.pins) > MAX_TABLE_ARITY:
        raise ValueError(
            f"region at {circuit.gates[region.root].name!r} has "
            f"{len(region.pins)} pins (> {MAX_TABLE_ARITY})"
        )
    for index in region.internal:
        gate = circuit.gates[index]
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            raise ValueError(f"{gate.name!r}: sources cannot be region-internal")
        if index == region.root:
            continue
        if gate.is_output:
            raise ValueError(f"{gate.name!r} is observed; it cannot be internal")
        for sink in gate.fanout:
            if sink not in internal:
                raise ValueError(
                    f"{gate.name!r} drives outside its region "
                    f"({circuit.gates[sink].name!r})"
                )
    # Region evaluation iterates `internal` in order; normalize to levels.
    region.internal = tuple(sorted(region.internal, key=lambda i: circuit.gates[i].level))


def extract_macros(
    circuit: Circuit,
    max_inputs: int = 4,
    preassigned: Sequence[Region] = (),
) -> MacroCircuit:
    """Partition *circuit* into fanout-free macros of at most *max_inputs* pins.

    Every combinational gate lands in exactly one region.  Regions whose
    root is wider than the cap (or than :data:`MAX_TABLE_ARITY`) stay as
    plain structural gates; everything else becomes a ``MACRO`` gate with a
    packed-input lookup table.

    ``preassigned`` regions — typically module-instance boundaries from a
    hierarchical design (see :mod:`repro.circuit.hierarchy`) — are taken
    as-is before the fanout-free growth claims the rest; this is the
    paper's "hierarchical design information" improving the partition.
    Unlike grown regions, preassigned ones may contain internal fanout
    (any single-output combinational block evaluates through a table).
    """
    max_inputs = min(max_inputs, MAX_TABLE_ARITY)
    if max_inputs < 1:
        raise ValueError("max_inputs must be at least 1")
    primary = _primary_roots(circuit)
    assigned: Dict[int, int] = {}  # flat gate -> its region's root
    regions: Dict[int, Region] = {}

    for region in preassigned:
        _validate_preassigned(circuit, region)
        for index in region.internal:
            if index in assigned:
                raise ValueError(
                    f"gate {circuit.gates[index].name!r} belongs to two "
                    "preassigned regions"
                )
            assigned[index] = region.root
        regions[region.root] = region

    def grow(root: int) -> Region:
        """Greedy breadth-first growth of the region rooted at *root*."""
        gate = circuit.gates[root]
        pins: List[int] = list(gate.fanin)
        internal: List[int] = [root]
        assigned[root] = root
        changed = True
        while changed and len(pins) <= max_inputs:
            changed = False
            for position, source in enumerate(pins):
                source_gate = circuit.gates[source]
                if source_gate.gtype in (GateType.INPUT, GateType.DFF):
                    continue
                if source in primary or source in assigned:
                    continue
                new_count = len(pins) - 1 + source_gate.arity
                if new_count > max_inputs or new_count == 0:
                    continue
                # Absorb: replace this pin by the source's own fanins.
                pins[position : position + 1] = list(source_gate.fanin)
                internal.append(source)
                assigned[source] = root
                changed = True
                break
        internal.sort(key=lambda index: circuit.gates[index].level)
        return Region(root=root, pins=tuple(pins), internal=tuple(internal))

    # Primary roots first, then leftovers from consumers down to sources so
    # each leftover's consumer has already claimed what it can.
    for root in sorted(primary, key=lambda index: -circuit.gates[index].level):
        if root not in assigned:
            regions[root] = grow(root)
    leftovers = [
        gate.index
        for gate in circuit.gates
        if gate.gtype not in (GateType.INPUT, GateType.DFF) and gate.index not in assigned
    ]
    leftovers.sort(key=lambda index: -circuit.gates[index].level)
    for index in leftovers:
        if index not in assigned:
            regions[index] = grow(index)

    # Only trivial (single-gate) regions can stay structural; a multi-gate
    # preassigned region over the cap still fits MAX_TABLE_ARITY (validated)
    # and must become a table.  Zero-pin regions (constants) have no table
    # domain and stay structural too.
    plain_roots = frozenset(
        root
        for root, region in regions.items()
        if len(region.pins) == 0
        or (len(region.pins) > max_inputs and region.is_trivial)
    )

    good_tables: Dict[int, Tuple[int, ...]] = {}
    for root, region in regions.items():
        if root in plain_roots:
            continue
        good_tables[root] = build_table(
            lambda inputs, _region=region: evaluate_region(circuit, _region, inputs),
            len(region.pins),
        )

    # Build the macro circuit bottom-up so generated netlists read naturally
    # (CircuitBuilder itself tolerates any declaration order).
    builder = CircuitBuilder(f"{circuit.name}+macros")
    for index in circuit.inputs:
        builder.add_input(circuit.gates[index].name)
    for index in circuit.dffs:
        gate = circuit.gates[index]
        builder.add_dff(gate.name, circuit.gates[gate.fanin[0]].name)
    for region in sorted(regions.values(), key=lambda region: circuit.gates[region.root].level):
        root_gate = circuit.gates[region.root]
        pin_names = [circuit.gates[source].name for source in region.pins]
        if region.root in plain_roots:
            builder.add_gate(root_gate.name, root_gate.gtype, pin_names)
            continue
        absorbed = tuple(circuit.gates[index].name for index in region.internal)
        builder.add_macro(root_gate.name, pin_names, good_tables[region.root], absorbed)
    for index in circuit.outputs:
        builder.set_output(circuit.gates[index].name)

    return MacroCircuit(
        flat=circuit,
        circuit=builder.build(),
        regions=regions,
        owner=dict(assigned),
        plain_roots=plain_roots,
        good_tables=good_tables,
    )
