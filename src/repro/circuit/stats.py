"""Circuit statistics in the shape of the paper's Table 2.

Table 2 reports, per benchmark circuit: primary inputs, primary outputs,
flip-flops, gate count, and the number of (collapsed) stuck-at faults.  The
fault count itself comes from :mod:`repro.faults`; this module provides the
structural half plus a few derived quantities (levels, average fanin/fanout)
that the ablation benchmarks use to characterize workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Structural summary of one circuit."""

    name: str
    num_inputs: int
    num_outputs: int
    num_dffs: int
    num_gates: int
    num_levels: int
    num_lines: int
    avg_fanin: float
    max_fanout: int

    def row(self) -> str:
        """One formatted row for table printing."""
        return (
            f"{self.name:<10} {self.num_inputs:>5} {self.num_outputs:>5} "
            f"{self.num_dffs:>5} {self.num_gates:>7} {self.num_levels:>6}"
        )


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute the structural statistics of *circuit*."""
    combinational = [circuit.gates[index] for index in circuit.order]
    fanin_total = sum(gate.arity for gate in combinational) + len(circuit.dffs)
    num_gates = len(combinational)
    max_fanout = max((len(gate.fanout) for gate in circuit.gates), default=0)
    # "Lines" in the stuck-at sense: every gate output plus every gate input
    # pin (fanout branches are modelled as input pins of the fed gates).
    num_lines = len(circuit.gates) + fanin_total
    return CircuitStats(
        name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        num_dffs=len(circuit.dffs),
        num_gates=num_gates,
        num_levels=circuit.num_levels,
        num_lines=num_lines,
        avg_fanin=(fanin_total / num_gates) if num_gates else 0.0,
        max_fanout=max_fanout,
    )
