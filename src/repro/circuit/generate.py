"""Deterministic synthetic benchmark-circuit generation.

The paper evaluates on the ISCAS-89 suite, which we cannot redistribute in
full here.  The substitution (see DESIGN.md §3) is a seeded generator that
produces synchronous sequential circuits matching a target profile — the
published PI/PO/DFF/gate counts of each ISCAS-89 circuit — so the harness
exercises the simulators at the same scale and with the same structural
texture (mixed gate types, fanout trees, realistic logic depth, flip-flop
feedback).  Real ``.bench`` netlists, when available, load through
:mod:`repro.circuit.bench` and run unchanged.

The generator is *deterministic*: the same profile and seed always produce
the same circuit (string hashing is avoided — Python randomizes it per
process), so benchmark numbers are comparable across runs.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuit.netlist import Circuit, CircuitBuilder
from repro.logic.tables import GateType

#: Gate-type mix for generated logic.  NAND/NOR-heavy like the ISCAS-89
#: controllers, with a significant XOR/XNOR share like the suite's datapath
#: members (s344/s1196/s1238 are arithmetic-rich) — without the transparent
#: gates, random logic masks so hard that fault effects almost never reach
#: an output, which no real benchmark circuit does.
_TYPE_WEIGHTS = (
    (GateType.NAND, 22),
    (GateType.NOR, 16),
    (GateType.AND, 12),
    (GateType.OR, 10),
    (GateType.NOT, 12),
    (GateType.XOR, 14),
    (GateType.XNOR, 6),
    (GateType.BUF, 2),
)

_ARITY_WEIGHTS = ((2, 70), (3, 20), (4, 10))


@dataclass(frozen=True)
class CircuitProfile:
    """Target shape of a generated circuit."""

    name: str
    num_inputs: int
    num_outputs: int
    num_dffs: int
    num_gates: int
    seed: int = 1992

    def scaled(self, scale: float) -> "CircuitProfile":
        """Return a smaller profile (for quick CI runs).

        Only the *logic* shrinks — gates and flip-flops.  The interface
        (primary inputs and outputs) keeps its published width: shrinking
        a 3-PI controller to 2 PIs destroys controllability and produces
        degenerate workloads, which is worse than a slightly input-rich
        small circuit.  Interface counts are only capped so they never
        exceed the remaining logic.
        """
        if scale >= 1.0:
            return self

        def shrink(count: int, floor: int) -> int:
            return max(floor, int(round(count * scale)))

        num_gates = shrink(self.num_gates, 8)
        return CircuitProfile(
            name=self.name,
            num_inputs=min(self.num_inputs, max(2, num_gates)),
            num_outputs=min(self.num_outputs, max(1, num_gates // 2)),
            num_dffs=min(shrink(self.num_dffs, 1) if self.num_dffs else 0, num_gates),
            num_gates=num_gates,
            seed=self.seed,
        )

    @property
    def target_depth(self) -> int:
        """Realistic combinational depth for this size (ISCAS-89-like:
        ~9 levels at 120 gates, ~25 at a few thousand)."""
        return max(4, min(25, 4 + self.num_gates // 60))


def _weighted_choice(rng: random.Random, weighted: Sequence) -> object:
    total = sum(weight for _, weight in weighted)
    pick = rng.uniform(0, total)
    accumulated = 0.0
    for value, weight in weighted:
        accumulated += weight
        if pick <= accumulated:
            return value
    return weighted[-1][0]


def generate_circuit(profile: CircuitProfile) -> Circuit:
    """Generate a levelized synchronous circuit matching *profile*.

    Construction is feed-forward with an explicit level budget: each gate
    draws a target level and picks fanins from strictly lower levels —
    mostly the level just below (building depth the way mapped logic
    does), sometimes much lower (reconvergence and shortcut paths).
    Fanin selection prefers so-far-unused signals, keeping dead logic rare
    as in real netlists.  Sequential feedback comes from the flip-flops,
    whose D inputs are drawn from late gates.
    """
    rng = random.Random(profile.seed ^ zlib.crc32(profile.name.encode()))
    builder = CircuitBuilder(profile.name)
    depth = profile.target_depth

    input_names = [f"I{index}" for index in range(profile.num_inputs)]
    for name in input_names:
        builder.add_input(name)
    dff_names = [f"R{index}" for index in range(profile.num_dffs)]

    # Level buckets: level 0 holds the sources; gates land on 1..depth.
    buckets: List[List[str]] = [[] for _ in range(depth + 1)]
    buckets[0] = list(input_names) + list(dff_names)
    level_of = {name: 0 for name in buckets[0]}
    unused = set(buckets[0])
    gate_names: List[str] = []

    def pick_fanin(max_level: int, taken: List[str]) -> Optional[str]:
        """One fanin below *max_level*: usually from the few levels just
        below (building depth), sometimes from anywhere lower
        (reconvergence and shortcut paths).  Pools span several levels so
        no thin level turns into a mega-fanout stem."""
        for _ in range(6):
            if rng.random() < 0.7:
                low = max(0, max_level - 4)
                pool = [name for level in range(low, max_level) for name in buckets[level]]
            else:
                pool = [
                    name
                    for level in range(0, max_level)
                    for name in buckets[level]
                ]
            if not pool:
                continue
            fresh = [name for name in pool if name in unused and name not in taken]
            if fresh and rng.random() < 0.6:
                choice = fresh[rng.randrange(len(fresh))]
            else:
                choice = pool[rng.randrange(len(pool))]
            if choice not in taken:
                return choice
        return None

    for index in range(profile.num_gates):
        gtype = _weighted_choice(rng, _TYPE_WEIGHTS)
        arity = 1 if gtype in (GateType.NOT, GateType.BUF) else _weighted_choice(rng, _ARITY_WEIGHTS)
        # Spread target levels so every level fills; deeper targets later.
        target = 1 + min(depth - 1, int(depth * index / max(1, profile.num_gates)) + rng.randrange(0, 2))
        fanin: List[str] = []
        for _ in range(arity):
            choice = pick_fanin(target + 1, fanin)
            if choice is not None:
                fanin.append(choice)
        if not fanin:
            fanin = [buckets[0][rng.randrange(len(buckets[0]))]]
        if gtype in (GateType.NOT, GateType.BUF):
            fanin = fanin[:1]
        name = f"N{index}"
        builder.add_gate(name, gtype, fanin)
        level = 1 + max(level_of[source] for source in fanin)
        level_of[name] = level
        buckets[min(level, depth)].append(name)
        for used in fanin:
            unused.discard(used)
        unused.add(name)
        gate_names.append(name)

    def draw_sinks(count: int) -> List[str]:
        """Pick signals to observe/latch, preferring unused late gates."""
        chosen: List[str] = []
        pool = sorted(name for name in gate_names if name in unused)
        rng.shuffle(pool)
        chosen.extend(pool[:count])
        attempts = 0
        while len(chosen) < count and gate_names and attempts < 10 * count:
            candidate = gate_names[rng.randrange(len(gate_names))]
            attempts += 1
            if candidate not in chosen:
                chosen.append(candidate)
        while len(chosen) < count:
            chosen.append(buckets[0][rng.randrange(len(buckets[0]))])
        return chosen[:count]

    # Next-state logic.  Purely random feedback collapses to fixed points
    # (most state bits freeze within a few cycles), which no designed state
    # machine does; so half the flip-flops get a NAND mixer with a primary
    # input on their D path.  The controlling 0 both *initializes* the bit
    # from the all-X power-up state (an X-opaque loop would never settle)
    # and keeps it responsive to the inputs, the way decoded control state
    # behaves.  The mixers count as gates.
    d_signals = draw_sinks(profile.num_dffs)
    for position, (dff_name, d_signal) in enumerate(zip(dff_names, d_signals)):
        if position % 2 == 0 and input_names:
            driver = input_names[position % len(input_names)]
            mixer = f"NS{position}"
            builder.add_gate(mixer, GateType.NAND, [driver, d_signal])
            gate_names.append(mixer)
            d_signal = mixer
        builder.add_dff(dff_name, d_signal)
        unused.discard(d_signal)

    # Primary outputs: half observe next-state (D) cones — real controllers'
    # outputs are decoded from the same logic that feeds the state register,
    # and without this the synthetic state space is close to unobservable —
    # and half observe otherwise-unused late gates.
    po_signals: List[str] = []
    state_taps = [name for name in d_signals if name not in po_signals]
    rng.shuffle(state_taps)
    for name in state_taps[: max(1, profile.num_outputs // 2)]:
        if name not in po_signals:
            po_signals.append(name)
    for name in draw_sinks(profile.num_outputs):
        if len(po_signals) >= profile.num_outputs:
            break
        if name not in po_signals:
            po_signals.append(name)
    for po_signal in po_signals[: profile.num_outputs]:
        builder.set_output(po_signal)
        unused.discard(po_signal)

    return builder.build()


def random_circuit(
    rng: random.Random,
    num_inputs: int = 4,
    num_gates: int = 12,
    num_dffs: int = 2,
    num_outputs: int = 2,
    name: Optional[str] = None,
) -> Circuit:
    """Small random circuit for tests and property-based cross-validation."""
    profile = CircuitProfile(
        name=name or f"rand{rng.randrange(1 << 30)}",
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        num_dffs=num_dffs,
        num_gates=num_gates,
        seed=rng.randrange(1 << 30),
    )
    return generate_circuit(profile)
