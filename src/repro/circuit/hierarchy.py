"""Hierarchical netlists: reusable modules, instances, and flattening.

The paper closes on exactly this: "More efficient fault simulation is
possible when hierarchical design information is utilized because the
concurrent fault simulation method is inherently suited to hierarchical
designs."  This module provides the design-entry side — define a module
once, instantiate it many times, flatten to the simulators' gate-level
:class:`Circuit` — and the bridge to that efficiency claim:
:func:`instance_regions` turns every eligible single-output combinational
instance into a *preassigned macro region*, so macro extraction follows
the designer's block structure instead of rediscovering fanout-free cones
(and can capture reconvergent blocks — a full adder's carry, a MUX — that
tree-growth never could).

Flattened gates are named ``<instance>/<gate>``, so faults and detections
report against the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.circuit.macro import Region
from repro.circuit.netlist import Circuit, CircuitBuilder, NetlistError
from repro.logic.tables import GateType, MAX_TABLE_ARITY


@dataclass(frozen=True)
class Module:
    """A reusable combinational or sequential subcircuit.

    ``ports`` are the module's input names (its circuit's primary inputs,
    in binding order); ``outputs`` the exported signal names.
    """

    name: str
    circuit: Circuit

    @property
    def ports(self) -> Tuple[str, ...]:
        return tuple(self.circuit.gates[i].name for i in self.circuit.inputs)

    @property
    def outputs(self) -> Tuple[str, ...]:
        return tuple(self.circuit.gates[i].name for i in self.circuit.outputs)

    @property
    def is_combinational(self) -> bool:
        return not self.circuit.dffs

    def __post_init__(self) -> None:
        if not self.circuit.inputs:
            raise NetlistError(f"module {self.name!r} has no ports")


class HierarchicalBuilder:
    """Builds a flat :class:`Circuit` from gates and module instances.

    Behaves like :class:`CircuitBuilder` plus :meth:`add_instance`.  An
    instance's outputs are referenced as ``<instance>.<output>`` (or
    directly as ``<instance>`` when the module has exactly one output).
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self._builder = CircuitBuilder(name)
        #: instance name -> (module, flat names of its internal gates)
        self._instances: Dict[str, Tuple[Module, List[str]]] = {}

    # -- plain netlist entry, delegated ------------------------------------

    def add_input(self, name: str) -> None:
        self._builder.add_input(name)

    def add_dff(self, name: str, d_signal: str) -> None:
        self._builder.add_dff(name, self._resolve(d_signal))

    def add_gate(self, name: str, gtype: GateType, fanin: Sequence[str]) -> None:
        self._builder.add_gate(name, gtype, [self._resolve(s) for s in fanin])

    def set_output(self, name: str) -> None:
        self._builder.set_output(self._resolve(name))

    # -- instances ----------------------------------------------------------

    def _resolve(self, signal: str) -> str:
        """Map ``inst.port``/single-output ``inst`` references to flat names."""
        if signal in self._instances:
            module, _ = self._instances[signal]
            if len(module.outputs) != 1:
                raise NetlistError(
                    f"{signal!r} has {len(module.outputs)} outputs; "
                    f"use '{signal}.<output>'"
                )
            return f"{signal}/{module.outputs[0]}"
        if "." in signal:
            instance, _, port = signal.partition(".")
            if instance in self._instances:
                module, _ = self._instances[instance]
                if port not in module.outputs:
                    raise NetlistError(
                        f"module {module.name!r} has no output {port!r}"
                    )
                return f"{instance}/{port}"
        return signal

    def add_instance(
        self,
        instance_name: str,
        module: Module,
        connections: Mapping[str, str],
    ) -> None:
        """Instantiate *module*, binding each port to an existing signal."""
        if instance_name in self._instances:
            raise NetlistError(f"instance {instance_name!r} defined twice")
        missing = set(module.ports) - set(connections)
        if missing:
            raise NetlistError(
                f"instance {instance_name!r}: unbound ports {sorted(missing)}"
            )
        extra = set(connections) - set(module.ports)
        if extra:
            raise NetlistError(
                f"instance {instance_name!r}: unknown ports {sorted(extra)}"
            )
        internal_names: List[str] = []
        port_map = {
            port: self._resolve(signal) for port, signal in connections.items()
        }
        for gate in module.circuit.gates:
            if gate.gtype is GateType.INPUT:
                continue
            flat_name = f"{instance_name}/{gate.name}"

            def flat(source_index: int) -> str:
                source = module.circuit.gates[source_index]
                if source.gtype is GateType.INPUT:
                    return port_map[source.name]
                return f"{instance_name}/{source.name}"

            fanin = [flat(source) for source in gate.fanin]
            if gate.gtype is GateType.DFF:
                self._builder.add_dff(flat_name, fanin[0])
            else:
                self._builder.add_gate(flat_name, gate.gtype, fanin)
            internal_names.append(flat_name)
        self._instances[instance_name] = (module, internal_names)

    # -- finalize ------------------------------------------------------------

    def build(self) -> "HierarchicalCircuit":
        flat = self._builder.build()
        instances = {
            name: (module, tuple(names))
            for name, (module, names) in self._instances.items()
        }
        return HierarchicalCircuit(flat=flat, instances=instances)


@dataclass(frozen=True)
class HierarchicalCircuit:
    """A flattened circuit that remembers its instance structure."""

    flat: Circuit
    instances: Dict[str, Tuple[Module, Tuple[str, ...]]]

    def instance_gates(self, instance: str) -> List[int]:
        """Flat gate indices belonging to *instance*."""
        _, names = self.instances[instance]
        return [self.flat.index_of(name) for name in names]

    def instance_regions(self, max_inputs: int = MAX_TABLE_ARITY) -> List[Region]:
        """Macro regions along instance boundaries (the paper's conclusion).

        An instance qualifies when its module is combinational, exports a
        single output, its internals stay private (nothing but the output
        drives outside — true by construction unless an internal signal
        was also marked a top-level output), and its pin count fits the
        lookup-table bound.  Unqualified instances are simply skipped;
        ordinary fanout-free extraction covers their gates.
        """
        regions: List[Region] = []
        flat = self.flat
        for name, (module, gate_names) in sorted(self.instances.items()):
            if not module.is_combinational or len(module.outputs) != 1:
                continue
            internal = [flat.index_of(gate_name) for gate_name in gate_names]
            internal_set = set(internal)
            root = flat.index_of(f"{name}/{module.outputs[0]}")
            # One pin per distinct external source: region evaluation keys
            # input values by source, so a source feeding several internal
            # gates needs (and should get) a single pin.
            pins: List[int] = []
            legal = True
            for index in internal:
                gate = flat.gates[index]
                if index != root and (
                    gate.is_output
                    or any(sink not in internal_set for sink in gate.fanout)
                ):
                    legal = False
                    break
                for source in gate.fanin:
                    if source not in internal_set and source not in pins:
                        pins.append(source)
            if not legal or not pins or len(pins) > max_inputs:
                continue
            regions.append(
                Region(root=root, pins=tuple(pins), internal=tuple(internal))
            )
        return regions
