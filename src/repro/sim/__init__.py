"""Good-machine logic simulators.

:mod:`repro.sim.logicsim` is the zero-delay cycle-based reference simulator
that every fault simulator in the repository is checked against and that the
serial baseline is built on.  :mod:`repro.sim.eventsim` is the two-phase
arbitrary-delay event-driven simulator demonstrating the generality argument
of the paper's Section 2 (concurrent simulation is not restricted to
zero-delay synchronous operation).
"""

from repro.sim.logicsim import LogicSimulator
from repro.sim.eventsim import EventSimulator
from repro.sim.delays import DelayModel, unit_delays, typed_delays, random_delays

__all__ = [
    "LogicSimulator",
    "EventSimulator",
    "DelayModel",
    "unit_delays",
    "typed_delays",
    "random_delays",
]
