"""Two-phase arbitrary-delay event-driven logic simulation.

This is the general simulation scheme the paper's Section 2 describes before
specializing to zero delay: events mature in a timing queue; the first phase
assigns matured values to gate outputs, the second phase evaluates the
activated fanout gates and posts new events after each gate's propagation
delay.  The concurrent *fault* engine in :mod:`repro.concurrent` specializes
this to zero delay, and
:class:`repro.concurrent.event_engine.ConcurrentEventFaultSimulator` runs
many faulty machines on this timing model at once.

This module's :class:`EventSimulator` simulates *one* machine — fault-free,
or carrying a single stuck-at fault — and therefore serves as the serial
oracle for the arbitrary-delay concurrent engine, exactly as
:class:`repro.sim.logicsim.LogicSimulator` does for the zero-delay one.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType
from repro.logic.values import X
from repro.sim.delays import DelayModel, unit_delays

#: One recorded transition: (time, gate index, new value).
Transition = Tuple[int, int, int]


class EventSimulator:
    """Event-driven simulator with per-gate transport delays.

    ``fault`` injects one stuck-at fault: input-pin forcing applies when
    the site gate evaluates, output forcing whenever the site's output is
    assigned (including primary-input application and flip-flop latching).
    """

    def __init__(
        self,
        circuit: Circuit,
        delays: Optional[DelayModel] = None,
        record: bool = False,
        fault: Optional[StuckAtFault] = None,
    ) -> None:
        self.circuit = circuit
        self.delays = delays or unit_delays(circuit)
        self.fault = fault
        self.values: List[int] = [X] * len(circuit.gates)
        self.time = 0
        self.record = record
        self.trace: List[Transition] = []
        # Timing queue: min-heap of times with per-time event buckets.
        self._bucket: Dict[int, List[Tuple[int, int]]] = {}
        self._times: List[int] = []
        # Last value scheduled (or settled) per gate, to suppress no-ops.
        self._last_target: List[int] = [X] * len(circuit.gates)
        self._powered_up = False
        self.events_processed = 0
        self.evaluations = 0

    # -- fault forcing ------------------------------------------------------

    def _forced_output(self, gate_index: int, value: int) -> int:
        fault = self.fault
        if fault is not None and fault.gate == gate_index and fault.pin == OUTPUT_PIN:
            return fault.value
        return value

    def _gate_inputs(self, gate_index: int) -> List[int]:
        gate = self.circuit.gates[gate_index]
        inputs = [self.values[source] for source in gate.fanin]
        fault = self.fault
        if fault is not None and fault.gate == gate_index and fault.pin != OUTPUT_PIN:
            inputs[fault.pin] = fault.value
        return inputs

    # -- event queue ------------------------------------------------------

    def _post(self, at_time: int, gate_index: int, value: int) -> None:
        if at_time < self.time:
            raise ValueError("cannot schedule an event in the past")
        if self._last_target[gate_index] == value:
            return
        self._last_target[gate_index] = value
        bucket = self._bucket.get(at_time)
        if bucket is None:
            bucket = []
            self._bucket[at_time] = bucket
            heapq.heappush(self._times, at_time)
        bucket.append((gate_index, value))

    def set_input(self, position: int, value: int, at_time: Optional[int] = None) -> None:
        """Schedule a primary-input change (position in circuit PI order)."""
        gate_index = self.circuit.inputs[position]
        self._post(
            self.time if at_time is None else at_time,
            gate_index,
            self._forced_output(gate_index, value),
        )

    def power_up(self) -> None:
        """Evaluate every combinational gate once from the all-X state.

        Constants (and an injected fault's forced lines) acquire their
        values this way; a purely event-driven start would leave a forced
        gate invisible until something else disturbed it.  Called
        automatically by the synchronous wrapper on first use.
        """
        if self._powered_up:
            return
        self._powered_up = True
        for gate_index in self.circuit.order:
            gate = self.circuit.gates[gate_index]
            self.evaluations += 1
            value = self._forced_output(
                gate_index, evaluate_gate(gate, self._gate_inputs(gate_index))
            )
            self._post(self.time + self.delays.delay(gate_index), gate_index, value)
        fault = self.fault
        if fault is not None and fault.pin == OUTPUT_PIN:
            gate = self.circuit.gates[fault.gate]
            if gate.gtype in (GateType.INPUT, GateType.DFF):
                self._post(self.time, fault.gate, fault.value)

    # -- core loop --------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Process events in time order; returns the quiescence time.

        Stops when the queue empties or the next event lies beyond *until*.
        """
        circuit = self.circuit
        while self._times:
            now = self._times[0]
            if until is not None and now > until:
                self.time = until
                return self.time
            heapq.heappop(self._times)
            events = self._bucket.pop(now)
            self.time = now

            # Phase 1: assign matured values, collect activated fanouts.
            activated: Set[int] = set()
            for gate_index, value in events:
                self.events_processed += 1
                if self.values[gate_index] == value:
                    continue
                self.values[gate_index] = value
                if self.record:
                    self.trace.append((now, gate_index, value))
                for sink in circuit.gates[gate_index].fanout:
                    if circuit.gates[sink].gtype not in (GateType.INPUT, GateType.DFF):
                        activated.add(sink)

            # Phase 2: evaluate activated gates, post delayed events.
            for gate_index in sorted(activated):
                gate = circuit.gates[gate_index]
                self.evaluations += 1
                value = self._forced_output(
                    gate_index, evaluate_gate(gate, self._gate_inputs(gate_index))
                )
                self._post(now + self.delays.delay(gate_index), gate_index, value)
        if until is not None:
            self.time = max(self.time, until)
        return self.time

    # -- synchronous wrapper ------------------------------------------------

    def run_cycle(self, vector: Sequence[int], period: int) -> Tuple[int, ...]:
        """Apply one vector, run one clock period, sample POs, latch DFFs.

        The period must comfortably exceed the critical path for correct
        synchronous operation; an insufficient period *is* simulated
        faithfully (the flip-flops latch whatever has arrived), which is
        exactly the behaviour delay-fault analysis cares about.
        """
        circuit = self.circuit
        if len(vector) != len(circuit.inputs):
            raise ValueError("vector width mismatch")
        self.power_up()
        for position, value in enumerate(vector):
            self.set_input(position, value, at_time=self.time)
        deadline = self.time + period
        self.run(until=deadline)
        outputs = tuple(self.values[index] for index in circuit.outputs)
        for ff_index in circuit.dffs:
            d_value = self._gate_inputs(ff_index)[0]
            self._post(deadline, ff_index, self._forced_output(ff_index, d_value))
        self.time = deadline
        return outputs

    def run_sequence(self, vectors: Sequence[Sequence[int]], period: int) -> List[Tuple[int, ...]]:
        """Run a whole synchronous test sequence; PO samples per cycle."""
        return [self.run_cycle(vector, period) for vector in vectors]

    def quiescent(self) -> bool:
        return not self._times
