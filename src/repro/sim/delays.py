"""Gate propagation-delay models for arbitrary-delay simulation.

The paper's case for concurrent simulation over pattern-parallel methods is
that it is not tied to zero delay: "the circuit gates may have arbitrary but
known propagation delays".  A :class:`DelayModel` maps each gate to an
integer delay (in arbitrary time units); the event-driven simulator and the
arbitrary-delay benchmarks consume it.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping

from repro.circuit.netlist import Circuit
from repro.logic.tables import GateType


class DelayModel:
    """Per-gate integer propagation delays.

    Sources (primary inputs, flip-flop outputs) always have delay 0; their
    changes take effect at the instant they are applied.
    """

    def __init__(self, circuit: Circuit, delays: Mapping[int, int]) -> None:
        self.circuit = circuit
        self._delays: Dict[int, int] = {}
        for gate in circuit.gates:
            if gate.gtype in (GateType.INPUT, GateType.DFF):
                self._delays[gate.index] = 0
                continue
            delay = delays.get(gate.index, 1)
            if delay < 1:
                raise ValueError(f"gate {gate.name!r}: combinational delay must be >= 1")
            self._delays[gate.index] = delay

    def delay(self, gate_index: int) -> int:
        return self._delays[gate_index]

    @property
    def max_delay(self) -> int:
        return max(self._delays.values(), default=0)


def unit_delays(circuit: Circuit) -> DelayModel:
    """Every combinational gate has delay 1."""
    return DelayModel(circuit, {})


#: Representative relative delays per gate type (inverters fast, XOR slow).
_TYPE_DELAYS = {
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.AND: 3,
    GateType.OR: 3,
    GateType.XOR: 4,
    GateType.XNOR: 4,
    GateType.MACRO: 3,
    GateType.CONST0: 1,
    GateType.CONST1: 1,
}


def typed_delays(circuit: Circuit) -> DelayModel:
    """Delays assigned by gate type (a simple technology-like model)."""
    return DelayModel(
        circuit,
        {
            gate.index: _TYPE_DELAYS.get(gate.gtype, 2)
            for gate in circuit.gates
            if gate.gtype not in (GateType.INPUT, GateType.DFF)
        },
    )


def random_delays(circuit: Circuit, seed: int = 7, lo: int = 1, hi: int = 6) -> DelayModel:
    """Uniformly random integer delays in ``[lo, hi]`` (deterministic seed)."""
    rng = random.Random(seed)
    return DelayModel(
        circuit,
        {
            gate.index: rng.randint(lo, hi)
            for gate in circuit.gates
            if gate.gtype not in (GateType.INPUT, GateType.DFF)
        },
    )
