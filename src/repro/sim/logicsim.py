"""Zero-delay cycle-based logic simulation (the reference semantics).

Each clock cycle: apply a primary-input vector, settle the combinational
network by evaluating gates in level order, observe the primary outputs,
then update every flip-flop from its settled D value.  All state starts at
X (unknown power-up).

The simulator optionally carries one injected stuck-at fault, which is what
the serial fault-simulation baseline (:mod:`repro.baselines.serial`) and all
cross-validation tests build on: this module *defines* what every fancier
engine must compute.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType
from repro.logic.values import X


class LogicSimulator:
    """Cycle simulator for one machine (good, or good + one stuck-at fault).

    The public surface is deliberately small: :meth:`reset`,
    :meth:`step` (apply one vector, return PO values), and read access to
    the settled node values.
    """

    def __init__(self, circuit: Circuit, fault: Optional[StuckAtFault] = None) -> None:
        self.circuit = circuit
        self.fault = fault
        self.values: List[int] = [X] * len(circuit.gates)
        self.cycle = 0

    def reset(self) -> None:
        """Return to the all-X power-up state."""
        for index in range(len(self.values)):
            self.values[index] = X
        self.cycle = 0

    # -- fault forcing ----------------------------------------------------

    def _forced_output(self, gate_index: int, value: int) -> int:
        fault = self.fault
        if fault is not None and fault.gate == gate_index and fault.pin == OUTPUT_PIN:
            return fault.value
        return value

    def _gate_inputs(self, gate_index: int) -> List[int]:
        gate = self.circuit.gates[gate_index]
        inputs = [self.values[source] for source in gate.fanin]
        fault = self.fault
        if fault is not None and fault.gate == gate_index and fault.pin != OUTPUT_PIN:
            inputs[fault.pin] = fault.value
        return inputs

    # -- simulation -------------------------------------------------------

    def settle(self, vector: Sequence[int]) -> None:
        """Apply *vector* to the PIs and settle the combinational network."""
        circuit = self.circuit
        if len(vector) != len(circuit.inputs):
            raise ValueError(
                f"vector has {len(vector)} values for {len(circuit.inputs)} inputs"
            )
        for pi_index, value in zip(circuit.inputs, vector):
            self.values[pi_index] = self._forced_output(pi_index, value)
        # Flip-flop outputs hold their latched value, but an output fault on
        # a flip-flop forces it every cycle.
        fault = self.fault
        if fault is not None and fault.pin == OUTPUT_PIN:
            gate = circuit.gates[fault.gate]
            if gate.gtype is GateType.DFF:
                self.values[fault.gate] = fault.value
        for gate_index in circuit.order:
            gate = circuit.gates[gate_index]
            value = evaluate_gate(gate, self._gate_inputs(gate_index))
            self.values[gate_index] = self._forced_output(gate_index, value)

    def sample_outputs(self) -> Tuple[int, ...]:
        """Settled primary-output values of the current cycle."""
        return tuple(self.values[index] for index in self.circuit.outputs)

    def clock(self) -> None:
        """Latch every flip-flop from its settled D value (two-phase)."""
        circuit = self.circuit
        pending: List[Tuple[int, int]] = []
        for ff_index in circuit.dffs:
            d_value = self._gate_inputs(ff_index)[0]
            pending.append((ff_index, self._forced_output(ff_index, d_value)))
        for ff_index, value in pending:
            self.values[ff_index] = value
        self.cycle += 1

    def step(self, vector: Sequence[int]) -> Tuple[int, ...]:
        """Simulate one full clock cycle; returns the sampled PO values."""
        self.settle(vector)
        outputs = self.sample_outputs()
        self.clock()
        return outputs

    def run(self, vectors: Sequence[Sequence[int]]) -> List[Tuple[int, ...]]:
        """Simulate a whole sequence; returns PO values per cycle."""
        return [self.step(vector) for vector in vectors]
