"""Durable, integrity-checked campaign checkpoints.

A checkpoint file is ``MAGIC || sha256(payload) || payload`` where the
payload is a pickled :class:`Checkpoint`.  Writes are atomic (temp file in
the same directory, fsync, then ``os.replace``), so a crash mid-write
leaves either the previous checkpoint or none — never a half-written file.
Reads verify the magic and the digest, so truncation or corruption
surfaces as a :class:`CheckpointError` with a one-line diagnostic instead
of a pickle traceback or, worse, silently wrong simulation state.

Checkpoints are bound to their campaign by a *config fingerprint* — a
SHA-256 over the circuit structure, the test vectors, the fault universe
and the engine configuration.  Resuming against a checkpoint whose
fingerprint does not match the requested run is refused: a resumed run
must be bit-identical to an uninterrupted one, which is only meaningful
when both describe the same campaign.
"""

from __future__ import annotations

import glob
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Optional

#: File magic: format name + version.  Bump on layout changes.
MAGIC = b"RPROCKPT1\n"
_DIGEST_LEN = hashlib.sha256().digest_size


class CheckpointError(ValueError):
    """Raised for unreadable, corrupt, truncated or mismatched checkpoints."""


class CampaignInterrupted(KeyboardInterrupt):
    """A Ctrl-C that was handled: the final checkpoint is already on disk.

    Raised by the resilient runners after they flush state, so callers
    (the CLI) can print the resume command and exit with code 130.
    """

    def __init__(self, checkpoint_path: Optional[str], cycles_done: int = 0) -> None:
        super().__init__()
        self.checkpoint_path = checkpoint_path
        self.cycles_done = cycles_done


@dataclass
class Checkpoint:
    """One durable unit of campaign progress.

    ``kind`` distinguishes single-run checkpoints (``run``: engine snapshot
    + cycle index) from table-campaign checkpoints (``tables``: completed
    cells).  ``payload`` is checkpoint-kind specific; ``fingerprint`` binds
    the file to its campaign configuration.
    """

    kind: str
    fingerprint: str
    payload: dict = field(default_factory=dict)


def config_fingerprint(*parts) -> str:
    """SHA-256 fingerprint of a campaign configuration.

    Callers pass anything with a stable, deterministic ``repr`` (circuit
    structure tuples, vector tuples, sorted fault lists, option objects,
    seeds).  Two configurations fingerprint equal iff their canonical
    representations match.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def circuit_fingerprint(circuit) -> str:
    """Structural fingerprint of a circuit (name + gates + connectivity)."""
    structure = tuple(
        (gate.name, gate.gtype.name, gate.fanin, gate.is_output)
        for gate in circuit.gates
    )
    return config_fingerprint(circuit.name, structure)


def write_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Atomically write *checkpoint* to *path* (temp file + rename)."""
    data = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    blob = MAGIC + hashlib.sha256(data).digest() + data
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def latest_checkpoint_mtime(path: str) -> Optional[float]:
    """The newest mtime among *path* and its per-shard siblings, or None.

    A checkpoint write is a liveness signal: the serving layer's reaper
    uses it as an implicit heartbeat for shard *processes*, which cannot
    renew a lease in the parent's memory — a worker whose checkpoints
    keep advancing is alive even if its lease record looks stale.
    Per-shard files follow the parallel runner's ``<path>.shard<K>``
    naming.
    """
    newest: Optional[float] = None
    for candidate in [path] + glob.glob(glob.escape(path) + ".shard*"):
        try:
            mtime = os.path.getmtime(candidate)
        except OSError:
            continue
        if newest is None or mtime > newest:
            newest = mtime
    return newest


def read_checkpoint(path: str, expect_fingerprint: Optional[str] = None) -> Checkpoint:
    """Read and verify a checkpoint; raises :class:`CheckpointError`.

    When *expect_fingerprint* is given, a fingerprint mismatch is refused —
    the checkpoint belongs to a different campaign configuration.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        raise CheckpointError(f"no checkpoint file at {path!r}") from None
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from None
    if not blob.startswith(MAGIC):
        raise CheckpointError(
            f"{path!r} is not a repro checkpoint (bad or missing magic)"
        )
    body = blob[len(MAGIC):]
    if len(body) < _DIGEST_LEN:
        raise CheckpointError(f"checkpoint {path!r} is truncated (no digest)")
    digest, data = body[:_DIGEST_LEN], body[_DIGEST_LEN:]
    if hashlib.sha256(data).digest() != digest:
        raise CheckpointError(
            f"checkpoint {path!r} is truncated or corrupt (digest mismatch)"
        )
    try:
        checkpoint = pickle.loads(data)
    except Exception as exc:  # pickle raises many types on corrupt input
        raise CheckpointError(f"checkpoint {path!r} failed to load: {exc}") from None
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(f"checkpoint {path!r} holds a foreign object")
    if expect_fingerprint is not None and checkpoint.fingerprint != expect_fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} was written by a different campaign "
            "(config fingerprint mismatch); refusing to resume"
        )
    return checkpoint
