"""Run budgets and the per-cycle watchdog every engine consults.

A :class:`Budget` bounds one simulation run along three axes — wall-clock
seconds, clock cycles, and modelled fault-element memory (the
:class:`repro.result.MemoryStats` peak, i.e. the paper's units, not Python
heap bytes).  Engines check the budget between cycles; on a breach they
stop *cleanly*: the partial :class:`repro.result.FaultSimResult` comes back
with ``truncated=True`` and a human-readable ``truncation_reason`` instead
of the run hanging or dying, and the breach is reported through the run's
:class:`repro.obs.Tracer` (``budget_breach`` hook).

Cycle granularity is the honest contract for a single-threaded pure-Python
engine: a breach is noticed at the next cycle boundary, so one cycle may
overshoot the wall-clock limit, but no partial-cycle state ever leaks into
the result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BudgetBreach:
    """One exceeded limit: which axis, the limit, and the observed value."""

    kind: str  # "wall" | "cycles" | "memory"
    limit: float
    actual: float

    def describe(self) -> str:
        if self.kind == "wall":
            return f"wall-clock budget exceeded ({self.actual:.3f}s > {self.limit:.3f}s)"
        if self.kind == "cycles":
            return f"cycle budget exceeded ({int(self.actual)} >= {int(self.limit)})"
        return (
            f"memory budget exceeded ({int(self.actual)} > {int(self.limit)} "
            f"modelled bytes)"
        )


@dataclass(frozen=True)
class Budget:
    """Per-run resource limits.  ``None`` on any axis means unlimited."""

    max_wall_seconds: Optional[float] = None
    max_cycles: Optional[int] = None
    max_memory_bytes: Optional[int] = None

    def __bool__(self) -> bool:
        return any(
            limit is not None
            for limit in (self.max_wall_seconds, self.max_cycles, self.max_memory_bytes)
        )

    def start(self) -> "BudgetClock":
        """Arm the budget against the current wall clock."""
        return BudgetClock(self, time.perf_counter())

    def tightened(
        self,
        max_wall_seconds: Optional[float] = None,
        max_cycles: Optional[int] = None,
        max_memory_bytes: Optional[int] = None,
    ) -> "Budget":
        """This budget with each given axis tightened to the smaller limit.

        Composes independent caps — a service-wide per-job wall cap and a
        per-submit deadline budget, say — without either silently widening
        the other: ``None`` arguments leave an axis unchanged, and on each
        axis the stricter limit wins.
        """

        def _min(a: Optional[float], b: Optional[float]) -> Optional[float]:
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Budget(
            max_wall_seconds=_min(self.max_wall_seconds, max_wall_seconds),
            max_cycles=_min(self.max_cycles, max_cycles),  # type: ignore[arg-type]
            max_memory_bytes=_min(  # type: ignore[arg-type]
                self.max_memory_bytes, max_memory_bytes
            ),
        )


class BudgetClock:
    """An armed budget: call :meth:`check` at every cycle boundary."""

    def __init__(self, budget: Budget, started: float) -> None:
        self.budget = budget
        self.started = started

    def check(self, cycles_done: int, memory_bytes: int) -> Optional[BudgetBreach]:
        """The first breached limit, or None while everything is in budget.

        ``cycles_done`` counts cycles already simulated (so ``max_cycles=n``
        admits exactly *n* cycles); ``memory_bytes`` is the engine's current
        modelled peak.
        """
        budget = self.budget
        if budget.max_cycles is not None and cycles_done >= budget.max_cycles:
            return BudgetBreach("cycles", budget.max_cycles, cycles_done)
        if budget.max_memory_bytes is not None and memory_bytes > budget.max_memory_bytes:
            return BudgetBreach("memory", budget.max_memory_bytes, memory_bytes)
        if budget.max_wall_seconds is not None:
            elapsed = time.perf_counter() - self.started
            if elapsed > budget.max_wall_seconds:
                return BudgetBreach("wall", budget.max_wall_seconds, elapsed)
        return None
