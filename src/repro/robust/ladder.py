"""Engine-ladder execution: graceful degradation toward the serial oracle.

The concurrent engines are fast because they share the good machine and
carry faults as list elements — a subtle representation with subtle
failure modes.  :func:`run_with_ladder` runs the preferred engine first
and *audits* the result: structural invariants on the live simulator
(:func:`repro.robust.guards.verify_invariants`) plus a sampled serial
spot-check against :class:`repro.sim.logicsim.LogicSimulator`, the
one-fault-at-a-time oracle.  On any audit failure, engine crash, or
repeated budget breach, it backs off and retries one rung down the
ladder, recording every fallback in telemetry and on the result, until
the final rung — the serial oracle itself, which needs no audit.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import random

from repro.baselines.serial import simulate_serial
from repro.circuit.netlist import Circuit
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import make_stuck_at_simulator
from repro.logic.values import is_binary
from repro.patterns.vectors import TestSequence
from repro.result import FaultSimResult
from repro.robust.budget import Budget
from repro.robust.guards import verify_invariants
from repro.sim.logicsim import LogicSimulator

#: Fastest first, oracle last.  ``csim-MV`` (split lists + macros) is the
#: paper's flagship configuration; plain ``csim`` drops the two
#: optimisations most entangled with list bookkeeping; ``serial`` cannot
#: be wrong in the ways the ladder guards against.
DEFAULT_LADDER: Tuple[str, ...] = ("csim-MV", "csim", "serial")

#: The ladder with the vector kernel as the fast rung: ``vsim`` (the
#: pattern-parallel word engine, see :mod:`repro.vector`) degrades to
#: ``csim-MV`` — with the same serial-oracle audit every rung gets —
#: before the concurrent rungs degrade as usual.  The CLI uses this
#: ladder when ``--ladder`` is combined with ``--engine vsim``.
VECTOR_LADDER: Tuple[str, ...] = ("vsim", "csim-MV", "csim", "serial")


def oracle_spot_check(
    circuit: Circuit,
    tests: TestSequence,
    result: FaultSimResult,
    faults=None,
    sample_size: int = 8,
    seed: int = 1992,
) -> List[Dict[str, object]]:
    """Re-simulate a seeded fault sample serially; report disagreements.

    For each sampled fault the oracle's first-detection cycle (first cycle
    where a primary output differs binarily from the good machine) must
    match ``result.detected`` exactly — same cycle, or absent from both.
    Returns one record per discrepancy; empty means the sample agrees.
    """
    universe = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    if not universe:
        return []
    rng = random.Random(seed)
    if sample_size >= len(universe):
        sample = list(universe)
    else:
        sample = rng.sample(universe, sample_size)

    good = LogicSimulator(circuit)
    good_outputs = [good.step(vector) for vector in tests.vectors]

    discrepancies: List[Dict[str, object]] = []
    for fault in sample:
        machine = LogicSimulator(circuit, fault)
        expected: Optional[int] = None
        for cycle, vector in enumerate(tests.vectors, start=1):
            outputs = machine.step(vector)
            reference = good_outputs[cycle - 1]
            if any(
                is_binary(g) and is_binary(f) and g != f
                for g, f in zip(reference, outputs)
            ):
                expected = cycle
                break
        got = result.detected.get(fault)
        if got != expected:
            discrepancies.append(
                {"fault": repr(fault), "oracle_cycle": expected, "engine_cycle": got}
            )
    return discrepancies


def _record_fallback(fallbacks, tracer, engine: str, to: str, reason: str) -> None:
    fallbacks.append({"engine": engine, "to": to, "reason": reason})
    if tracer is not None:
        tracer.fallback(engine, to, reason)


def run_with_ladder(
    circuit: Circuit,
    tests: TestSequence,
    ladder: Sequence[str] = DEFAULT_LADDER,
    *,
    faults=None,
    tracer=None,
    budget: Optional[Budget] = None,
    budget_retries: int = 1,
    backoff_seconds: float = 0.0,
    spot_check_sample: int = 8,
    seed: int = 1992,
    simulator_factory: Optional[Callable[[str, Circuit, object, object], object]] = None,
    word_width: Optional[int] = None,
) -> FaultSimResult:
    """Run down the engine ladder until a rung produces an audited result.

    Each non-serial rung runs its engine, then audits: structural
    invariants on the simulator, then the serial spot-check on a seeded
    fault sample.  Failures descend one rung (after ``backoff_seconds`` ×
    number of fallbacks so far); a budget-truncated run is retried on the
    same rung up to ``budget_retries`` times before descending.  The
    ``serial`` rung is terminal — it *is* the oracle, so its result (even
    truncated) is returned as-is.

    ``simulator_factory(engine, circuit, faults, tracer)`` overrides
    simulator construction for a rung (return ``None`` to fall through to
    the default); the chaos harness uses this to plant faulty engines.

    Every fallback is recorded on ``result.fallbacks`` and through the
    tracer's ``fallback`` hook.  Raises the last engine error only if the
    ladder is exhausted without reaching a usable rung.
    """
    if not ladder:
        raise ValueError("empty engine ladder")
    fallbacks: List[Dict[str, str]] = []
    last_error: Optional[BaseException] = None

    def _descend(engine: str, rung_index: int, reason: str) -> None:
        to = ladder[rung_index + 1] if rung_index + 1 < len(ladder) else "<none>"
        _record_fallback(fallbacks, tracer, engine, to, reason)
        if backoff_seconds:
            time.sleep(backoff_seconds * len(fallbacks))

    for rung_index, engine in enumerate(ladder):
        last_rung = rung_index == len(ladder) - 1

        if engine == "serial":
            result = simulate_serial(circuit, tests.vectors, faults, budget=budget)
            result.fallbacks = fallbacks
            return result

        breaches = 0
        while True:
            simulator = None
            if simulator_factory is not None:
                simulator = simulator_factory(engine, circuit, faults, tracer)
            if simulator is None:
                simulator = make_stuck_at_simulator(
                    circuit, engine, faults, tracer=tracer, word_width=word_width
                )
            try:
                result = simulator.run(tests, budget=budget)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                last_error = exc
                _descend(engine, rung_index, f"engine raised {exc!r}")
                break

            if result.truncated:
                breaches += 1
                if breaches <= budget_retries:
                    if backoff_seconds:
                        time.sleep(backoff_seconds * breaches)
                    continue
                _descend(
                    engine,
                    rung_index,
                    f"budget breached {breaches}x: {result.truncation_reason}",
                )
                break

            violations = verify_invariants(simulator)
            if violations:
                _descend(engine, rung_index, f"invariant violated: {violations[0]}")
                break

            discrepancies = oracle_spot_check(
                circuit,
                tests,
                result,
                faults=simulator.faults,
                sample_size=spot_check_sample,
                seed=seed,
            )
            if discrepancies:
                _descend(
                    engine,
                    rung_index,
                    f"oracle disagreement on {len(discrepancies)} of "
                    f"{min(spot_check_sample, len(simulator.faults))} sampled "
                    f"faults, e.g. {discrepancies[0]}",
                )
                break

            result.fallbacks = fallbacks
            return result

        if last_rung:
            break

    if last_error is not None:
        raise last_error
    raise RuntimeError(
        f"engine ladder {tuple(ladder)!r} exhausted: "
        + "; ".join(f["reason"] for f in fallbacks)
    )
