"""The resilient campaign runner: checkpointed, budgeted, interruptible.

Two shapes of campaign live here:

* :func:`run_checkpointed` — one engine over one test sequence, with
  periodic durable checkpoints (engine ``snapshot()`` + cycle index +
  config fingerprint), budget enforcement at every cycle boundary, and
  Ctrl-C handling that flushes a final checkpoint at a clean cycle
  boundary before raising :class:`CampaignInterrupted`.  A resumed run is
  bit-identical to an uninterrupted one: the snapshot carries detections,
  work counters and the memory model, so only ``wall_seconds`` differs.
* :class:`TableCampaign` — the paper-table campaign (many circuits ×
  engines).  Progress is durable per completed cell; resuming skips
  finished cells and recomputes nothing.

Both refuse to resume from a checkpoint whose config fingerprint does not
match the requested campaign — silently resuming a *different* campaign
would be worse than starting over.
"""

from __future__ import annotations

import signal
import time
from typing import Callable, Optional

from repro.circuit.netlist import Circuit
from repro.concurrent.options import SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.harness.runner import WORD_ENGINES, make_stuck_at_simulator
from repro.patterns.vectors import TestSequence
from repro.result import FaultSimResult
from repro.robust.budget import Budget
from repro.robust.checkpoint import (
    CampaignInterrupted,
    Checkpoint,
    CheckpointError,
    circuit_fingerprint,
    config_fingerprint,
    read_checkpoint,
    write_checkpoint,
)

#: Default cycles between periodic checkpoint writes.
DEFAULT_CHECKPOINT_EVERY = 64


def run_fingerprint(
    circuit: Circuit,
    tests: TestSequence,
    label: str,
    faults,
    transition: bool,
    extra: tuple = (),
) -> str:
    """Fingerprint binding a single-run checkpoint to its configuration.

    ``extra`` is additional identity the caller wants the checkpoint bound
    to — the parallel runner passes its (strategy, shard index, shard
    count) so a checkpoint can never be resumed into a differently
    sharded campaign, even if the fault subset happens to coincide.
    """
    return config_fingerprint(
        "run",
        "transition" if transition else "stuck-at",
        label,
        circuit_fingerprint(circuit),
        tuple(tests.vectors),
        tuple(faults),
        *extra,
    )


def _build_simulator(
    circuit, engine, transition, faults, options, tracer,
    word_width=None, axis_mode="auto", record_responses=False,
):
    if transition:
        if record_responses:
            raise ValueError(
                "response recording (fault dictionaries) only supports the "
                "stuck-at model"
            )
        simulator = TransitionFaultSimulator(
            circuit, faults, options or SimOptions(split_lists=True), tracer=tracer
        )
        label = "csim-TV" if simulator.options.split_lists else "csim-T"
        return simulator, label
    simulator = make_stuck_at_simulator(
        circuit, engine, faults, options=options, tracer=tracer,
        word_width=word_width, axis_mode=axis_mode,
        record_responses=record_responses,
    )
    label = engine if engine in WORD_ENGINES else simulator.options.variant_name
    return simulator, label


def run_checkpointed(
    circuit: Circuit,
    tests: TestSequence,
    engine: str = "csim-MV",
    *,
    transition: bool = False,
    faults=None,
    options: Optional[SimOptions] = None,
    tracer=None,
    budget: Optional[Budget] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    fingerprint_extra: tuple = (),
    word_width: Optional[int] = None,
    record_responses: bool = False,
) -> FaultSimResult:
    """Run one fault-simulation campaign with durable progress.

    With ``checkpoint_path`` set, the engine state is snapshotted to disk
    every ``checkpoint_every`` cycles (atomically; see
    :mod:`repro.robust.checkpoint`) and once more on interrupt or budget
    truncation.  With ``resume`` the run restarts from the checkpoint and
    produces a result identical — detections, counters, memory — to a run
    that was never interrupted.

    Ctrl-C is latched and honoured at the next cycle boundary, so the
    final checkpoint always captures a clean state; the exception raised
    is :class:`CampaignInterrupted` (a ``KeyboardInterrupt``), carrying
    the checkpoint path for the caller's resume hint.
    """
    simulator, label = _build_simulator(
        circuit, engine, transition, faults, options, tracer,
        word_width=word_width, record_responses=record_responses,
    )
    fingerprint = run_fingerprint(
        circuit, tests, label, simulator.faults, transition, fingerprint_extra
    )

    start_cycle = 0
    if resume:
        if checkpoint_path is None:
            raise CheckpointError("resume requested without a checkpoint path")
        saved = read_checkpoint(checkpoint_path, expect_fingerprint=fingerprint)
        if saved.kind != "run":
            raise CheckpointError(
                f"checkpoint {checkpoint_path!r} is a {saved.kind!r} checkpoint, "
                "not a single-run checkpoint"
            )
        simulator.restore(saved.payload["state"])
        start_cycle = saved.payload["cycle"]

    def save(cycle: int) -> None:
        if checkpoint_path is None:
            return
        write_checkpoint(
            checkpoint_path,
            Checkpoint(
                "run",
                fingerprint,
                {"cycle": cycle, "state": simulator.snapshot(), "engine": label},
            ),
        )

    # Latch SIGINT so interrupts land between cycles: the final checkpoint
    # must never capture a half-simulated cycle.  Falls back to plain
    # KeyboardInterrupt handling off the main thread.
    interrupted = {"hit": False}
    previous_handler = None
    try:
        previous_handler = signal.signal(
            signal.SIGINT, lambda signum, frame: interrupted.update(hit=True)
        )
    except ValueError:
        previous_handler = None

    trace = tracer
    if trace is not None:
        trace.run_start(label, circuit.name)
    clock = budget.start() if budget else None
    started = time.perf_counter()
    truncation_reason = None
    vectors = tests.vectors
    try:
        for index in range(start_cycle, len(vectors)):
            if interrupted["hit"]:
                save(simulator.cycle)
                raise CampaignInterrupted(checkpoint_path, simulator.cycle)
            if clock is not None:
                breach = clock.check(
                    simulator.counters.cycles, simulator.memory.peak_bytes
                )
                if breach is not None:
                    truncation_reason = breach.describe()
                    if trace is not None:
                        trace.budget_breach(breach.kind, breach.limit, breach.actual)
                    break
            simulator.step(vectors[index])
            applied = index + 1
            if (
                checkpoint_path is not None
                and checkpoint_every
                and (applied - start_cycle) % checkpoint_every == 0
                and applied < len(vectors)
            ):
                save(applied)
    except KeyboardInterrupt:
        # Interrupt delivered outside the latched window (non-main thread,
        # or raised synchronously from inside the engine): the in-memory
        # state may be mid-cycle, so no snapshot is taken here — the last
        # periodic checkpoint on disk remains the resume point.
        raise CampaignInterrupted(checkpoint_path, simulator.cycle) from None
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)

    save(simulator.cycle)
    elapsed = time.perf_counter() - started
    result = FaultSimResult(
        engine=label,
        circuit_name=circuit.name,
        num_faults=len(simulator.faults),
        num_vectors=simulator.counters.cycles,
        detected=dict(simulator.detected),
        potentially_detected=dict(simulator.potentially_detected),
        counters=simulator.counters,
        memory=simulator.memory,
        wall_seconds=elapsed,
        truncated=truncation_reason is not None,
        truncation_reason=truncation_reason,
        responses=(
            simulator.responses_by_fault() if record_responses else None
        ),
    )
    if trace is not None:
        trace.run_end(elapsed)
        result.telemetry = trace.telemetry()
    return result


class TableCampaign:
    """Durable progress for a multi-cell campaign (the paper tables).

    Each completed cell — one circuit × table computation — is written to
    the checkpoint as soon as it finishes; a resumed campaign replays
    finished cells from disk and computes only the remainder.  On Ctrl-C
    the cells completed so far are flushed and
    :class:`CampaignInterrupted` carries the resume location.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        resume: bool = False,
        fingerprint: str = "",
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.cells: dict = {}
        if resume:
            if path is None:
                raise CheckpointError("resume requested without a checkpoint path")
            saved = read_checkpoint(path, expect_fingerprint=fingerprint)
            if saved.kind != "tables":
                raise CheckpointError(
                    f"checkpoint {path!r} is a {saved.kind!r} checkpoint, "
                    "not a table campaign"
                )
            self.cells = dict(saved.payload["cells"])

    def save(self) -> None:
        if self.path is not None:
            write_checkpoint(
                self.path,
                Checkpoint("tables", self.fingerprint, {"cells": dict(self.cells)}),
            )

    def cell(self, key, compute: Callable[[], object]):
        """The cached value for *key*, or ``compute()`` recorded durably."""
        if key in self.cells:
            return self.cells[key]
        try:
            value = compute()
        except KeyboardInterrupt:
            self.save()
            raise CampaignInterrupted(self.path, len(self.cells)) from None
        self.cells[key] = value
        self.save()
        return value
