"""Chaos injection for the resilience subsystem's own tests.

Each class here breaks the simulator (or its surroundings) in one
specific, controlled way, so the test suite can assert that the guards
actually guard:

* :class:`HookBombTracer` — raises from a tracer hook after N calls;
  :class:`repro.robust.guards.GuardedTracer` must contain the blast.
* :class:`EventDropChaos` — silently discards every Nth propagation
  event, the classic lost-update corruption; the engine ladder's serial
  spot-check must notice the wrong detections.
* :class:`ElementCorruptionChaos` — writes an illegal logic value into a
  live fault element at a chosen cycle; either the invariant checker
  flags it or the engine crashes on the poisoned value, and the ladder
  must recover either way.
* :class:`FaultListChaos` — seeds exactly one fault-list invariant
  violation (illegal value, dangling reference, split swap, counter
  drift, order scramble, detected amnesia) between two cycles; the
  fault-list sanitizer (:class:`repro.analyze.sanitize.FaultListSanitizer`,
  armed via ``SimOptions.sanitize``) must flag it at the next phase
  boundary.
* :func:`truncate_file` — chops the tail off a checkpoint so the
  integrity check in :func:`repro.robust.checkpoint.read_checkpoint`
  must refuse it with a clean diagnostic.
* :func:`step_bomb` — patches an engine's ``step`` to die after N cycles
  (a ``KeyboardInterrupt`` by default, the shape of a worker kill).  The
  serving layer's kill-and-resume tests arm it to murder a worker
  mid-job and assert the recovered job resumes from its checkpoint with
  bit-identical detections.

None of this is reachable from production paths: the only way to run a
chaotic engine is to pass one of these factories explicitly.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Type

from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.obs.tracer import Tracer


class ChaosError(RuntimeError):
    """Raised by injected failures, so tests can tell chaos from real bugs."""


class HookBombTracer(Tracer):
    """A tracer that detonates on its Nth hook invocation.

    Models a buggy observer (a plotting callback, a flaky log shipper).
    Wrap it in :class:`repro.robust.guards.GuardedTracer` and the
    simulation must complete with the tracer disarmed, not die.
    """

    enabled = True

    def __init__(self, detonate_after: int = 10) -> None:
        self.detonate_after = detonate_after
        self.calls = 0

    def _tick(self) -> None:
        self.calls += 1
        if self.calls >= self.detonate_after:
            raise ChaosError(f"tracer hook bomb after {self.calls} calls")

    # Every hook the engines fire goes through the same fuse.
    def run_start(self, engine: str, circuit_name: str) -> None:
        self._tick()

    def run_end(self, wall_seconds: float) -> None:
        self._tick()

    def cycle_start(self, cycle: int) -> None:
        self._tick()

    def cycle_end(self, cycle: int, **stats) -> None:
        self._tick()

    def phase_time(self, phase: str, seconds: float) -> None:
        self._tick()

    def good_evals(self, gate: int, count: int = 1) -> None:
        self._tick()

    def fault_evals(self, gate: int, count: int = 1) -> None:
        self._tick()

    def element_visits(self, gate: int, count: int = 1) -> None:
        self._tick()

    def event(self, gate: int) -> None:
        self._tick()

    def scheduled(self, gate: int, level: int) -> None:
        self._tick()

    def diverge(self, gate: int, fid: int, visible: bool) -> None:
        self._tick()

    def converge(self, gate: int, fid: int) -> None:
        self._tick()

    def detect(self, fid: int, cycle: int, potential: bool = False) -> None:
        self._tick()

    def drop(self, fid: int, cycle: int) -> None:
        self._tick()

    def budget_breach(self, kind: str, limit: float, actual: float) -> None:
        self._tick()

    def fallback(self, engine: str, to: str, reason: str) -> None:
        self._tick()


class EventDropChaos(ConcurrentFaultSimulator):
    """A concurrent engine that loses every Nth fault-propagation event.

    Dropped events mean gates that should have been rescheduled are not,
    so fault effects stall mid-network and the detected-fault map comes
    out wrong — silently.  This is exactly the corruption class the
    engine ladder's serial spot-check exists to catch.
    """

    def __init__(self, *args, drop_every: int = 3, **kwargs) -> None:
        self._drop_every = drop_every
        self._event_count = 0
        super().__init__(*args, **kwargs)

    def _emit_event(self, gate_index: int) -> None:
        self._event_count += 1
        if self._event_count % self._drop_every == 0:
            return  # the event vanishes: no fanout is scheduled
        super()._emit_event(gate_index)


class ElementCorruptionChaos(ConcurrentFaultSimulator):
    """A concurrent engine that poisons one fault element per cycle.

    From ``corrupt_at_cycle`` on, every cycle ends with the first visible
    element found holding an out-of-domain logic value (re-applied each
    cycle: normal list churn may overwrite or converge a single poisoned
    element away, and a corruptor that heals itself tests nothing).
    Depending on circuit activity the poison either sits until
    :func:`repro.robust.guards.verify_invariants` flags it or crashes a
    later table lookup (illegal value used as a packed index); the engine
    ladder must recover from both.
    """

    ILLEGAL_VALUE = 9  # outside {ZERO, ONE, X}

    def __init__(self, *args, corrupt_at_cycle: int = 2, **kwargs) -> None:
        self._corrupt_at_cycle = corrupt_at_cycle
        self.corrupted: Optional[tuple] = None
        super().__init__(*args, **kwargs)

    def step(self, vector):
        newly = super().step(vector)
        if self.cycle >= self._corrupt_at_cycle:
            for gate_index, bucket in enumerate(self.vis):
                if bucket:
                    fid = next(iter(bucket))
                    bucket[fid] = self.ILLEGAL_VALUE
                    self.corrupted = (gate_index, fid)
                    break
        return newly


class FaultListChaos(ConcurrentFaultSimulator):
    """A concurrent engine that corrupts one fault-list invariant.

    After the cycle ``corrupt_at_cycle`` completes (or the first later
    cycle where a suitable target exists), exactly one violation of the
    chosen ``corruption`` class is seeded; ``applied`` records whether it
    landed.  Run with ``SimOptions(sanitize=True)`` the engine's own
    sanitizer must raise :class:`repro.analyze.sanitize.SanitizerError`
    at the next pre-cycle boundary — one chaos class per invariant the
    sanitizer documents:

    ``illegal-value``
        a visible element is overwritten with an out-of-domain value;
    ``dangling-reference``
        an element with an out-of-range fault id appears on a list;
    ``split-swap``
        a visible element is moved to the invisible list unchanged, so
        the invisible side no longer mirrors the good machine;
    ``counter-drift``
        the live-element counter is bumped away from the population;
    ``order-scramble``
        a per-gate local fault list is reversed, breaking the strict
        fault-id ordering;
    ``detected-amnesia``
        a detected descriptor forgets its detection while the result map
        still records it.
    """

    CORRUPTIONS = (
        "illegal-value",
        "dangling-reference",
        "split-swap",
        "counter-drift",
        "order-scramble",
        "detected-amnesia",
    )

    ILLEGAL_VALUE = 9

    def __init__(
        self,
        *args,
        corruption: str = "illegal-value",
        corrupt_at_cycle: int = 1,
        **kwargs,
    ) -> None:
        if corruption not in self.CORRUPTIONS:
            raise ValueError(
                f"unknown corruption {corruption!r}; choose from {self.CORRUPTIONS}"
            )
        self._corruption = corruption
        self._corrupt_at_cycle = corrupt_at_cycle
        self.applied = False
        super().__init__(*args, **kwargs)

    def step(self, vector):
        newly = super().step(vector)
        if not self.applied and self.cycle >= self._corrupt_at_cycle:
            self.applied = self._apply()
        return newly

    def _apply(self) -> bool:
        kind = self._corruption
        if kind == "illegal-value":
            for bucket in self.vis:
                if bucket:
                    bucket[next(iter(bucket))] = self.ILLEGAL_VALUE
                    return True
            return False
        if kind == "dangling-reference":
            self.vis[0][len(self.descriptors) + 7] = self.ILLEGAL_VALUE
            return True
        if kind == "split-swap":
            for gate_index, bucket in enumerate(self.vis):
                if bucket:
                    fid = next(iter(bucket))
                    self.invis[gate_index][fid] = bucket.pop(fid)
                    return True
            return False
        if kind == "counter-drift":
            self._live_elements += 1
            return True
        if kind == "order-scramble":
            for fids in self.local_faults.values():
                if len(fids) >= 2:
                    fids.reverse()
                    return True
            return False
        if kind == "detected-amnesia":
            for descriptor in self.descriptors:
                if descriptor.detected:
                    descriptor.detected = False
                    return True
            return False
        raise AssertionError(f"unhandled corruption {kind!r}")


def chaos_simulator_factory(kind: str, sabotage_engine: str = "csim-MV", **params):
    """A ``simulator_factory`` for :func:`repro.robust.ladder.run_with_ladder`
    that plants a chaotic engine on one rung and leaves the rest honest.

    ``kind`` is ``"drop-events"`` or ``"corrupt-element"``; ``params`` are
    forwarded to the chaos class.  Rungs other than ``sabotage_engine``
    return ``None``, falling through to the default construction.
    """
    classes = {
        "drop-events": EventDropChaos,
        "corrupt-element": ElementCorruptionChaos,
    }
    if kind not in classes:
        raise ValueError(f"unknown chaos kind {kind!r}; choose from {sorted(classes)}")
    chaos_class = classes[kind]

    def factory(engine, circuit, faults, tracer):
        if engine != sabotage_engine:
            return None
        options = SimOptions(
            split_lists="V" in engine, use_macros="M" in engine
        )
        return chaos_class(circuit, faults, options, tracer=tracer, **params)

    return factory


@contextmanager
def step_bomb(
    simulator_class: type,
    after_steps: int,
    exception: Type[BaseException] = KeyboardInterrupt,
    hang_seconds: float = 0.0,
) -> Iterator[dict]:
    """Patch ``simulator_class.step`` to raise after *after_steps* calls.

    Models a worker killed mid-job: the default ``KeyboardInterrupt`` is
    what a SIGINT/SIGKILL-shaped death looks like from inside, so the
    resilient runners convert it to ``CampaignInterrupted`` and the last
    periodic checkpoint on disk remains the resume point.  A nonzero
    ``hang_seconds`` sleeps that long *before* raising — the shape of a
    hung (not merely dead) worker: heartbeats stop while the thread is
    still alive, so only lease expiry can reclaim the job.  Yields a
    mutable counter dict (``{"calls": N}``) so tests can assert how far
    the victim got; the patch is always removed on exit.
    """
    import time as _time

    real_step = simulator_class.step
    state = {"calls": 0}

    def bombed_step(self, vector):
        state["calls"] += 1
        if state["calls"] > after_steps:
            if hang_seconds > 0.0:
                _time.sleep(hang_seconds)
            raise exception()
        return real_step(self, vector)

    simulator_class.step = bombed_step
    try:
        yield state
    finally:
        simulator_class.step = real_step


def truncate_file(path: str, keep_bytes: int) -> None:
    """Chop *path* down to its first ``keep_bytes`` bytes (crash-mid-write
    simulation for checkpoint integrity tests)."""
    size = os.path.getsize(path)
    with open(path, "rb+") as handle:
        handle.truncate(min(keep_bytes, size))
