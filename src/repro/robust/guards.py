"""Failure-isolation guards: tracer sandboxing and engine invariants.

Two guards the chaos harness (:mod:`repro.robust.chaos`) exercises:

* :class:`GuardedTracer` wraps any :class:`repro.obs.Tracer` so that an
  exception raised inside a hook — observability code, by definition not
  allowed to take the simulation down — disarms tracing instead of
  crashing the run.  The first failure is kept for diagnostics; everything
  recorded before it is still available through :meth:`telemetry`.
* :func:`verify_invariants` checks the concurrent engines' internal
  consistency — every stored fault-element value is a legal three-valued
  logic value, the live-element count matches the lists, detected
  descriptors carry a detection cycle — and returns human-readable
  violations.  The engine ladder treats any violation as grounds to
  degrade to a sturdier engine.
"""

from __future__ import annotations

from typing import List, Optional

from repro.logic.values import ONE, X, ZERO
from repro.obs.tracer import Tracer

_VALID_VALUES = (ZERO, ONE, X)


class GuardedTracer(Tracer):
    """Proxy tracer that survives failures of the tracer it wraps.

    After the first hook exception the inner tracer is disarmed: further
    hooks are no-ops, ``failure`` holds the exception, and the simulation
    continues untraced.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate — a guard must never eat a user interrupt.
    """

    def __init__(self, inner: Tracer) -> None:
        self.inner: Optional[Tracer] = inner
        self.failure: Optional[BaseException] = None
        self.failed_hook: Optional[str] = None
        self.enabled = bool(getattr(inner, "enabled", False))

    def _call(self, hook: str, *args, **kwargs):
        inner = self.inner
        if inner is None:
            return None
        try:
            return getattr(inner, hook)(*args, **kwargs)
        except Exception as exc:
            self.failure = exc
            self.failed_hook = hook
            self.inner = None
            self.enabled = False
            return None

    # One explicit stub per protocol hook: engines call these directly.
    def run_start(self, engine, circuit):
        self._call("run_start", engine, circuit)

    def run_end(self, wall_seconds):
        self._call("run_end", wall_seconds)

    def cycle_start(self, cycle):
        self._call("cycle_start", cycle)

    def cycle_end(self, cycle, live=0, visible=0, invisible=0):
        self._call("cycle_end", cycle, live=live, visible=visible, invisible=invisible)

    def phase_time(self, phase, seconds):
        self._call("phase_time", phase, seconds)

    def good_evals(self, gate, count=1):
        self._call("good_evals", gate, count)

    def fault_evals(self, gate, count=1):
        self._call("fault_evals", gate, count)

    def element_visits(self, gate, count):
        self._call("element_visits", gate, count)

    def event(self, gate):
        self._call("event", gate)

    def scheduled(self, gate, level):
        self._call("scheduled", gate, level)

    def diverge(self, gate, fid, visible=True):
        self._call("diverge", gate, fid, visible)

    def converge(self, gate, fid):
        self._call("converge", gate, fid)

    def detect(self, fid, cycle, potential=False):
        self._call("detect", fid, cycle, potential=potential)

    def drop(self, fid, cycle):
        self._call("drop", fid, cycle)

    def budget_breach(self, kind, limit, actual):
        self._call("budget_breach", kind, limit, actual)

    def fallback(self, engine, to, reason):
        self._call("fallback", engine, to, reason)

    def telemetry(self):
        inner = self.inner
        return inner.telemetry() if inner is not None else None


def verify_invariants(simulator) -> List[str]:
    """Consistency check for a concurrent simulator's fault-list state.

    Returns a list of violations (empty when the state is sound).  Checks
    apply to any engine exposing ``vis``/``descriptors`` (the zero-delay,
    transition and event-driven engines); the ``invis`` lists and the
    live-element counter are checked when present.  The word-packed
    engines (PROOFS, vsim) have no fault lists — their only per-fault
    state is the faulty flip-flop diff map, which gets its own checks:
    legal logic values, diffs that actually differ from the good latched
    value, and no state carried for dropped faults.
    """
    violations: List[str] = []
    good = getattr(simulator, "good", None)
    vis = getattr(simulator, "vis", None)
    if vis is None:
        ff_diffs = getattr(simulator, "ff_diffs", None)
        if ff_diffs is None:
            return ["simulator exposes no fault lists to verify"]
        # Word-engine invariants: ``good`` is a LogicSimulator here; the
        # ladder audits at cycle boundaries (post-clock), where each
        # carried diff must disagree with the good machine's DFF value.
        good_values = good.values if good is not None else []
        detected = getattr(simulator, "detected", {})
        for fault, diffs in ff_diffs.items():
            if diffs and fault in detected:
                violations.append(
                    f"dropped fault {fault!r} still carries "
                    f"{len(diffs)} flip-flop diffs"
                )
            for ff_index, value in diffs.items():
                if value not in _VALID_VALUES:
                    violations.append(
                        f"flip-flop diff (fault {fault!r}, gate {ff_index}) holds "
                        f"illegal logic value {value!r}"
                    )
                elif ff_index < len(good_values) and value == good_values[ff_index]:
                    violations.append(
                        f"flip-flop diff (fault {fault!r}, gate {ff_index}) equals "
                        f"the good value {value!r} — not a diff"
                    )
        for index, value in enumerate(good_values):
            if value not in _VALID_VALUES:
                violations.append(
                    f"good machine holds illegal logic value {value!r} at gate {index}"
                )
        return violations

    lists = [("visible", vis)]
    invis = getattr(simulator, "invis", None)
    if invis is not None:
        lists.append(("invisible", invis))

    live = 0
    for label, buckets in lists:
        for gate_index, bucket in enumerate(buckets):
            live += len(bucket)
            for fid, value in bucket.items():
                if value not in _VALID_VALUES:
                    violations.append(
                        f"{label} element (gate {gate_index}, fault {fid}) holds "
                        f"illegal logic value {value!r}"
                    )
    if good is not None:
        for index, value in enumerate(good):
            if value not in _VALID_VALUES:
                violations.append(
                    f"good machine holds illegal logic value {value!r} at gate {index}"
                )

    counted = getattr(simulator, "_live_elements", getattr(simulator, "_live", None))
    if counted is not None and counted != live:
        violations.append(
            f"live-element counter {counted} disagrees with list population {live}"
        )

    for descriptor in getattr(simulator, "descriptors", ()):
        if descriptor.detected and descriptor.detect_cycle is None:
            violations.append(
                f"fault {descriptor.fid} marked detected without a detection cycle"
            )
    return violations
