"""Resilience subsystem: checkpoints, budgets, guards, and the engine ladder.

Long fault-simulation campaigns fail in boring ways — out of time, out of
memory, Ctrl-C, a corrupted state — and the cost of a failure is the whole
campaign unless progress is durable and the failure is detected.  This
package makes campaigns resumable (:mod:`repro.robust.checkpoint`,
:mod:`repro.robust.runner`), bounded (:mod:`repro.robust.budget`),
self-auditing (:mod:`repro.robust.guards`, :mod:`repro.robust.ladder`),
and testable under injected failure (:mod:`repro.robust.chaos`).
"""

from repro.robust.budget import Budget, BudgetBreach, BudgetClock
from repro.robust.checkpoint import (
    CampaignInterrupted,
    Checkpoint,
    CheckpointError,
    circuit_fingerprint,
    config_fingerprint,
    read_checkpoint,
    write_checkpoint,
)
from repro.robust.guards import GuardedTracer, verify_invariants
from repro.robust.ladder import (
    DEFAULT_LADDER,
    VECTOR_LADDER,
    oracle_spot_check,
    run_with_ladder,
)
from repro.robust.runner import (
    DEFAULT_CHECKPOINT_EVERY,
    TableCampaign,
    run_checkpointed,
    run_fingerprint,
)

__all__ = [
    "Budget",
    "BudgetBreach",
    "BudgetClock",
    "CampaignInterrupted",
    "Checkpoint",
    "CheckpointError",
    "GuardedTracer",
    "TableCampaign",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_LADDER",
    "VECTOR_LADDER",
    "circuit_fingerprint",
    "config_fingerprint",
    "oracle_spot_check",
    "read_checkpoint",
    "run_checkpointed",
    "run_fingerprint",
    "run_with_ladder",
    "verify_invariants",
    "write_checkpoint",
]
