"""Test-pattern sources: vector containers, random generation, greedy
compaction, and the coverage-directed generator used for the Table 4 sets."""

from repro.patterns.vectors import TestSequence, parse_vectors, format_vectors
from repro.patterns.random_gen import random_sequence
from repro.patterns.compaction import greedy_compact_tests
from repro.patterns.atpg import generate_tests
from repro.patterns.postprocess import (
    compact_tests,
    remove_redundant_blocks,
    trim_to_coverage_prefix,
)
from repro.patterns.podem import (
    PodemResult,
    generate_deterministic_tests,
    podem,
)

__all__ = [
    "TestSequence",
    "parse_vectors",
    "format_vectors",
    "random_sequence",
    "greedy_compact_tests",
    "generate_tests",
    "compact_tests",
    "remove_redundant_blocks",
    "trim_to_coverage_prefix",
    "PodemResult",
    "generate_deterministic_tests",
    "podem",
]
