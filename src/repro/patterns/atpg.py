"""Coverage-directed test generation presets.

Two presets mirror the two deterministic workloads of the paper:

* ``effort="standard"`` — the Table 3 profile: a quick greedy pass, good
  coverage, short sequences (the PROOFS-distribution tests);
* ``effort="high"`` — the Table 4 profile: more candidates per round, more
  patience before giving up, longer sequences, higher final coverage (the
  authors' own test generator [14] produced "higher coverage tests").

Both are deterministic given the seed, so benchmark tables are stable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import StuckAtFault
from repro.patterns.compaction import greedy_compact_tests
from repro.patterns.vectors import TestSequence

_PRESETS = {
    "standard": dict(
        chunk_length=4,
        candidates_per_round=6,
        max_vectors=256,
        max_stall_rounds=4,
    ),
    "high": dict(
        chunk_length=4,
        candidates_per_round=12,
        max_vectors=1024,
        max_stall_rounds=8,
    ),
}


def generate_tests(
    circuit: Circuit,
    faults: Optional[Iterable[StuckAtFault]] = None,
    effort: str = "standard",
    seed: int = 1992,
    target_coverage: Optional[float] = None,
) -> Tuple[TestSequence, float]:
    """Generate a deterministic-profile test sequence for *circuit*.

    Returns the sequence and the stuck-at coverage it achieves.
    """
    try:
        preset = _PRESETS[effort]
    except KeyError:
        raise ValueError(
            f"unknown effort {effort!r}; choose from {sorted(_PRESETS)}"
        ) from None
    return greedy_compact_tests(
        circuit,
        faults=faults,
        seed=seed,
        target_coverage=target_coverage,
        **preset,
    )
