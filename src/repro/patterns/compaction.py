"""Greedy fault-simulation-guided test compaction.

The paper's Tables 3 and 4 run *deterministic* test sets (from the PROOFS
distribution and from the authors' test generator [14]).  We cannot
redistribute those; this module produces sets with the same profile — short
relative to random testing, high coverage, detections front-loaded — by the
classic simulation-based method: propose random candidate *sequences*,
fault-simulate each from the current circuit state, and keep the one that
detects the most new faults.  Sequential circuits make this stateful, so
the search leans on the concurrent engine's snapshot/restore.

This is not an ATPG competitor; it is a workload generator whose output
drives a fault simulator the way real deterministic tests do, which is all
the paper's comparison needs (DESIGN.md §3).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.faults.model import StuckAtFault
from repro.patterns.random_gen import random_vector
from repro.patterns.vectors import TestSequence


def greedy_compact_tests(
    circuit: Circuit,
    faults: Optional[Iterable[StuckAtFault]] = None,
    seed: int = 1992,
    chunk_length: int = 4,
    candidates_per_round: int = 8,
    max_vectors: int = 512,
    max_stall_rounds: int = 6,
    target_coverage: Optional[float] = None,
) -> Tuple[TestSequence, float]:
    """Build a compact high-coverage test sequence for *circuit*.

    Each round proposes ``candidates_per_round`` random chunks of
    ``chunk_length`` vectors, simulates each from the current sequential
    state, and commits the best one.  Rounds that detect nothing raise a
    stall counter; after ``max_stall_rounds`` barren rounds (with the chunk
    length doubled on each stall to help cross long state distances) the
    search stops.  Returns the sequence and the coverage it achieves.
    """
    rng = random.Random(seed)
    simulator = ConcurrentFaultSimulator(circuit, faults, SimOptions(split_lists=True))
    num_faults = len(simulator.faults)
    tests = TestSequence(len(circuit.inputs))
    stall = 0
    length = chunk_length

    while len(tests) < max_vectors and stall < max_stall_rounds:
        if target_coverage is not None and num_faults:
            if len(simulator.detected) / num_faults >= target_coverage:
                break
        checkpoint = simulator.snapshot()
        best_chunk: Optional[List[tuple]] = None
        best_gain = 0
        for _ in range(candidates_per_round):
            chunk = [
                random_vector(rng, len(circuit.inputs)) for _ in range(length)
            ]
            before = len(simulator.detected)
            for vector in chunk:
                simulator.step(vector)
            gain = len(simulator.detected) - before
            simulator.restore(checkpoint)
            if gain > best_gain:
                best_gain = gain
                best_chunk = chunk
        if best_chunk is None:
            stall += 1
            length = min(length * 2, 64)
            continue
        stall = 0
        length = chunk_length
        for vector in best_chunk:
            simulator.step(vector)
            tests.append(vector)
            if len(tests) >= max_vectors:
                break

    if not tests:
        # Degenerate instance (nothing detectable in the first rounds):
        # fall back to a small random block so callers always get a
        # usable, non-empty test set.
        for vector in (
            random_vector(rng, len(circuit.inputs))
            for _ in range(min(32, max_vectors))
        ):
            simulator.step(vector)
            tests.append(vector)

    coverage = len(simulator.detected) / num_faults if num_faults else 0.0
    return tests, coverage
