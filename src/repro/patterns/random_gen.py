"""Random test-pattern generation.

Random patterns are both a workload in their own right (the paper's
Table 5 simulates 10k+ random patterns on the largest circuit) and the raw
material the greedy compactor distills deterministic-profile test sets
from.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.circuit.netlist import Circuit
from repro.logic.values import ONE, X, ZERO
from repro.patterns.vectors import TestSequence


def random_vector(
    rng: random.Random, num_inputs: int, x_probability: float = 0.0
) -> tuple:
    """One random vector; ``x_probability`` injects unknown inputs."""
    values = []
    for _ in range(num_inputs):
        if x_probability and rng.random() < x_probability:
            values.append(X)
        else:
            values.append(ONE if rng.random() < 0.5 else ZERO)
    return tuple(values)


def random_sequence(
    circuit: Circuit,
    length: int,
    seed: int = 0,
    x_probability: float = 0.0,
    rng: Optional[random.Random] = None,
) -> TestSequence:
    """A deterministic pseudo-random test sequence for *circuit*."""
    rng = rng if rng is not None else random.Random(seed)
    sequence = TestSequence(len(circuit.inputs))
    for _ in range(length):
        sequence.append(random_vector(rng, len(circuit.inputs), x_probability))
    return sequence
