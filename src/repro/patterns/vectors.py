"""Test-vector containers and text I/O.

A *vector* is one primary-input assignment (a tuple of three-valued values,
one per PI, in circuit PI order); a *test sequence* is an ordered list of
vectors applied on consecutive clock cycles starting from the all-X power-up
state.  Sequential test sets are sequences — order matters, unlike in
combinational testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.logic.values import value_from_char, value_to_char

Vector = Tuple[int, ...]


@dataclass
class TestSequence:
    """An ordered test set for a specific circuit's primary inputs."""

    # Not a pytest test class, despite the name.
    __test__ = False

    num_inputs: int
    vectors: List[Vector] = field(default_factory=list)

    def __post_init__(self) -> None:
        for position, vector in enumerate(self.vectors):
            if len(vector) != self.num_inputs:
                raise ValueError(
                    f"vector {position} has {len(vector)} values, expected {self.num_inputs}"
                )

    def __len__(self) -> int:
        return len(self.vectors)

    def __iter__(self) -> Iterator[Vector]:
        return iter(self.vectors)

    def __getitem__(self, index):
        return self.vectors[index]

    def append(self, vector: Sequence[int]) -> None:
        vector = tuple(vector)
        if len(vector) != self.num_inputs:
            raise ValueError(f"vector has {len(vector)} values, expected {self.num_inputs}")
        self.vectors.append(vector)

    def extend(self, vectors: Iterable[Sequence[int]]) -> None:
        for vector in vectors:
            self.append(vector)

    def prefix(self, length: int) -> "TestSequence":
        """The first *length* vectors as a new sequence."""
        return TestSequence(self.num_inputs, list(self.vectors[:length]))


def parse_vectors(text: str, circuit: Circuit) -> TestSequence:
    """Parse one vector per line (``0``/``1``/``X`` characters, PI order)."""
    sequence = TestSequence(len(circuit.inputs))
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        values = tuple(value_from_char(char) for char in line if not char.isspace())
        if len(values) != len(circuit.inputs):
            raise ValueError(
                f"line {line_number}: {len(values)} values for {len(circuit.inputs)} inputs"
            )
        sequence.append(values)
    return sequence


def format_vectors(sequence: TestSequence) -> str:
    """Inverse of :func:`parse_vectors`."""
    return "\n".join("".join(value_to_char(v) for v in vector) for vector in sequence) + "\n"
