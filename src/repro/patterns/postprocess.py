"""Test-sequence post-processing: shrink a sequential test set without
losing coverage.

Unlike combinational test compaction, vectors in a sequential set cannot
be dropped freely — every later vector's behaviour depends on the state
the dropped vector would have established.  Two sound techniques:

* **prefix trimming** — detection is monotone in the applied prefix, so
  the shortest prefix achieving the full set's coverage is found by
  binary search over one incremental simulation's detection profile;
* **block removal** — greedily delete interior blocks, *re-simulating the
  entire remaining sequence* after each trial removal and keeping the
  deletion only when coverage is preserved.  Expensive (each trial is a
  full fault simulation) but exact; this is where a fast fault simulator
  earns its keep in a test-generation flow.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.faults.model import StuckAtFault
from repro.patterns.vectors import TestSequence

_OPTIONS = SimOptions(split_lists=True)


def _coverage_count(
    circuit: Circuit, vectors: List[tuple], faults: Optional[Iterable[StuckAtFault]]
) -> int:
    simulator = ConcurrentFaultSimulator(circuit, faults, _OPTIONS)
    for vector in vectors:
        simulator.step(vector)
    return len(simulator.detected)


def trim_to_coverage_prefix(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
) -> TestSequence:
    """The shortest prefix of *tests* with the full sequence's coverage.

    One simulation suffices: the detection profile says at which cycle the
    last first-detection happened; everything after contributes nothing.
    """
    simulator = ConcurrentFaultSimulator(circuit, faults, _OPTIONS)
    for vector in tests:
        simulator.step(vector)
    if not simulator.detected:
        return tests.prefix(0)
    last_useful = max(simulator.detected.values())
    return tests.prefix(last_useful)


def remove_redundant_blocks(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
    block_length: int = 8,
) -> Tuple[TestSequence, int]:
    """Greedy interior-block removal with full re-simulation.

    Scans blocks from the back (late blocks are the most likely to be
    dead weight once earlier detections are in); a block is deleted when
    the remaining sequence still detects the same number of faults.
    Returns the compacted sequence and the number of simulations spent.
    """
    fault_list = sorted(faults) if faults is not None else None
    vectors = list(tests.vectors)
    target = _coverage_count(circuit, vectors, fault_list)
    simulations = 1
    start = (max(0, len(vectors) - block_length) // block_length) * block_length
    for begin in range(start, -1, -block_length):
        if len(vectors) <= block_length:
            break
        end = min(begin + block_length, len(vectors))
        if end - begin >= len(vectors):
            continue
        candidate = vectors[:begin] + vectors[end:]
        simulations += 1
        if _coverage_count(circuit, candidate, fault_list) >= target:
            vectors = candidate
    return TestSequence(tests.num_inputs, vectors), simulations


def compact_tests(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
    block_length: int = 8,
) -> TestSequence:
    """Prefix trimming followed by block removal (both coverage-exact)."""
    trimmed = trim_to_coverage_prefix(circuit, tests, faults)
    compacted, _ = remove_redundant_blocks(circuit, trimmed, faults, block_length)
    return compacted
