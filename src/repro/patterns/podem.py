"""Deterministic test generation (PODEM) and redundancy identification.

The paper's Table 4 tests come from the authors' own deterministic test
generator (reference [14]); the sequential generator itself is a separate
paper, but its combinational core is the classic PODEM search: branch and
bound over *primary input* assignments only, pruning through three-valued
simulation of the good and faulty machines.

This implementation is simulation-based and therefore exact by
construction:

* a partial assignment (unassigned inputs = X) is *successful* when some
  output carries known, differing good/faulty values — the very detection
  predicate every simulator in this repository uses;
* it is *hopeless* (prune) when no signal could still develop a
  difference: every signal pair is known-equal, or the fault site's good
  value is already fixed at the stuck value;
* the search is complete: with an unbounded backtrack budget, exhausting
  the tree *proves the fault untestable* (redundant) — the combinational
  redundancy-identification service ATPG flows build on.

Combinational circuits only (time-frame expansion is out of scope; the
sequential test sets in this repository come from the simulation-guided
generator in :mod:`repro.patterns.compaction`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.values import ONE, X, ZERO, is_binary
from repro.patterns.vectors import TestSequence


def _check_combinational(circuit: Circuit) -> None:
    if circuit.dffs:
        raise ValueError(
            "PODEM here targets combinational circuits; "
            f"{circuit.name!r} has flip-flops"
        )


def _simulate_pair(
    circuit: Circuit, fault: StuckAtFault, assignment: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Three-valued good and faulty values under a partial assignment."""
    good = [X] * len(circuit.gates)
    bad = [X] * len(circuit.gates)
    for pi_index, value in zip(circuit.inputs, assignment):
        good[pi_index] = value
        bad[pi_index] = value
        if fault.gate == pi_index and fault.pin == OUTPUT_PIN:
            bad[pi_index] = fault.value
    for gate_index in circuit.order:
        gate = circuit.gates[gate_index]
        good[gate_index] = evaluate_gate(
            gate, [good[source] for source in gate.fanin]
        )
        inputs = [bad[source] for source in gate.fanin]
        if fault.gate == gate_index and fault.pin != OUTPUT_PIN:
            inputs[fault.pin] = fault.value
        value = evaluate_gate(gate, inputs)
        if fault.gate == gate_index and fault.pin == OUTPUT_PIN:
            value = fault.value
        bad[gate_index] = value
    return good, bad


def _status(circuit: Circuit, good: List[int], bad: List[int]) -> str:
    """``detected`` / ``possible`` / ``hopeless`` for the current state."""
    for po_index in circuit.outputs:
        g, b = good[po_index], bad[po_index]
        if is_binary(g) and is_binary(b) and g != b:
            return "detected"
    for g, b in zip(good, bad):
        if g == X or b == X:
            return "possible"
        if g != b:
            # A definite internal difference can still reach an output
            # only through X-bearing paths; those were caught above, so
            # keep searching only if some signal is unknown (none is).
            continue
    return "hopeless"


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    fault: StuckAtFault
    vector: Optional[Tuple[int, ...]]
    redundant: bool
    backtracks: int
    aborted: bool

    @property
    def detected(self) -> bool:
        return self.vector is not None


def podem(
    circuit: Circuit,
    fault: StuckAtFault,
    max_backtracks: int = 10_000,
) -> PodemResult:
    """Search for a vector detecting *fault*, or prove it redundant.

    Returns a :class:`PodemResult`; ``redundant`` is only claimed when the
    whole input space was exhausted within the backtrack budget
    (``aborted`` marks budget exhaustion — no verdict).
    """
    _check_combinational(circuit)
    num_inputs = len(circuit.inputs)
    assignment: List[int] = [X] * num_inputs

    # Input ordering heuristic: inputs in the fault site's cone first
    # (they excite the fault), then the rest (they sensitize paths).
    cone: Set[int] = set()
    frontier = [fault.gate]
    while frontier:
        index = frontier.pop()
        if index in cone:
            continue
        cone.add(index)
        frontier.extend(circuit.gates[index].fanin)
    order = sorted(
        range(num_inputs),
        key=lambda position: (circuit.inputs[position] not in cone, position),
    )

    backtracks = 0

    # Iterative branch and bound: stack of (position-in-order, tried-both).
    stack: List[Tuple[int, bool]] = []
    depth = 0
    if fault.pin == OUTPUT_PIN:
        site_line = fault.gate
    else:
        site_line = circuit.gates[fault.gate].fanin[fault.pin]

    while True:
        good, bad = _simulate_pair(circuit, fault, assignment)
        status = _status(circuit, good, bad)
        if status == "possible":
            # Excitation prune: three-valued simulation is monotone, so a
            # known site value equal to the stuck value can never change
            # under any completion — the machines stay identical.
            site_value = good[site_line]
            if is_binary(site_value) and site_value == fault.value:
                status = "hopeless"
        if status == "detected":
            return PodemResult(fault, tuple(assignment), False, backtracks, False)
        if status == "possible" and depth < num_inputs:
            position = order[depth]
            assignment[position] = ZERO
            stack.append((position, False))
            depth += 1
            continue
        # Dead end: backtrack to the deepest choice not yet flipped.
        while stack:
            position, flipped = stack.pop()
            depth -= 1
            if not flipped:
                backtracks += 1
                if backtracks > max_backtracks:
                    assignment[position] = X
                    return PodemResult(fault, None, False, backtracks, True)
                assignment[position] = ONE
                stack.append((position, True))
                depth += 1
                break
            assignment[position] = X
        else:
            return PodemResult(fault, None, True, backtracks, False)


def generate_deterministic_tests(
    circuit: Circuit,
    faults: Optional[Iterable[StuckAtFault]] = None,
    max_backtracks: int = 10_000,
) -> Tuple[TestSequence, List[StuckAtFault], List[StuckAtFault]]:
    """ATPG flow: PODEM per undetected fault, fault-simulate to drop.

    Returns ``(tests, redundant, aborted)``: the generated vectors, the
    faults proven untestable, and the faults the budget gave up on.
    Coverage of the returned set is complete by construction:
    ``detected ∪ redundant ∪ aborted`` partitions the universe.
    """
    _check_combinational(circuit)
    from repro.baselines.deductive import deductive_detects

    fault_list = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    remaining: Set[StuckAtFault] = set(fault_list)
    tests = TestSequence(len(circuit.inputs))
    redundant: List[StuckAtFault] = []
    aborted: List[StuckAtFault] = []

    for fault in fault_list:
        if fault not in remaining:
            continue
        result = podem(circuit, fault, max_backtracks)
        if result.redundant:
            redundant.append(fault)
            remaining.discard(fault)
            continue
        if result.aborted:
            aborted.append(fault)
            remaining.discard(fault)
            continue
        # PODEM vectors may leave inputs at X; ground them for the tester.
        vector = tuple(ZERO if value == X else value for value in result.vector)
        tests.append(vector)
        remaining -= deductive_detects(circuit, vector, remaining)

    return tests, sorted(redundant), sorted(aborted)
