"""The pattern-parallel vector kernel: engine ``vsim``.

``VectorFaultSimulator`` generalizes the PROOFS word packing
(:mod:`repro.baselines.proofs`, one bit per *fault machine*) to a
two-dimensional kernel that can also pack one bit per *pattern*: a window
of up to ``word_width`` consecutive clock cycles evaluates as single
word operations per touched gate.  An :class:`~repro.vector.scheduler.
AxisScheduler` picks the packing axis per window from the live-fault
count and remaining vector depth, re-planning at every window boundary
(where fault drops surface), so a run starts fault-axis while the word is
full of live faults and flips to pattern-axis for the long low-activity
tail.

**Pattern-axis windows are exact**, not an approximation of per-cycle
simulation.  For one fault over a window of ``W`` vectors:

1. the good machine is stepped serially, recording the settled values of
   every cycle (one ``settle`` per vector — identical work to any other
   engine) — packed lazily into per-gate good words, slot ``t`` = cycle
   ``t``;
2. the faulty machine's word plane starts as the good plane; the fault
   site is forced in every slot, and the fault's carried flip-flop diffs
   seed slot 0 of the affected DFF outputs; the combinational cones
   settle event-driven and levelized, exactly the PROOFS group algorithm
   with the bit axis reinterpreted;
3. sequential feedback is closed by fix-up iteration: each DFF's output
   word must equal its input word shifted up one slot (slot ``t+1``
   latches the slot-``t`` D value).  Each pass makes one more leading
   slot final, so the iteration reaches the exact fixpoint in at most
   ``W`` passes — usually 2-3, since state divergence rarely spans the
   window;
4. detections read off primary-output words: the earliest slot whose
   good value is binary and differs binarily is the hard-detection
   cycle; the earliest unknown-faulty slot is the potential-detection
   cycle, recorded only if it does not come after the hard one (the
   per-cycle engines' record-potentials-before-hard ordering).  Outgoing
   flip-flop diffs come from the last slot's D words.

Because both axes implement the same per-cycle semantics, axis choice
never changes detections — the property suite and the cross-validation
tests (vs ``csim-MV`` and the serial oracle) pin bit-identity.

``step()`` is inherited from PROOFS (single-cycle, fault-axis), which is
what the checkpointed runner drives — snapshots therefore never capture a
half-window, and resumed runs stay bit-identical regardless of how the
scheduler would have windowed the uninterrupted run.

An optional numpy path (:mod:`repro.vector.plane`) evaluates pattern
windows for *all* live faults at once on a (faults x patterns) plane of
``uint64`` words, one vectorized operation per gate per sweep.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.baselines.proofs import ProofsSimulator
from repro.logic.tables import GateType
from repro.logic.values import ONE, X
from repro.obs.tracer import Tracer
from repro.result import FaultSimResult
from repro.vector.packing import broadcast_word, evaluate_gate_word, set_slot
from repro.vector.scheduler import AxisDecision, AxisScheduler

#: Engine name in the registry (``csim-V`` was already taken by the
#: split-lists concurrent variant since the seed, so the vectorized
#: kernel registers as ``vsim``).
ENGINE_NAME = "vsim"


class VectorFaultSimulator(ProofsSimulator):
    """Two-dimensional word-packed fault simulator (engine ``vsim``).

    ``axis_mode`` is ``"auto"`` (scheduler), ``"fault"`` or ``"pattern"``
    (fixed, for ablation).  ``use_numpy`` switches pattern windows to the
    levelized (faults x patterns) plane of :mod:`repro.vector.plane`;
    the default (``None``) enables it whenever numpy is available and
    ``word_width <= 64``, so the engine is fast out of the box wherever
    the harness builds it.  Detections are identical either way, only
    the work profile differs.
    """

    engine_name = ENGINE_NAME

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Iterable[StuckAtFault]] = None,
        word_width: int = 64,
        axis_mode: str = "auto",
        crossover: Optional[int] = None,
        use_numpy: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        record_responses: bool = False,
    ) -> None:
        if word_width < 1:
            raise ValueError(f"word width must be >= 1, got {word_width}")
        from repro.vector import plane

        if use_numpy is None:
            use_numpy = plane.available() and word_width <= plane.MAX_PLANE_WIDTH
        elif use_numpy:
            if not plane.available():
                raise ValueError("use_numpy requested but numpy is not installed")
            if word_width > plane.MAX_PLANE_WIDTH:
                raise ValueError(
                    f"the numpy plane packs uint64 words: word width "
                    f"{word_width} > {plane.MAX_PLANE_WIDTH}"
                )
        self.word_width = word_width
        self.axis_mode = axis_mode
        self.scheduler = AxisScheduler(
            word_width, mode=axis_mode, crossover=crossover, dense=use_numpy
        )
        self.use_numpy = use_numpy
        super().__init__(
            circuit,
            faults,
            word_size=word_width,
            tracer=tracer,
            record_responses=record_responses,
        )

    def reset(self) -> None:
        super().reset()
        #: Scheduler decisions, one per window, in run order.
        self.axis_log: List[AxisDecision] = []
        #: Window counts per axis (mirrored onto the result).
        self.axis_windows: Dict[str, int] = {}

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["axis_log"] = list(self.axis_log)
        state["axis_windows"] = dict(self.axis_windows)
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        self.axis_log = list(state.get("axis_log", ()))
        self.axis_windows = dict(state.get("axis_windows", {}))

    # ------------------------------------------------------------------
    # windowed run loop
    # ------------------------------------------------------------------

    def run(self, vectors: Iterable[Sequence[int]], budget: Any = None) -> FaultSimResult:
        if self.record_responses:
            # Dictionary-building mode records per-cycle output mismatches,
            # which only the per-cycle (fault-axis) path observes — pattern
            # windows judge detection on whole words.  Delegate to the
            # inherited PROOFS loop; ``step()`` is the same code the
            # checkpointed runner drives, so recording composes with
            # snapshots unchanged.
            result = super().run(vectors, budget=budget)
            result.axis_windows = dict(self.axis_windows)
            return result
        trace = self.tracer
        if trace is not None:
            trace.run_start(ENGINE_NAME, self.circuit.name)
        clock = budget.start() if budget else None
        start = time.perf_counter()
        vector_list = [vector for vector in vectors]
        applied = 0
        truncation_reason = None
        index = 0
        while index < len(vector_list):
            if clock is not None:
                breach = clock.check(self.counters.cycles, self.memory.peak_bytes)
                if breach is not None:
                    truncation_reason = breach.describe()
                    if trace is not None:
                        trace.budget_breach(breach.kind, breach.limit, breach.actual)
                    break
            live = sum(1 for fault in self.faults if fault not in self.detected)
            depth = len(vector_list) - index
            decision = self.scheduler.choose(self.cycle + 1, live, depth)
            self.axis_log.append(decision)
            self.axis_windows[decision.axis] = self.axis_windows.get(decision.axis, 0) + 1
            window = vector_list[index : index + self.word_width]
            if decision.axis == "pattern":
                self._pattern_window(window)
                applied += len(window)
                index += len(window)
            else:
                # Fault axis: per-cycle PROOFS steps, budget-checked per
                # cycle like the baseline (pattern windows check at the
                # window boundary — the documented coarser granularity).
                for vector in window:
                    if clock is not None:
                        breach = clock.check(
                            self.counters.cycles, self.memory.peak_bytes
                        )
                        if breach is not None:
                            truncation_reason = breach.describe()
                            if trace is not None:
                                trace.budget_breach(
                                    breach.kind, breach.limit, breach.actual
                                )
                            break
                    self.step(vector)
                    applied += 1
                    index += 1
                if truncation_reason is not None:
                    break
        elapsed = time.perf_counter() - start
        result = FaultSimResult(
            engine=ENGINE_NAME,
            circuit_name=self.circuit.name,
            num_faults=len(self.faults),
            num_vectors=applied,
            detected=dict(self.detected),
            potentially_detected=dict(self.potentially_detected),
            counters=self.counters,
            memory=self.memory,
            wall_seconds=elapsed,
            truncated=truncation_reason is not None,
            truncation_reason=truncation_reason,
            axis_windows=dict(self.axis_windows),
        )
        if trace is not None:
            trace.run_end(elapsed)
            result.telemetry = trace.telemetry()
        return result

    # ------------------------------------------------------------------
    # pattern-axis window
    # ------------------------------------------------------------------

    def _pattern_window(self, window: List[Sequence[int]]) -> None:
        """Simulate a window of vectors with one bit slot per cycle."""
        circuit = self.circuit
        width = len(window)
        mask = (1 << width) - 1
        trace = self.tracer
        base_cycle = self.cycle
        live_entry = sum(len(diffs) for diffs in self.ff_diffs.values())

        # Good machine: one serial settle per cycle (identical good work
        # to every other engine), values snapshotted per cycle.  The last
        # cycle's tracer window stays open so the packed fault work below
        # is attributed inside a cycle.
        snaps: List[List[int]] = []
        for offset, vector in enumerate(window):
            self.cycle += 1
            self.counters.cycles += 1
            if trace is not None:
                trace.cycle_start(self.cycle)
                t0 = time.perf_counter()
            self.good.settle(vector)
            self.counters.good_evaluations += circuit.num_combinational
            snaps.append(list(self.good.values))
            if trace is not None:
                trace.good_evals(None, circuit.num_combinational)
                trace.phase_time("good", time.perf_counter() - t0)
            if offset < width - 1:
                self.good.clock()
                if trace is not None:
                    trace.cycle_end(
                        self.cycle, live=live_entry, visible=live_entry, invisible=0
                    )

        # Lazily packed good words: gate -> (ones, xs), slot t = cycle t.
        good_words: Dict[int, Tuple[int, int]] = {}

        def good_word(index: int) -> Tuple[int, int]:
            word = good_words.get(index)
            if word is None:
                ones = 0
                xs = 0
                for slot in range(width):
                    value = snaps[slot][index]
                    if value == ONE:
                        ones |= 1 << slot
                    elif value == X:
                        xs |= 1 << slot
                word = (ones, xs)
                good_words[index] = word
            return word

        if trace is not None:
            t1 = time.perf_counter()
        active = [
            fault
            for fault in self.faults
            if fault not in self.detected
            and self._window_active(fault, mask, good_word)
        ]

        if self.use_numpy and active:
            from repro.vector import plane

            outcomes = plane.simulate_window(self, active, snaps, mask, good_word)
        else:
            outcomes = [
                self._propagate_fault_window(fault, width, mask, snaps, good_word)
                for fault in active
            ]

        for fault, (hard_slot, pot_slot, new_diffs) in zip(active, outcomes):
            if (
                pot_slot is not None
                and fault not in self.potentially_detected
                and (hard_slot is None or pot_slot <= hard_slot)
            ):
                cycle = base_cycle + pot_slot + 1
                self.potentially_detected[fault] = cycle
                if trace is not None:
                    trace.detect(self._fault_ids[fault], cycle, potential=True)
            if hard_slot is not None:
                cycle = base_cycle + hard_slot + 1
                self.detected[fault] = cycle
                self.ff_diffs[fault] = {}
                if trace is not None:
                    trace.detect(self._fault_ids[fault], cycle)
                    trace.drop(self._fault_ids[fault], cycle)
            else:
                self.ff_diffs[fault] = new_diffs

        live = sum(len(diffs) for diffs in self.ff_diffs.values())
        self.memory.note_elements(live)
        if trace is not None:
            trace.phase_time("groups", time.perf_counter() - t1)
        self.good.clock()
        if trace is not None:
            trace.cycle_end(self.cycle, live=live, visible=live, invisible=0)

    def _window_active(self, fault: StuckAtFault, mask: int, good_word: Any) -> bool:
        """Could this fault differ from the good machine inside the window?

        The windowed analogue of PROOFS' per-cycle activity filter: yes if
        it carries faulty flip-flop state, or the stuck line's good value
        opposes the stuck value (X included) in *any* slot.
        """
        if self.ff_diffs[fault]:
            return True
        if fault.pin == OUTPUT_PIN:
            site = fault.gate
        else:
            site = self.circuit.gates[fault.gate].fanin[fault.pin]
        ones, xs = good_word(site)
        if fault.value == ONE:
            return bool(mask & ~ones)
        return bool(ones | xs)

    def _propagate_fault_window(
        self,
        fault: StuckAtFault,
        width: int,
        mask: int,
        snaps: List[List[int]],
        good_word: Any,
    ) -> Tuple[Optional[int], Optional[int], Dict[int, int]]:
        """Propagate one fault through a whole window of cycles at once.

        Returns ``(hard_slot, potential_slot, outgoing_ff_diffs)`` with
        slots window-relative (0-based) or None.
        """
        circuit = self.circuit
        gates = circuit.gates
        trace = self.tracer
        counters = self.counters

        words: Dict[int, Tuple[int, int]] = {}

        def get_word(index: int) -> Tuple[int, int]:
            word = words.get(index)
            if word is None:
                return good_word(index)
            return word

        def set_word(index: int, one_bits: int, x_bits: int) -> bool:
            old = get_word(index)
            if old == (one_bits, x_bits):
                return False
            words[index] = (one_bits, x_bits)
            return True

        queue: List[List[int]] = [[] for _ in range(circuit.num_levels + 1)]
        in_queue: Set[int] = set()
        dirty_ffs: Set[int] = set()

        def schedule(index: int) -> None:
            if index not in in_queue:
                in_queue.add(index)
                queue[gates[index].level].append(index)
                counters.gates_scheduled += 1
                if trace is not None:
                    trace.scheduled(index, gates[index].level)

        def emit(index: int) -> None:
            counters.events += 1
            if trace is not None:
                trace.event(index)
            for sink in gates[index].fanout:
                if gates[sink].gtype is GateType.DFF:
                    dirty_ffs.add(sink)
                else:
                    schedule(sink)

        # Carried flip-flop diffs seed slot 0 (the window's first cycle).
        for ff_index, value in self.ff_diffs[fault].items():
            one_bits, x_bits = get_word(ff_index)
            one_bits, x_bits = set_slot(one_bits, x_bits, 0, value)
            if set_word(ff_index, one_bits, x_bits):
                emit(ff_index)

        # Inject the stuck line, forced in every slot.
        forced_word = broadcast_word(fault.value, mask)
        out_forced = -1
        in_forced: Optional[Tuple[int, int]] = None
        if fault.pin == OUTPUT_PIN:
            out_forced = fault.gate
            if set_word(fault.gate, *forced_word):
                emit(fault.gate)
        else:
            in_forced = (fault.gate, fault.pin)
            if gates[fault.gate].gtype is GateType.DFF:
                dirty_ffs.add(fault.gate)
            else:
                schedule(fault.gate)

        def operand(gate_index: int, pin: int, source: int) -> Tuple[int, int]:
            if in_forced is not None and in_forced == (gate_index, pin):
                return forced_word
            return get_word(source)

        def settle() -> None:
            for level in range(1, len(queue)):
                bucket = queue[level]
                for gate_index in bucket:
                    in_queue.discard(gate_index)
                    counters.fault_evaluations += 1
                    if trace is not None:
                        trace.fault_evals(gate_index)
                    if gate_index == out_forced:
                        one_out, x_out = forced_word
                    else:
                        gate = gates[gate_index]
                        operands = [
                            operand(gate_index, pin, source)
                            for pin, source in enumerate(gate.fanin)
                        ]
                        one_out, x_out = evaluate_gate_word(
                            gate.gtype, operands, mask
                        )
                    if set_word(gate_index, one_out, x_out):
                        emit(gate_index)
                bucket.clear()

        def latched_word(ff_index: int) -> Tuple[int, int]:
            """The D word a DFF latches (input forcing applied)."""
            if in_forced is not None and in_forced == (ff_index, 0):
                return forced_word
            return get_word(gates[ff_index].fanin[0])

        # Close the sequential feedback: slot t+1 of each touched DFF's
        # output must hold slot t of its input.  Each pass finalizes at
        # least one more leading slot, so the fixpoint lands within
        # ``width`` passes; the settle in between replays only the cones
        # the corrections touched.
        settle()
        high_mask = mask & ~1
        for _ in range(width + 1):
            changed = False
            for ff_index in sorted(dirty_ffs):
                if ff_index == out_forced:
                    continue  # output-stuck DFF: Q is forced in every slot
                d_ones, d_xs = latched_word(ff_index)
                q_ones, q_xs = get_word(ff_index)
                req_ones = ((d_ones << 1) & high_mask) | (q_ones & 1)
                req_xs = ((d_xs << 1) & high_mask) | (q_xs & 1)
                if (req_ones, req_xs) != (q_ones, q_xs):
                    set_word(ff_index, req_ones, req_xs)
                    emit(ff_index)
                    changed = True
            if not changed:
                break
            settle()
        else:  # pragma: no cover - the pass bound proof above precludes this
            raise RuntimeError(
                f"pattern window failed to converge within {width + 1} passes"
            )

        # Detection: earliest hard / potential slots over all touched POs.
        hard_slot: Optional[int] = None
        pot_slot: Optional[int] = None
        for po_index in circuit.outputs:
            word = words.get(po_index)
            if word is None:
                continue  # untouched: identical to the good machine
            f_ones, f_xs = word
            g_ones, g_xs = good_word(po_index)
            binary_good = mask & ~g_xs
            unknown = f_xs & binary_good
            mismatch = (f_ones ^ g_ones) & binary_good & ~f_xs
            if unknown:
                slot = (unknown & -unknown).bit_length() - 1
                if pot_slot is None or slot < pot_slot:
                    pot_slot = slot
            if mismatch:
                slot = (mismatch & -mismatch).bit_length() - 1
                if hard_slot is None or slot < hard_slot:
                    hard_slot = slot

        # Outgoing flip-flop diffs from the last slot's D words.
        new_diffs: Dict[int, int] = {}
        if hard_slot is None:
            last = width - 1
            last_bit = 1 << last
            for ff_index in dirty_ffs:
                d_ones, d_xs = latched_word(ff_index)
                if d_ones & last_bit:
                    value = ONE
                elif d_xs & last_bit:
                    value = X
                else:
                    value = 0
                if value != snaps[last][gates[ff_index].fanin[0]]:
                    new_diffs[ff_index] = value
        return (hard_slot, pot_slot, new_diffs)
