"""Optional numpy path: the levelized (faults x patterns) value plane.

When numpy is present and the window fits a machine word
(``word_width <= 64``), a pattern-axis window can evaluate *all* live
faults at once: the circuit state becomes two ``uint64`` arrays of shape
``(gates, faults)`` — the two-mask encoding of :mod:`repro.vector.
packing` with one array element per (gate, fault) and one bit per
pattern, i.e. the faults x patterns plane of the ISSUE laid out one gate
at a time.  Evaluation is *rank-batched*: gates of one level sharing a
gate type evaluate as a single set of array reductions over a gathered
``(gates-in-group, fanins, faults)`` operand block, so a full levelized
settle costs a few dozen vectorized operations rather than a Python-level
loop over gates (let alone faults).

The trade against the scalar path is classic dense-vs-sparse: the scalar
path is event-driven (only the cone a fault disturbs is touched), the
plane path evaluates every combinational gate for every fault each sweep
but does so at numpy throughput.  Detection outcomes are bit-identical
either way — the cross-validation tests pin this — only the
work-counter profile differs (the plane honestly reports its dense
evaluation count).

Sequential feedback closes by fix-up iteration (slot ``t+1`` of each DFF
output must equal slot ``t`` of its D input), each pass finalizing one
more leading slot.  Convergence is sharply bimodal across faults: almost
every row's state divergence dies within a few passes, while a handful
of faults stay divergent for the whole window and would drag every
column through ``width`` dense sweeps.  Rows still changing at
:data:`EVICT_AFTER_PASSES` are therefore frozen and re-solved on a
*compact sub-plane* — the same algorithm over just the divergent columns,
whose sweeps cost near the vectorization floor.

numpy is an optional dependency: :func:`available` gates the import, and
the kernel refuses ``use_numpy=True`` up front when it is missing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType
from repro.logic.values import ONE, X
from repro.vector.packing import broadcast_word, set_slot

_np: Any
try:  # pragma: no cover - exercised via available()
    import numpy

    _np = numpy
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

#: The plane packs patterns into ``uint64`` elements.
MAX_PLANE_WIDTH = 64

#: Fix-up pass at which still-divergent rows leave the main plane for a
#: compact sub-plane of their own (see the module docstring).
EVICT_AFTER_PASSES = 6


def available() -> bool:
    """Whether the numpy plane path can run in this environment."""
    return _np is not None


def _build_rank_plan(circuit: Any) -> Tuple[List[List[Tuple[Any, Any, Any]]], Dict[int, Tuple[int, int, int]], Dict[int, int]]:
    """Group the levelized order into per-level, per-gate-type batches.

    Returns ``(plan, gate_slot, level_pos)``: *plan* is a list (one entry
    per populated level, ascending) of groups ``(gtype, idx, fanin)``
    where *idx* is the member gate indices and *fanin* the ``(G, k)``
    fanin matrix (``None`` for zero-fanin constants); *gate_slot* maps a
    gate index to its ``(level_entry, group, position)``; *level_pos*
    maps a circuit level to its plan entry.  BUF folds into AND and NOT
    into NAND — both are their one-operand cases under the two-mask
    algebra — so the sweep handles six reduction shapes total.
    """
    gates = circuit.gates
    by_level: Dict[int, Dict[Tuple[GateType, int], List[int]]] = {}
    for gate_index in circuit.order:
        gate = gates[gate_index]
        gtype = gate.gtype
        arity = len(gate.fanin)
        if gtype is GateType.BUF:
            key = (GateType.AND, 1)
        elif gtype is GateType.NOT:
            key = (GateType.NAND, 1)
        elif gtype in (GateType.CONST0, GateType.CONST1):
            key = (gtype, 0)
        elif gtype in (
            GateType.AND,
            GateType.NAND,
            GateType.OR,
            GateType.NOR,
            GateType.XOR,
            GateType.XNOR,
        ):
            key = (gtype, arity)
        else:  # MACRO: the word engines run on flat circuits only
            raise ValueError(f"cannot evaluate gate type {gtype} as a word")
        by_level.setdefault(gate.level, {}).setdefault(key, []).append(gate_index)
    plan: List[List[Tuple[Any, Any, Any]]] = []
    gate_slot: Dict[int, Tuple[int, int, int]] = {}
    level_pos: Dict[int, int] = {}
    for level in sorted(by_level):
        groups: List[Tuple[Any, Any, Any]] = []
        for (gtype, arity), members in by_level[level].items():
            idx = _np.asarray(members, dtype=_np.intp)
            fanin = (
                _np.asarray([gates[i].fanin for i in members], dtype=_np.intp)
                if arity
                else None
            )
            for position, gate_index in enumerate(members):
                gate_slot[gate_index] = (len(plan), len(groups), position)
            groups.append((gtype, idx, fanin))
        level_pos[level] = len(plan)
        plan.append(groups)
    return plan, gate_slot, level_pos


def _rank_plan(sim: Any) -> Tuple[Any, Any, Any]:
    """The (cached) rank plan for *sim*'s circuit."""
    plan = getattr(sim, "_plane_rank_plan", None)
    if plan is None:
        plan = _build_rank_plan(sim.circuit)
        sim._plane_rank_plan = plan
    return plan


def _group_output(
    gtype: GateType, op_ones: Any, op_xs: Any, mask: Any
) -> Tuple[Any, Any]:
    """Evaluate one gate-type batch: reduce ``(G, k, F)`` operand blocks.

    The same two-mask algebra as :func:`repro.vector.packing.
    evaluate_gate_word`, with the fanin loop replaced by bitwise
    reductions along the operand axis.
    """
    if gtype in (GateType.AND, GateType.NAND):
        all_one = _np.bitwise_and.reduce(op_ones, axis=1)
        any_zero = _np.bitwise_or.reduce(mask & ~(op_ones | op_xs), axis=1)
        x_out = mask & ~any_zero & ~all_one
        one_out = any_zero if gtype is GateType.NAND else all_one
    elif gtype in (GateType.OR, GateType.NOR):
        any_one = _np.bitwise_or.reduce(op_ones, axis=1)
        all_zero = _np.bitwise_and.reduce(mask & ~(op_ones | op_xs), axis=1)
        x_out = mask & ~any_one & ~all_zero
        one_out = all_zero if gtype is GateType.NOR else any_one
    else:  # XOR / XNOR
        x_out = _np.bitwise_or.reduce(op_xs, axis=1)
        parity = _np.bitwise_xor.reduce(op_ones, axis=1) & mask & ~x_out
        one_out = (
            mask & ~parity & ~x_out if gtype is GateType.XNOR else parity
        )
    return one_out, x_out


def simulate_window(
    sim: Any,
    active: List[StuckAtFault],
    snaps: List[List[int]],
    mask: int,
    good_word: Any,
) -> List[Tuple[Optional[int], Optional[int], Dict[int, int]]]:
    """Evaluate one pattern window for all *active* faults on the plane.

    Drop-in replacement for the kernel's per-fault
    ``_propagate_fault_window`` loop: returns the same
    ``(hard_slot, potential_slot, outgoing_ff_diffs)`` tuple per fault,
    in *active* order.  *sim* is the calling
    :class:`~repro.vector.kernel.VectorFaultSimulator` (circuit, carried
    diffs, counters and tracer are read from it).
    """
    if _np is None:  # pragma: no cover - kernel refuses use_numpy without numpy
        raise RuntimeError("numpy plane requested but numpy is not installed")
    circuit = sim.circuit
    gates = circuit.gates
    counters = sim.counters
    trace = sim.tracer
    num_faults = len(active)
    width = len(snaps)
    u64 = _np.uint64
    mask_u = u64(mask)
    one_u = u64(1)
    plan, gate_slot, _level_pos = _rank_plan(sim)
    num_comb = len(circuit.order)

    # Good plane: pack the per-cycle snapshots into (gates,) words, then
    # broadcast along the fault axis.
    snap_arr = _np.asarray(snaps)  # (width, gates)
    slot_bits = (one_u << _np.arange(width, dtype=u64))[:, None]  # (width, 1)
    good_ones = ((snap_arr == ONE).astype(u64) * slot_bits).sum(axis=0, dtype=u64)
    good_xs = ((snap_arr == X).astype(u64) * slot_bits).sum(axis=0, dtype=u64)
    ones = _np.repeat(good_ones[:, None], num_faults, axis=1)  # (gates, faults)
    xs = _np.repeat(good_xs[:, None], num_faults, axis=1)

    # Per-fault forcing: the stuck site, held in every slot of its row.
    forced_ones = _np.zeros(num_faults, dtype=u64)
    forced_xs = _np.zeros(num_faults, dtype=u64)
    out_forced_gate = [-1] * num_faults
    in_forced: Dict[Tuple[int, int], List[int]] = {}
    pinned_lists: Dict[int, List[int]] = {}
    for row, fault in enumerate(active):
        f_ones, f_xs = broadcast_word(fault.value, mask)
        forced_ones[row] = f_ones
        forced_xs[row] = f_xs
        if fault.pin == OUTPUT_PIN:
            out_forced_gate[row] = fault.gate
            pinned_lists.setdefault(fault.gate, []).append(row)
            ones[fault.gate, row] = f_ones
            xs[fault.gate, row] = f_xs
        else:
            in_forced.setdefault((fault.gate, fault.pin), []).append(row)
        # Carried flip-flop diffs seed slot 0 of the row.
        for ff_index, value in sim.ff_diffs[fault].items():
            if out_forced_gate[row] == ff_index:
                continue  # the forced word already covers every slot
            o, x = set_slot(int(ones[ff_index, row]), int(xs[ff_index, row]), 0, value)
            ones[ff_index, row] = o
            xs[ff_index, row] = x
    pinned_rows = {
        index: _np.asarray(rows, dtype=_np.intp)
        for index, rows in pinned_lists.items()
    }

    # Window-resolved forcing indices for the rank sweep: input-stuck
    # sites become one fancy-indexed override per touched operand block,
    # output-stuck sites one per-level row pin, each applied as a single
    # vectorized assignment per sweep.
    group_overrides: Dict[Tuple[int, int], Tuple[List[int], List[int], List[int]]] = {}
    for (gate_index, pin), rows in in_forced.items():
        slot = gate_slot.get(gate_index)
        if slot is None:
            continue  # a DFF's D pin: applied by latched() below
        entry, group, position = slot
        triple = group_overrides.setdefault((entry, group), ([], [], []))
        for row in rows:
            triple[0].append(position)
            triple[1].append(pin)
            triple[2].append(row)
    overrides = {
        key: tuple(_np.asarray(part, dtype=_np.intp) for part in triple)
        for key, triple in group_overrides.items()
    }
    level_pins: Dict[int, Tuple[Any, Any]] = {}
    pin_lists: Dict[int, Tuple[List[int], List[int]]] = {}
    for gate_index, rows in pinned_lists.items():
        slot = gate_slot.get(gate_index)
        if slot is None:
            continue  # PI or DFF: never recomputed by a sweep
        for row in rows:
            pair = pin_lists.setdefault(slot[0], ([], []))
            pair[0].append(gate_index)
            pair[1].append(row)
    level_pins = {
        entry: (
            _np.asarray(pair[0], dtype=_np.intp),
            _np.asarray(pair[1], dtype=_np.intp),
        )
        for entry, pair in pin_lists.items()
    }

    def rank_sweep() -> None:
        """One dense levelized settle: a few array ops per gate batch."""
        for entry, groups in enumerate(plan):
            for group, (gtype, idx, fanin) in enumerate(groups):
                if fanin is None:
                    value = mask_u if gtype is GateType.CONST1 else u64(0)
                    ones[idx] = value
                    xs[idx] = u64(0)
                    continue
                op_ones = ones[fanin]  # (G, k, F)
                op_xs = xs[fanin]
                triple = overrides.get((entry, group))
                if triple is not None:
                    position, pin, row = triple
                    op_ones[position, pin, row] = forced_ones[row]
                    op_xs[position, pin, row] = forced_xs[row]
                one_out, x_out = _group_output(gtype, op_ones, op_xs, mask_u)
                ones[idx] = one_out
                xs[idx] = x_out
            pinned = level_pins.get(entry)
            if pinned is not None:
                gate_arr, row_arr = pinned
                ones[gate_arr, row_arr] = forced_ones[row_arr]
                xs[gate_arr, row_arr] = forced_xs[row_arr]
        counters.fault_evaluations += num_comb * num_faults
        if trace is not None:
            for gate_index in circuit.order:
                trace.fault_evals(gate_index, num_faults)

    def latched(ff_index: int) -> Tuple[Any, Any]:
        """The D words each row of a DFF latches (input forcing applied)."""
        source = gates[ff_index].fanin[0]
        d_ones = ones[source]
        d_xs = xs[source]
        rows = in_forced.get((ff_index, 0))
        if rows:
            d_ones = d_ones.copy()
            d_xs = d_xs.copy()
            d_ones[rows] = forced_ones[rows]
            d_xs[rows] = forced_xs[rows]
        return d_ones, d_xs

    # Settle, then close the sequential feedback: slot t+1 of every DFF
    # output must equal slot t of its D input.  Each pass finalizes one
    # more leading slot, so the fixpoint lands within ``width`` passes;
    # rows still changing at EVICT_AFTER_PASSES move to a sub-plane.
    high_mask = u64(mask & ~1)
    rank_sweep()
    evicted: List[int] = []
    evict_rows: Optional[Any] = None
    pass_no = 0
    for _ in range(width + 1):
        pass_no += 1
        evicting = pass_no == EVICT_AFTER_PASSES and num_faults > 1
        changed_rows: set = set()
        changed = False
        for ff_index in circuit.dffs:
            d_ones, d_xs = latched(ff_index)
            q_ones = ones[ff_index]
            q_xs = xs[ff_index]
            req_ones = ((d_ones << one_u) & high_mask) | (q_ones & one_u)
            req_xs = ((d_xs << one_u) & high_mask) | (q_xs & one_u)
            rows = pinned_rows.get(ff_index)
            if rows is not None:
                req_ones[rows] = q_ones[rows]
                req_xs[rows] = q_xs[rows]
            if evict_rows is not None:
                req_ones[evict_rows] = q_ones[evict_rows]
                req_xs[evict_rows] = q_xs[evict_rows]
            diff = (req_ones != q_ones) | (req_xs != q_xs)
            if diff.any():
                if evicting:
                    changed_rows.update(_np.nonzero(diff)[0].tolist())
                ones[ff_index] = req_ones
                xs[ff_index] = req_xs
                changed = True
        if not changed:
            break
        if evicting and changed_rows and len(changed_rows) < num_faults:
            # Freeze the divergent tail: columns are independent, so the
            # stale frozen values cannot leak into other rows.
            evicted = sorted(changed_rows)
            evict_rows = _np.asarray(evicted, dtype=_np.intp)
        rank_sweep()
    else:  # pragma: no cover - precluded by the pass bound
        raise RuntimeError(
            f"plane window failed to converge within {width + 1} passes"
        )

    # Detection: earliest hard / potential slot per row over all POs.
    hard_slots: List[Optional[int]] = [None] * num_faults
    pot_slots: List[Optional[int]] = [None] * num_faults
    for po_index in circuit.outputs:
        f_ones = ones[po_index]
        f_xs = xs[po_index]
        g_ones, g_xs = good_word(po_index)
        binary_good = u64(mask & ~g_xs)
        unknown = f_xs & binary_good
        mismatch = (f_ones ^ u64(g_ones)) & binary_good & ~f_xs
        for row in _np.nonzero(unknown)[0]:
            value = int(unknown[row])
            slot = (value & -value).bit_length() - 1
            current = pot_slots[row]
            if current is None or slot < current:
                pot_slots[row] = slot
        for row in _np.nonzero(mismatch)[0]:
            value = int(mismatch[row])
            slot = (value & -value).bit_length() - 1
            current = hard_slots[row]
            if current is None or slot < current:
                hard_slots[row] = slot

    # Outgoing flip-flop diffs from the last slot's D words.
    last = width - 1
    last_bit = u64(1 << last)
    outcomes: List[Tuple[Optional[int], Optional[int], Dict[int, int]]] = [
        (hard_slots[row], pot_slots[row], {}) for row in range(num_faults)
    ]
    for ff_index in circuit.dffs:
        d_ones, d_xs = latched(ff_index)
        d_is_one = (d_ones & last_bit) != 0
        d_is_x = (d_xs & last_bit) != 0
        good_value = snaps[last][gates[ff_index].fanin[0]]
        for row in range(num_faults):
            if hard_slots[row] is not None:
                continue
            if d_is_one[row]:
                value = ONE
            elif d_is_x[row]:
                value = X
            else:
                value = 0
            if value != good_value:
                outcomes[row][2][ff_index] = value

    if evicted:
        # Re-solve the frozen tail exactly on its own compact plane.  The
        # recursion terminates: a sub-plane whose every row is divergent
        # evicts nothing (the guard above requires a strict subset).
        sub_active = [active[row] for row in evicted]
        sub_outcomes = simulate_window(sim, sub_active, snaps, mask, good_word)
        for row, outcome in zip(evicted, sub_outcomes):
            outcomes[row] = outcome
    return outcomes
