"""Two-mask word packing: the shared three-valued bit-parallel encoding.

One signal word encodes ``width`` independent three-valued machines in two
bit masks — ``ones`` (bits that are logic 1) and ``xs`` (bits that are
unknown); a bit clear in both is logic 0, and ``ones & xs`` is always
empty.  The PROOFS baseline packs one *fault machine* per bit; the vector
kernel (:mod:`repro.vector.kernel`) packs one *pattern* (clock cycle) per
bit.  Both axes share this module, so the encoding, the gate algebra and
the round-trip guarantees are defined — and property-tested — exactly
once.

:func:`evaluate_gate_word` is written against the bitwise operators only
(``& | ^ ~`` plus an explicit ``mask``), so the same function evaluates
plain Python integers of any width *and* numpy ``uint64`` arrays (the
levelized plane path in :mod:`repro.vector.plane`), element-wise over a
whole fault axis at a time.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO

#: Word widths the CLI/spec surface accepts (powers of two, >= 8).
MIN_WORD_WIDTH = 8


def validate_word_width(width: Any) -> int:
    """Validate a user-facing ``--word-width`` value.

    Accepts powers of two no smaller than :data:`MIN_WORD_WIDTH` (8, 16,
    32, 64, 128, ...) and returns the value as an ``int``.  Anything else
    — non-integers, booleans, zero, negatives, non-powers-of-two —
    raises ``ValueError``.  Engine constructors stay permissive (any
    positive width simulates correctly; the cross-validation suite runs
    widths 1 and 2 on purpose); this gate applies to the CLI and the
    serve-layer job spec, where a nonsense width is a user error.
    """
    if isinstance(width, bool) or not isinstance(width, int):
        raise ValueError(f"word width must be an integer, got {width!r}")
    if width < MIN_WORD_WIDTH:
        raise ValueError(f"word width must be >= {MIN_WORD_WIDTH}, got {width}")
    if width & (width - 1):
        raise ValueError(f"word width must be a power of two, got {width}")
    return width


def broadcast_word(value: int, mask: int) -> Tuple[int, int]:
    """The ``(ones, xs)`` word holding *value* in every slot of *mask*."""
    if value == ONE:
        return (mask, 0)
    if value == ZERO:
        return (0, 0)
    return (0, mask)


def pack_values(values: Sequence[int]) -> Tuple[int, int]:
    """Pack a sequence of three-valued logic values, one per bit slot.

    Slot *i* (bit ``1 << i``) holds ``values[i]``.  The inverse of
    :func:`unpack_values` for any width, including width 0.
    """
    ones = 0
    xs = 0
    for slot, value in enumerate(values):
        if value == ONE:
            ones |= 1 << slot
        elif value == X:
            xs |= 1 << slot
        elif value != ZERO:
            raise ValueError(f"slot {slot}: not a three-valued logic value: {value!r}")
    return (ones, xs)


def unpack_values(ones: int, xs: int, width: int) -> List[int]:
    """The per-slot logic values of a two-mask word of *width* slots."""
    values: List[int] = []
    for slot in range(width):
        bit = 1 << slot
        if ones & bit:
            values.append(ONE)
        elif xs & bit:
            values.append(X)
        else:
            values.append(ZERO)
    return values


def get_slot(ones: int, xs: int, slot: int) -> int:
    """The logic value in one bit slot of a two-mask word."""
    bit = 1 << slot
    if ones & bit:
        return ONE
    if xs & bit:
        return X
    return ZERO


def set_slot(ones: int, xs: int, slot: int, value: int) -> Tuple[int, int]:
    """A copy of the word with one slot replaced by *value*."""
    bit = 1 << slot
    ones &= ~bit
    xs &= ~bit
    if value == ONE:
        ones |= bit
    elif value == X:
        xs |= bit
    return (ones, xs)


def evaluate_gate_word(
    gtype: GateType, operands: Sequence[Tuple[Any, Any]], mask: Any
) -> Tuple[Any, Any]:
    """Evaluate one gate over packed operands, all slots in parallel.

    *operands* is one ``(ones, xs)`` pair per fanin pin; *mask* covers the
    active slots.  Returns the output ``(ones, xs)`` pair.  Three-valued
    semantics match :mod:`repro.logic.tables` exactly — the
    cross-validation suite pins this against the scalar engines.

    Generic over the operand scalar type: Python ints (arbitrary width)
    and numpy integer arrays (element-wise) both work, because only
    ``& | ^ ~`` and *mask* are used (never ``-`` or comparisons).
    """
    if gtype in (GateType.AND, GateType.NAND):
        all_one = mask
        any_zero = mask & 0
        for one_bits, x_bits in operands:
            all_one = all_one & one_bits
            any_zero = any_zero | (mask & ~(one_bits | x_bits))
        one_out = all_one
        x_out = mask & ~any_zero & ~all_one
        if gtype is GateType.NAND:
            one_out = any_zero  # NAND is 1 exactly where some input is 0
    elif gtype in (GateType.OR, GateType.NOR):
        any_one = mask & 0
        all_zero = mask
        for one_bits, x_bits in operands:
            any_one = any_one | one_bits
            all_zero = all_zero & (mask & ~(one_bits | x_bits))
        one_out = any_one
        x_out = mask & ~any_one & ~all_zero
        if gtype is GateType.NOR:
            one_out = all_zero
    elif gtype in (GateType.XOR, GateType.XNOR):
        x_out = mask & 0
        parity = mask & 0
        for one_bits, x_bits in operands:
            x_out = x_out | x_bits
            parity = parity ^ one_bits
        parity = parity & mask & ~x_out
        one_out = parity
        if gtype is GateType.XNOR:
            one_out = mask & ~parity & ~x_out
    elif gtype is GateType.BUF:
        one_out, x_out = operands[0]
    elif gtype is GateType.NOT:
        one_bits, x_bits = operands[0]
        one_out = mask & ~one_bits & ~x_bits
        x_out = x_bits
    elif gtype is GateType.CONST0:
        one_out, x_out = mask & 0, mask & 0
    elif gtype is GateType.CONST1:
        one_out, x_out = mask, mask & 0
    else:  # MACRO: the word engines run on flat circuits only
        raise ValueError(f"cannot evaluate gate type {gtype} as a word")
    return (one_out, x_out)
