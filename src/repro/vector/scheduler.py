"""The axis-picking scheduler: fault-axis vs pattern-axis per window.

The vector kernel advances in windows of at most ``word_width`` vectors
and asks the scheduler, at every window boundary, which axis to pack:

* **fault axis** — one bit per live fault machine, one cycle at a time
  (the PROOFS layout).  Wins while many faults are live: every word is
  full, and the event-driven per-cycle settle touches only active cones.
* **pattern axis** — one bit per clock cycle, one live fault at a time.
  Wins late in a campaign, when fault dropping has left fewer live
  faults than a word holds: the fault axis would run near-empty words
  for every remaining cycle, while the pattern axis amortizes a whole
  window of cycles into one word per fault.

Window boundaries are exactly where dropped faults become visible (the
kernel re-counts live faults there), so re-planning per window is the
"re-plan at drop-heavy checkpoints" policy: a burst of detections flips
the axis for the rest of the run.  The decision is a pure function of
(live fault count, remaining depth), which is what makes axis choice
partition- and resume-invariant — the property suite asserts detection
outcomes never depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Valid ``axis_mode`` values: the two fixed axes plus the scheduler.
AXIS_MODES: Tuple[str, ...] = ("auto", "fault", "pattern")

#: Minimum remaining depth for the pattern axis to be worth a window.
MIN_PATTERN_DEPTH = 4


@dataclass(frozen=True)
class AxisDecision:
    """One window's axis choice and the inputs that produced it."""

    cycle: int  #: first cycle (1-based) of the window this decision covers
    axis: str  #: "fault" or "pattern"
    live: int  #: undetected faults at the decision point
    depth: int  #: vectors remaining (window is min(depth, word_width))
    reason: str


class AxisScheduler:
    """Chooses the packing axis per window from live faults and depth.

    The cost model depends on how pattern windows evaluate:

    * **scalar** (``dense=False``): a fault-axis window of ``W`` cycles
      costs about ``W * ceil(live / word_width)`` word-evals per touched
      gate, a pattern-axis window about ``live`` (each live fault
      propagates once through a word of ``W`` cycles, plus a small
      fix-up factor for flip-flop feedback).  The crossover is therefore
      at roughly ``live == word_width / 2``, with the *pattern* axis
      taking the low-live side.
    * **dense** (``dense=True``, the numpy plane): a pattern window
      costs a near-constant number of dense rank sweeps regardless of
      how many faults are live, while the event-driven fault axis still
      scales with the live count — so the sides *flip*: the plane takes
      the many-live phase and the fault axis takes the low-live tail,
      where dense sweeps would mostly recompute good values.

    ``crossover`` overrides the threshold for ablation studies.
    """

    def __init__(
        self,
        word_width: int,
        mode: str = "auto",
        crossover: Optional[int] = None,
        min_pattern_depth: int = MIN_PATTERN_DEPTH,
        dense: bool = False,
    ) -> None:
        if mode not in AXIS_MODES:
            raise ValueError(f"unknown axis mode {mode!r}; choose from {AXIS_MODES}")
        if word_width < 1:
            raise ValueError(f"word width must be >= 1, got {word_width}")
        self.word_width = word_width
        self.mode = mode
        self.crossover = max(1, word_width // 2) if crossover is None else crossover
        self.min_pattern_depth = min_pattern_depth
        self.dense = dense

    def choose(self, cycle: int, live: int, depth: int) -> AxisDecision:
        """The axis for the window starting at *cycle* (1-based)."""
        if self.mode != "auto":
            return AxisDecision(cycle, self.mode, live, depth, f"fixed {self.mode} axis")
        if live == 0:
            return AxisDecision(cycle, "fault", live, depth, "no live faults")
        if depth < self.min_pattern_depth:
            return AxisDecision(
                cycle, "fault", live, depth,
                f"depth {depth} < min pattern depth {self.min_pattern_depth}",
            )
        if self.dense:
            if live >= self.crossover:
                return AxisDecision(
                    cycle, "pattern", live, depth,
                    f"dense: live {live} >= crossover {self.crossover}",
                )
            return AxisDecision(
                cycle, "fault", live, depth,
                f"dense: live {live} < crossover {self.crossover}",
            )
        if live < self.crossover:
            return AxisDecision(
                cycle, "pattern", live, depth,
                f"live {live} < crossover {self.crossover}",
            )
        return AxisDecision(
            cycle, "fault", live, depth, f"live {live} >= crossover {self.crossover}"
        )


def predict_axes(
    live_counts: List[int],
    depth: int,
    word_width: int,
    mode: str = "auto",
    dense: bool = False,
) -> List[str]:
    """The axis each shard of a campaign would start on.

    A planning helper for the two-dimensional composition: given the
    per-shard live-fault counts of a partition
    (:func:`repro.parallel.sharding.shard_faults` sizes) and the vector
    depth, report which axis each shard's kernel would pick for its first
    window.  Small shards of an oversharded work-stealing partition start
    on the pattern axis while big shards start on the fault axis — the
    benchmark's axis-ablation uses this to report the mix.
    """
    scheduler = AxisScheduler(word_width, mode=mode, dense=dense)
    return [scheduler.choose(1, live, depth).axis for live in live_counts]
