"""Pattern-parallel vector engine: word-packed fault x pattern kernel.

The package behind engine ``vsim`` (the ISSUE's ``csim-V`` slot — that
name was already taken by the split-lists concurrent variant):

* :mod:`repro.vector.packing` — the shared two-mask three-valued word
  encoding (pack/unpack, slot access, word-parallel gate algebra).
* :mod:`repro.vector.scheduler` — the axis-picking scheduler choosing
  fault-axis vs pattern-axis packing per window.
* :mod:`repro.vector.kernel` — :class:`VectorFaultSimulator`, the
  windowed two-dimensional engine.
* :mod:`repro.vector.plane` — the optional numpy levelized
  (faults x patterns) plane path.
"""

from typing import Any

from repro.vector.packing import (
    MIN_WORD_WIDTH,
    broadcast_word,
    evaluate_gate_word,
    get_slot,
    pack_values,
    set_slot,
    unpack_values,
    validate_word_width,
)
from repro.vector.scheduler import (
    AXIS_MODES,
    MIN_PATTERN_DEPTH,
    AxisDecision,
    AxisScheduler,
    predict_axes,
)


def __getattr__(name: str) -> Any:
    # The kernel subclasses the PROOFS baseline, which itself imports
    # repro.vector.packing — loading it lazily keeps that import acyclic.
    if name in ("ENGINE_NAME", "VectorFaultSimulator"):
        from repro.vector import kernel

        return getattr(kernel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ENGINE_NAME",
    "VectorFaultSimulator",
    "MIN_WORD_WIDTH",
    "broadcast_word",
    "evaluate_gate_word",
    "get_slot",
    "pack_values",
    "set_slot",
    "unpack_values",
    "validate_word_width",
    "AXIS_MODES",
    "MIN_PATTERN_DEPTH",
    "AxisDecision",
    "AxisScheduler",
    "predict_axes",
]
