"""repro — concurrent fault simulation for synchronous sequential circuits.

A full reproduction of Lee & Reddy, *On Efficient Concurrent Fault
Simulation for Synchronous Sequential Circuits*, DAC 1992: the concurrent
stuck-at fault simulator with its three efficiency improvements (event-
driven fault dropping, visible/invisible list splitting, macro extraction
with functional faults), the transition-fault extension, the PROOFS-style
baseline it is compared against, and every substrate — netlists, logic
simulation, fault models, benchmark circuits and test generation.

Quickstart::

    from repro import load_circuit, ConcurrentFaultSimulator, CSIM_MV
    from repro.patterns import random_sequence

    circuit = load_circuit("s27")
    tests = random_sequence(circuit, 64, seed=7)
    result = ConcurrentFaultSimulator(circuit, options=CSIM_MV).run(tests)
    print(result.summary())
"""

from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.library import load as load_circuit
from repro.circuit.macro import extract_macros
from repro.circuit.netlist import Circuit, CircuitBuilder, Gate
from repro.circuit.stats import circuit_stats
from repro.concurrent import (
    CSIM,
    CSIM_M,
    CSIM_MV,
    CSIM_V,
    ConcurrentEventFaultSimulator,
    ConcurrentFaultSimulator,
    SimOptions,
    TransitionFaultSimulator,
)
from repro.baselines import ProofsSimulator, simulate_serial
from repro.diagnosis import build_dictionary, diagnose
from repro.faults import (
    StuckAtFault,
    TransitionFault,
    all_transition_faults,
    collapse_stuck_at,
    fault_name,
    stuck_at_universe,
)
from repro.patterns import generate_tests, random_sequence
from repro.result import FaultSimResult
from repro.sim import EventSimulator, LogicSimulator

__version__ = "1.0.0"

__all__ = [
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "load_circuit",
    "extract_macros",
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "circuit_stats",
    "CSIM",
    "CSIM_M",
    "CSIM_MV",
    "CSIM_V",
    "ConcurrentEventFaultSimulator",
    "ConcurrentFaultSimulator",
    "SimOptions",
    "TransitionFaultSimulator",
    "ProofsSimulator",
    "simulate_serial",
    "build_dictionary",
    "diagnose",
    "StuckAtFault",
    "TransitionFault",
    "all_transition_faults",
    "collapse_stuck_at",
    "fault_name",
    "stuck_at_universe",
    "generate_tests",
    "random_sequence",
    "FaultSimResult",
    "EventSimulator",
    "LogicSimulator",
    "__version__",
]
