"""Experiment harness: uniform engine runners, paper-style table
formatting, and one driver per table of the paper's evaluation section."""

from repro.harness.runner import run_stuck_at, run_transition, compare_engines
from repro.harness.reporting import format_table
from repro.harness import tables

__all__ = [
    "run_stuck_at",
    "run_transition",
    "compare_engines",
    "format_table",
    "tables",
]
