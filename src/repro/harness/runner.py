"""Uniform entry points for running any engine on any workload.

Everything the tables, benchmarks and examples do reduces to: pick a
circuit, pick a test sequence, pick an engine, get a
:class:`repro.result.FaultSimResult` back.  This module is that reduction,
plus a cached workload factory so repeated benchmark invocations reuse the
(deterministic) generated circuits and test sets.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.baselines.proofs import ProofsSimulator
from repro.baselines.serial import simulate_serial, simulate_serial_transition
from repro.circuit.library import load as load_circuit
from repro.circuit.netlist import Circuit
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.faults.model import StuckAtFault
from repro.faults.transition import all_transition_faults
from repro.faults.universe import stuck_at_universe
from repro.obs.tracer import Tracer
from repro.patterns.atpg import generate_tests
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence
from repro.result import FaultSimResult

#: Engine registry: name -> how to run stuck-at simulation with it.
#: ``vsim`` is the pattern-parallel vector kernel (``csim-V`` was already
#: taken by the split-lists concurrent variant).
ENGINE_NAMES = ("csim", "csim-V", "csim-M", "csim-MV", "PROOFS", "vsim", "serial")

#: Engines that take the ``--word-width`` packing knob.
WORD_ENGINES = ("PROOFS", "vsim")

_OPTIONS_BY_NAME = {
    "csim": SimOptions(),
    "csim-V": SimOptions(split_lists=True),
    "csim-M": SimOptions(use_macros=True),
    "csim-MV": SimOptions(split_lists=True, use_macros=True),
}


def engine_options(engine: str) -> Optional[SimOptions]:
    """The :class:`SimOptions` behind a named concurrent variant.

    ``None`` for engines without an options object (``PROOFS``,
    ``serial``) — callers use this to tell which engines can take
    option-level knobs such as ``sanitize``.
    """
    return _OPTIONS_BY_NAME.get(engine)


def make_stuck_at_simulator(
    circuit: Circuit,
    engine: str = "csim-MV",
    faults: Optional[Iterable[StuckAtFault]] = None,
    options: Optional[SimOptions] = None,
    tracer: Optional[Tracer] = None,
    word_width: Optional[int] = None,
    axis_mode: str = "auto",
    record_responses: bool = False,
):
    """Build the simulator object behind a named stuck-at engine.

    The resilient runner (:mod:`repro.robust.runner`) needs the simulator
    itself — for ``snapshot()``/``restore()`` and invariant checks — rather
    than just a finished result; the ``serial`` oracle has no incremental
    simulator object and is rejected here.  ``word_width`` and
    ``axis_mode`` only apply to the word-packed engines
    (:data:`WORD_ENGINES`); other engines ignore them.
    ``record_responses`` puts any engine into dictionary-building mode
    (no fault dropping, full per-fault failure responses on the result).
    """
    if engine == "serial":
        raise ValueError("the serial oracle has no incremental simulator object")
    if options is None:
        options = _OPTIONS_BY_NAME.get(engine)
    if options is not None:
        return ConcurrentFaultSimulator(
            circuit, faults, options, tracer=tracer,
            record_responses=record_responses,
        )
    if engine == "vsim":
        from repro.vector.kernel import VectorFaultSimulator

        return VectorFaultSimulator(
            circuit,
            faults,
            word_width=word_width if word_width is not None else 64,
            axis_mode=axis_mode,
            tracer=tracer,
            record_responses=record_responses,
        )
    if engine == "PROOFS":
        return ProofsSimulator(
            circuit,
            faults,
            word_size=word_width if word_width is not None else 64,
            tracer=tracer,
            record_responses=record_responses,
        )
    raise ValueError(f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")


def run_stuck_at(
    circuit: Circuit,
    tests: TestSequence,
    engine: str = "csim-MV",
    faults: Optional[Iterable[StuckAtFault]] = None,
    options: Optional[SimOptions] = None,
    tracer: Optional[Tracer] = None,
    budget=None,
    jobs: int = 1,
    shard_strategy: str = "round-robin",
    trace_dir: Optional[str] = None,
    trace_ctx=None,
    record_events: bool = False,
    word_width: Optional[int] = None,
    axis_mode: str = "auto",
    record_responses: bool = False,
) -> FaultSimResult:
    """Run one stuck-at engine over *tests*.

    ``engine`` is one of :data:`ENGINE_NAMES`; an explicit ``options``
    overrides the name lookup for concurrent variants (ablations use this).
    A ``tracer`` (see :mod:`repro.obs`) instruments the run — every
    engine, the serial oracle included, mirrors its work counters through
    the hooks.  A ``budget`` (:class:`repro.robust.budget.Budget`) bounds
    the run; a breached run returns a result flagged ``truncated``
    instead of hanging.

    ``jobs > 1`` shards the fault universe over that many worker
    processes (see :mod:`repro.parallel`); detections are bit-identical
    to the single-process run.  A ``tracer`` object cannot cross the
    process boundary, so parallel runs record telemetry in every worker
    instead and attach the merged telemetry to the result; ``trace_dir``
    (with optional ``record_events``) additionally captures the
    cross-process span trace (see :mod:`repro.obs.span`).
    """
    if jobs > 1:
        from repro.parallel.runner import run_parallel

        return run_parallel(
            circuit,
            tests,
            engine,
            faults=faults,
            options=options,
            jobs=jobs,
            shard_strategy=shard_strategy,
            budget=budget,
            telemetry=tracer is not None,
            trace_dir=trace_dir,
            trace_ctx=trace_ctx,
            record_events=record_events,
            word_width=word_width,
            record_responses=record_responses,
        )
    if engine == "serial" and options is None:
        return simulate_serial(
            circuit, tests.vectors, faults, budget=budget, tracer=tracer,
            record_responses=record_responses,
        )
    simulator = make_stuck_at_simulator(
        circuit, engine, faults, options, tracer, word_width=word_width,
        axis_mode=axis_mode, record_responses=record_responses,
    )
    return simulator.run(tests, budget=budget)


def run_transition(
    circuit: Circuit,
    tests: TestSequence,
    split_lists: bool = True,
    faults=None,
    serial: bool = False,
    tracer: Optional[Tracer] = None,
    budget=None,
    jobs: int = 1,
    shard_strategy: str = "round-robin",
    sanitize: bool = False,
    trace_dir: Optional[str] = None,
    trace_ctx=None,
    record_events: bool = False,
) -> FaultSimResult:
    """Run transition-fault simulation (concurrent by default)."""
    if serial and sanitize:
        raise ValueError("the serial transition oracle has no fault lists to sanitize")
    if jobs > 1 and not serial:
        from repro.parallel.runner import run_parallel

        return run_parallel(
            circuit,
            tests,
            transition=True,
            faults=faults,
            options=SimOptions(split_lists=split_lists, sanitize=sanitize),
            jobs=jobs,
            shard_strategy=shard_strategy,
            budget=budget,
            telemetry=tracer is not None,
            trace_dir=trace_dir,
            trace_ctx=trace_ctx,
            record_events=record_events,
        )
    if serial:
        return simulate_serial_transition(circuit, tests.vectors, faults)
    options = SimOptions(split_lists=split_lists, sanitize=sanitize)
    simulator = TransitionFaultSimulator(circuit, faults, options, tracer=tracer)
    return simulator.run(tests, budget=budget)


def compare_engines(
    circuit: Circuit,
    tests: TestSequence,
    engines: Iterable[str] = ("csim-V", "csim-M", "csim-MV", "PROOFS"),
    faults: Optional[Iterable[StuckAtFault]] = None,
    tracer_factory: Optional[Callable[[str], Optional[Tracer]]] = None,
    sanitize: bool = False,
) -> List[FaultSimResult]:
    """Run several engines on the identical workload (the Tables 3/4 shape).

    Raises if the engines disagree on the detected fault set — a paper
    table with silently inconsistent engines would be meaningless.
    ``tracer_factory`` is called once per engine name to supply a fresh
    tracer (or ``None``); each result then carries its own telemetry.
    ``sanitize`` arms the fault-list sanitizer on every concurrent engine
    in the lineup (engines without fault lists run unchanged).
    """
    fault_list = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    results = [
        run_stuck_at(
            circuit,
            tests,
            engine,
            fault_list,
            options=(
                _OPTIONS_BY_NAME[engine].with_(sanitize=True)
                if sanitize and engine in _OPTIONS_BY_NAME
                else None
            ),
            tracer=tracer_factory(engine) if tracer_factory else None,
        )
        for engine in engines
    ]
    reference = results[0].detected
    for result in results[1:]:
        if result.detected != reference:
            raise AssertionError(
                f"engine disagreement on {circuit.name}: "
                f"{results[0].engine} vs {result.engine}"
            )
    return results


# ----------------------------------------------------------------------
# cached deterministic workloads (circuit + tests), shared by benchmarks
# ----------------------------------------------------------------------

_circuit_cache: Dict[Tuple[str, float], Circuit] = {}
_tests_cache: Dict[Tuple[str, float, str, int], Tuple[TestSequence, float]] = {}


def workload_circuit(name: str, scale: float = 1.0) -> Circuit:
    """Benchmark circuit by name, memoized per (name, scale)."""
    key = (name, scale)
    if key not in _circuit_cache:
        _circuit_cache[key] = load_circuit(name, scale=scale)
    return _circuit_cache[key]


def workload_tests(
    name: str,
    scale: float = 1.0,
    kind: str = "deterministic",
    length: int = 256,
    seed: int = 1992,
) -> TestSequence:
    """Deterministic test sequence for a benchmark circuit, memoized.

    ``kind``: ``deterministic`` (Table 3 profile), ``deterministic-high``
    (Table 4 profile) or ``random`` (Table 5; *length* vectors).
    """
    circuit = workload_circuit(name, scale)
    if kind == "random":
        return random_sequence(circuit, length, seed=seed)
    key = (name, scale, kind, seed)
    if key not in _tests_cache:
        effort = "high" if kind == "deterministic-high" else "standard"
        _tests_cache[key] = generate_tests(circuit, effort=effort, seed=seed)
    return _tests_cache[key][0]


def workload_transition_faults(name: str, scale: float = 1.0):
    """Transition fault universe for a benchmark circuit."""
    return all_transition_faults(workload_circuit(name, scale))
