"""Monospace table formatting in the shape of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Numbers are right-aligned, text left-aligned; floats get sensible
    precision.  Returns the table as a string (callers print or log it).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            if cell >= 100:
                return f"{cell:.0f}"
            if cell >= 1:
                return f"{cell:.2f}"
            return f"{cell:.3f}"
        return str(cell)

    rows = [list(row) for row in rows]
    rendered: List[List[str]] = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def align(cell: str, column: int, raw: object) -> str:
        if isinstance(raw, (int, float)):
            return cell.rjust(widths[column])
        return cell.ljust(widths[column])

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for raw_row, row in zip(rows, rendered):
        lines.append(
            "  ".join(align(cell, column, raw) for column, (cell, raw) in enumerate(zip(row, raw_row)))
        )
    return "\n".join(lines)
