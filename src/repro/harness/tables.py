"""One driver per table of the paper's evaluation section.

Each ``tableN`` function regenerates the corresponding table of the paper
on the (synthetic stand-in) benchmark suite: same rows, same comparisons,
same quantities — CPU seconds, memory megabytes (from the fault-element
model), pattern counts, coverages.  Each returns ``(rows, text)`` where
*rows* is structured data (used by EXPERIMENTS.md and the tests) and *text*
a printable table.

``scale`` proportionally shrinks the synthetic circuits so a full run fits
in CI time on a pure-Python engine; shapes (who wins, where macro
extraction pays off) are stable across scales.  The benchmark scripts and
``examples/reproduce_paper_tables.py`` drive these functions.

Cells parallelise at the campaign level: every cell — one circuit × one
table computation — is an independent, deterministic unit, so
:func:`all_tables` with ``jobs > 1`` prefills the cell cache from a
process pool before assembling the report serially.  Because each cell's
value is computed by the same (unsharded) function either way, the
rendered report — in particular the ``deterministic`` mode the resume CI
check diffs — is byte-identical to a single-process run.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.library import TABLE5_CIRCUIT
from repro.circuit.stats import circuit_stats
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.harness.reporting import format_table
from repro.harness.runner import (
    compare_engines,
    engine_options,
    run_stuck_at,
    run_transition,
    workload_circuit,
    workload_tests,
    workload_transition_faults,
)
from repro.obs import RecordingTracer


def _tracer_factory(telemetry: bool):
    """Per-engine tracer supplier for :func:`compare_engines` (or ``None``)."""
    if not telemetry:
        return None
    return lambda engine: RecordingTracer()


def _pruned(circuit, faults):
    """Drop the structurally untestable faults from *faults* (``--prune``)."""
    from repro.analyze import prune_untestable

    return prune_untestable(circuit, faults).kept


def _stuck_at_targets(circuit, prune: bool, collapse: Optional[str]):
    """The stuck-at fault list one cell simulates, honouring the flags.

    Returns ``(faults, collapsed)``.  Without ``collapse`` this is the old
    behaviour (``None`` → engine default universe, pruned when asked).
    With it, the cell simulates the representatives of the *full* (pruned)
    universe and the caller expands results through ``collapsed`` so the
    reported fault counts and coverages are those of the full universe.
    """
    if collapse is None:
        faults = _pruned(circuit, stuck_at_universe(circuit)) if prune else None
        return faults, None
    from repro.analyze import collapse_universe

    universe = all_stuck_at_faults(circuit)
    if prune:
        universe = _pruned(circuit, universe)
    collapsed = collapse_universe(circuit, universe, mode=collapse)
    return list(collapsed.representatives), collapsed


def _expand_all(circuit, tests, collapsed, results):
    """Expand every result through the collapse map (no-op without one).

    Equivalence maps expand exactly; dominance maps route through the
    serial-oracle confirmation so a table cell never reports a detection
    the full universe would not have produced.
    """
    if collapsed is None:
        return results
    if collapsed.implied_by:
        from repro.analyze import expand_verified

        return [
            expand_verified(circuit, tests.vectors, collapsed, result)[0]
            for result in results
        ]
    return [collapsed.expand(result) for result in results]


def _cell(campaign, key, compute):
    """Compute one table cell, durably when a campaign checkpoint is active.

    With a :class:`repro.robust.TableCampaign`, a finished cell is written
    to the checkpoint immediately and a resumed campaign returns it from
    disk without recomputing; without one this is just ``compute()``.
    """
    if campaign is None:
        return compute()
    return campaign.cell(key, compute)


def _scrub_timings(row: Row) -> Row:
    """Zero the wall-clock fields of a row (``deterministic`` table mode).

    CPU seconds are the one nondeterministic quantity in a table row; with
    them zeroed, an interrupted-and-resumed campaign renders byte-identical
    to an uninterrupted one — which is what the CI resume check diffs.
    """
    for key in row:
        if key == "cpu" or key.endswith("_cpu"):
            row[key] = 0.0
    return row


def _attach_telemetry(row: Row, result) -> None:
    if result.telemetry is not None:
        row[f"{result.engine}_telemetry"] = result.telemetry.summary_dict()

#: Default circuit subsets per table, small enough for a pure-Python run.
DEFAULT_TABLE3 = ("s298", "s344", "s382", "s444", "s526", "s820", "s1238", "s1494")
DEFAULT_TABLE4 = ("s298", "s344", "s382", "s444", "s526")
DEFAULT_TABLE6 = ("s298", "s344", "s382", "s444", "s526")

#: Seed shared by every table unless a caller overrides it.
DEFAULT_SEED = 1992

Row = Dict[str, object]


# ----------------------------------------------------------------------
# cell computations — module-level so worker processes can pickle them
# ----------------------------------------------------------------------

_TABLE3_ENGINES = ("csim", "csim-V", "csim-M", "csim-MV", "PROOFS")


def _table2_cell(
    name: str,
    scale: float,
    seed: int,
    prune: bool = False,
    collapse: Optional[str] = None,
) -> Row:
    circuit = workload_circuit(name, scale)
    stats = circuit_stats(circuit)
    if collapse is not None:
        faults, _ = _stuck_at_targets(circuit, prune, collapse)
    else:
        faults = stuck_at_universe(circuit)
        if prune:
            faults = _pruned(circuit, faults)
    tests = workload_tests(name, scale, "deterministic", seed=seed)
    return {
        "circuit": name,
        "pis": stats.num_inputs,
        "pos": stats.num_outputs,
        "dffs": stats.num_dffs,
        "gates": stats.num_gates,
        "levels": stats.num_levels,
        "faults": len(faults),
        "patterns": len(tests),
    }


def _table3_cell(
    name: str,
    scale: float,
    seed: int,
    telemetry: bool,
    deterministic: bool,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Row:
    circuit = workload_circuit(name, scale)
    tests = workload_tests(name, scale, "deterministic", seed=seed)
    faults, collapsed = _stuck_at_targets(circuit, prune, collapse)
    results = _expand_all(
        circuit,
        tests,
        collapsed,
        compare_engines(
            circuit,
            tests,
            _TABLE3_ENGINES,
            faults=faults,
            tracer_factory=_tracer_factory(telemetry),
            sanitize=sanitize,
        ),
    )
    row: Row = {
        "circuit": name,
        "patterns": len(tests),
        "coverage": 100.0 * results[0].coverage,
    }
    for result in results:
        row[f"{result.engine}_cpu"] = result.wall_seconds
        row[f"{result.engine}_mem"] = result.memory.peak_megabytes
        row[f"{result.engine}_work"] = result.counters.total_work()
        _attach_telemetry(row, result)
    return _scrub_timings(row) if deterministic else row


def _table4_cell(
    name: str,
    scale: float,
    seed: int,
    telemetry: bool,
    deterministic: bool,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Row:
    circuit = workload_circuit(name, scale)
    tests = workload_tests(name, scale, "deterministic-high", seed=seed)
    faults, collapsed = _stuck_at_targets(circuit, prune, collapse)
    results = _expand_all(
        circuit,
        tests,
        collapsed,
        compare_engines(
            circuit,
            tests,
            ("csim-MV", "PROOFS"),
            faults=faults,
            tracer_factory=_tracer_factory(telemetry),
            sanitize=sanitize,
        ),
    )
    csim_mv, proofs = results
    row: Row = {
        "circuit": name,
        "patterns": len(tests),
        "coverage": 100.0 * csim_mv.coverage,
        "csim-MV_cpu": csim_mv.wall_seconds,
        "csim-MV_mem": csim_mv.memory.peak_megabytes,
        "PROOFS_cpu": proofs.wall_seconds,
        "PROOFS_mem": proofs.memory.peak_megabytes,
    }
    for result in results:
        _attach_telemetry(row, result)
    return _scrub_timings(row) if deterministic else row


def _table5_cell(
    circuit_name: str,
    scale: float,
    count: int,
    seed: int,
    telemetry: bool,
    deterministic: bool,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Row:
    circuit = workload_circuit(circuit_name, scale)
    tests = workload_tests(circuit_name, scale, "random", length=count, seed=seed)
    faults, collapsed = _stuck_at_targets(circuit, prune, collapse)
    results = _expand_all(
        circuit,
        tests,
        collapsed,
        compare_engines(
            circuit,
            tests,
            ("csim-MV", "PROOFS"),
            faults=faults,
            tracer_factory=_tracer_factory(telemetry),
            sanitize=sanitize,
        ),
    )
    csim_mv, proofs = results
    row: Row = {
        "circuit": circuit_name,
        "patterns": count,
        "coverage": 100.0 * csim_mv.coverage,
        "csim-MV_cpu": csim_mv.wall_seconds,
        "csim-MV_mem": csim_mv.memory.peak_megabytes,
        "PROOFS_cpu": proofs.wall_seconds,
        "PROOFS_mem": proofs.memory.peak_megabytes,
    }
    for result in results:
        _attach_telemetry(row, result)
    return _scrub_timings(row) if deterministic else row


def _table6_cell(
    name: str,
    scale: float,
    seed: int,
    telemetry: bool,
    deterministic: bool,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Row:
    circuit = workload_circuit(name, scale)
    tests = workload_tests(name, scale, "deterministic", seed=seed)
    faults = workload_transition_faults(name, scale)
    if prune:
        faults = _pruned(circuit, faults)
    run_faults, t_collapsed = faults, None
    if collapse is not None:
        from repro.analyze import collapse_universe

        t_collapsed = collapse_universe(
            circuit, faults, mode=collapse, transition=True
        )
        run_faults = list(t_collapsed.representatives)
    result = _expand_all(
        circuit,
        tests,
        t_collapsed,
        [
            run_transition(
                circuit,
                tests,
                split_lists=True,
                faults=run_faults,
                tracer=RecordingTracer() if telemetry else None,
                sanitize=sanitize,
            )
        ],
    )[0]
    stuck_faults, s_collapsed = _stuck_at_targets(circuit, prune, collapse)
    stuck = _expand_all(
        circuit,
        tests,
        s_collapsed,
        [
            run_stuck_at(
                circuit,
                tests,
                "csim-MV",
                faults=stuck_faults,
                options=(
                    engine_options("csim-MV").with_(sanitize=True)
                    if sanitize
                    else None
                ),
            )
        ],
    )[0]
    row: Row = {
        "circuit": name,
        "faults": result.num_faults,
        "patterns": len(tests),
        "stuck_coverage": 100.0 * stuck.coverage,
        "coverage": 100.0 * result.coverage,
        "cpu": result.wall_seconds,
        "mem": result.memory.peak_megabytes,
    }
    _attach_telemetry(row, result)
    return _scrub_timings(row) if deterministic else row


#: Cell dispatch for the parallel prefill worker.
_CELL_FNS = {
    "table2": _table2_cell,
    "table3": _table3_cell,
    "table4": _table4_cell,
    "table5": _table5_cell,
    "table6": _table6_cell,
}


def _compute_cell(spec):
    """Worker entry point: ``((key, (table, args))) -> (key, row)``."""
    key, (table, args) = spec
    return key, _CELL_FNS[table](*args)


def table2(
    circuits: Sequence[str] = DEFAULT_TABLE3,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    campaign=None,
    prune: bool = False,
    collapse: Optional[str] = None,
) -> Tuple[List[Row], str]:
    """Table 2 — benchmark circuit statistics and the tests applied."""
    rows: List[Row] = [
        _cell(
            campaign,
            ("table2", name),
            partial(_table2_cell, name, scale, seed, prune, collapse),
        )
        for name in circuits
    ]
    text = format_table(
        ["ckt", "#PI", "#PO", "#FF", "#gates", "#levels", "#faults", "#ptns"],
        [
            (r["circuit"], r["pis"], r["pos"], r["dffs"], r["gates"], r["levels"], r["faults"], r["patterns"])
            for r in rows
        ],
        title="Table 2. Circuit statistics",
    )
    return rows, text


def table3(
    circuits: Sequence[str] = DEFAULT_TABLE3,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    telemetry: bool = False,
    campaign=None,
    deterministic: bool = False,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Tuple[List[Row], str]:
    """Table 3 — deterministic patterns (I): CPU and memory per engine.

    The paper's claims checked here: split lists and macro extraction each
    reduce CPU consistently; csim-MV is competitive with PROOFS; macro
    extraction costs a little memory on small circuits and saves a lot on
    large ones.

    ``telemetry=True`` attaches each engine's telemetry summary (phase
    times, per-cycle series, drop timeline) to the row as
    ``<engine>_telemetry`` — the machine-readable version of the paper's
    internal-statistics discussion.
    """
    rows: List[Row] = [
        _cell(
            campaign,
            ("table3", name),
            partial(
                _table3_cell, name, scale, seed, telemetry, deterministic, prune,
                sanitize, collapse,
            ),
        )
        for name in circuits
    ]
    text = format_table(
        ["ckt", "#ptns", "cvg%"]
        + [f"{engine} {unit}" for engine in _TABLE3_ENGINES for unit in ("CPU", "mem")],
        [
            tuple(
                [r["circuit"], r["patterns"], r["coverage"]]
                + [
                    r[f"{engine}_{field}"]
                    for engine in _TABLE3_ENGINES
                    for field in ("cpu", "mem")
                ]
            )
            for r in rows
        ],
        title="Table 3. Deterministic patterns (I) — CPU s / memory MB",
    )
    return rows, text


def table4(
    circuits: Sequence[str] = DEFAULT_TABLE4,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    telemetry: bool = False,
    campaign=None,
    deterministic: bool = False,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Tuple[List[Row], str]:
    """Table 4 — deterministic patterns (II): higher-coverage test sets,
    csim-MV vs PROOFS."""
    rows: List[Row] = [
        _cell(
            campaign,
            ("table4", name),
            partial(
                _table4_cell, name, scale, seed, telemetry, deterministic, prune,
                sanitize, collapse,
            ),
        )
        for name in circuits
    ]
    text = format_table(
        ["ckt", "#ptns", "cvg%", "csim-MV CPU", "csim-MV MEM", "PROOFS CPU", "PROOFS MEM"],
        [
            (
                r["circuit"],
                r["patterns"],
                r["coverage"],
                r["csim-MV_cpu"],
                r["csim-MV_mem"],
                r["PROOFS_cpu"],
                r["PROOFS_mem"],
            )
            for r in rows
        ],
        title="Table 4. Deterministic patterns (II) — higher-coverage tests",
    )
    return rows, text


def table5(
    circuit_name: str = TABLE5_CIRCUIT,
    scale: float = 0.05,
    pattern_counts: Sequence[int] = (200, 400, 800),
    seed: int = DEFAULT_SEED,
    telemetry: bool = False,
    campaign=None,
    deterministic: bool = False,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Tuple[List[Row], str]:
    """Table 5 — random-pattern simulation on the largest circuit.

    The paper's observation checked here: under random patterns the
    concurrent simulator's memory stays *below* its deterministic-pattern
    requirement because faults activate slowly.
    """
    rows: List[Row] = [
        _cell(
            campaign,
            ("table5", circuit_name, count),
            partial(
                _table5_cell,
                circuit_name,
                scale,
                count,
                seed,
                telemetry,
                deterministic,
                prune,
                sanitize,
                collapse,
            ),
        )
        for count in pattern_counts
    ]
    text = format_table(
        ["#ptns", "flt cvg%", "csim-MV CPU", "csim-MV MEM", "PROOFS CPU", "PROOFS MEM"],
        [
            (
                r["patterns"],
                r["coverage"],
                r["csim-MV_cpu"],
                r["csim-MV_mem"],
                r["PROOFS_cpu"],
                r["PROOFS_mem"],
            )
            for r in rows
        ],
        title=f"Table 5. Random pattern simulation ({circuit_name}, scale={scale})",
    )
    return rows, text


def table6(
    circuits: Sequence[str] = DEFAULT_TABLE6,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    telemetry: bool = False,
    campaign=None,
    deterministic: bool = False,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> Tuple[List[Row], str]:
    """Table 6 — transition-fault simulation of the stuck-at test sets.

    The paper's observation checked here: stuck-at tests are poor
    transition tests — coverages generally well below 50%.
    """
    rows: List[Row] = [
        _cell(
            campaign,
            ("table6", name),
            partial(
                _table6_cell, name, scale, seed, telemetry, deterministic, prune,
                sanitize, collapse,
            ),
        )
        for name in circuits
    ]
    text = format_table(
        ["ckt", "#flts", "#ptns", "s-a cvg%", "trans cvg%", "CPU", "MEM"],
        [
            (
                r["circuit"],
                r["faults"],
                r["patterns"],
                r["stuck_coverage"],
                r["coverage"],
                r["cpu"],
                r["mem"],
            )
            for r in rows
        ],
        title="Table 6. Transition fault simulation (stuck-at test sets)",
    )
    return rows, text


def plan_cells(
    scale: float = 1.0,
    quick: bool = False,
    deterministic: bool = False,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> List[tuple]:
    """Every cell :func:`all_tables` computes, as ``(key, (table, args))``.

    The plan must mirror :func:`all_tables` exactly — same circuit subsets,
    same table-5 scale and pattern counts — so a parallel prefill computes
    precisely the cells the serial assembly will ask for.
    """
    t3_circuits = DEFAULT_TABLE4 if quick else DEFAULT_TABLE3
    t5_scale = 0.03 if quick else 0.05
    t5_counts = (100, 200) if quick else (200, 400, 800)
    seed = DEFAULT_SEED
    cells: List[tuple] = []
    for name in t3_circuits:
        cells.append(
            (("table2", name), ("table2", (name, scale, seed, prune, collapse)))
        )
    for name in t3_circuits:
        cells.append(
            (
                ("table3", name),
                (
                    "table3",
                    (name, scale, seed, False, deterministic, prune, sanitize, collapse),
                ),
            )
        )
    for name in DEFAULT_TABLE4:
        cells.append(
            (
                ("table4", name),
                (
                    "table4",
                    (name, scale, seed, False, deterministic, prune, sanitize, collapse),
                ),
            )
        )
    for count in t5_counts:
        cells.append(
            (
                ("table5", TABLE5_CIRCUIT, count),
                (
                    "table5",
                    (
                        TABLE5_CIRCUIT,
                        t5_scale,
                        count,
                        seed,
                        False,
                        deterministic,
                        prune,
                        sanitize,
                        collapse,
                    ),
                ),
            )
        )
    for name in DEFAULT_TABLE6:
        cells.append(
            (
                ("table6", name),
                (
                    "table6",
                    (name, scale, seed, False, deterministic, prune, sanitize, collapse),
                ),
            )
        )
    return cells


def prefill_cells(
    campaign,
    scale: float = 1.0,
    quick: bool = False,
    deterministic: bool = False,
    jobs: int = 1,
    prune: bool = False,
    sanitize: bool = False,
    collapse: Optional[str] = None,
) -> int:
    """Fill a campaign's cell cache in parallel; returns cells computed.

    Cells already present (a resumed campaign) are skipped.  Each computed
    cell is recorded through ``campaign.cell`` so durable checkpoints see
    it immediately — a prefilled-then-interrupted campaign resumes exactly
    like a serial one.
    """
    pending = [
        spec
        for spec in plan_cells(scale, quick, deterministic, prune, sanitize, collapse)
        if spec[0] not in campaign.cells
    ]
    if not pending:
        return 0
    if jobs <= 1 or len(pending) == 1:
        for key, row in map(_compute_cell, pending):
            campaign.cell(key, lambda row=row: row)
        return len(pending)
    import multiprocessing

    context = multiprocessing.get_context()
    with context.Pool(processes=min(jobs, len(pending))) as pool:
        for key, row in pool.imap_unordered(_compute_cell, pending):
            campaign.cell(key, lambda row=row: row)
    return len(pending)


def all_tables(
    scale: float = 1.0,
    quick: bool = False,
    campaign=None,
    deterministic: bool = False,
    jobs: int = 1,
    prune_untestable: bool = False,
    collapse: Optional[str] = None,
    sanitize: bool = False,
) -> str:
    """Run every table and return one combined report.

    With a ``campaign`` (:class:`repro.robust.TableCampaign`), every
    finished cell is durable: an interrupted run resumes without
    recomputation.  ``deterministic`` zeroes the wall-clock columns so an
    interrupted-and-resumed report is byte-identical to a fresh one.

    ``jobs > 1`` computes the cells in a pool of worker processes first
    (each cell is an unsharded, deterministic unit of work), then
    assembles the report from the cache; the rendered text is identical
    to a single-process run.
    """
    if jobs > 1:
        if campaign is None:
            from repro.robust.runner import TableCampaign

            campaign = TableCampaign()
        prefill_cells(
            campaign, scale, quick, deterministic, jobs, prune_untestable,
            sanitize, collapse,
        )
    t3_circuits = DEFAULT_TABLE4 if quick else DEFAULT_TABLE3
    sections = [
        table2(
            t3_circuits,
            scale,
            campaign=campaign,
            prune=prune_untestable,
            collapse=collapse,
        )[1],
        table3(
            t3_circuits,
            scale,
            campaign=campaign,
            deterministic=deterministic,
            prune=prune_untestable,
            sanitize=sanitize,
            collapse=collapse,
        )[1],
        table4(
            DEFAULT_TABLE4,
            scale,
            campaign=campaign,
            deterministic=deterministic,
            prune=prune_untestable,
            sanitize=sanitize,
            collapse=collapse,
        )[1],
        table5(
            scale=0.03 if quick else 0.05,
            pattern_counts=(100, 200) if quick else (200, 400, 800),
            campaign=campaign,
            deterministic=deterministic,
            prune=prune_untestable,
            sanitize=sanitize,
            collapse=collapse,
        )[1],
        table6(
            DEFAULT_TABLE6,
            scale,
            campaign=campaign,
            deterministic=deterministic,
            prune=prune_untestable,
            sanitize=sanitize,
            collapse=collapse,
        )[1],
    ]
    return "\n\n".join(sections)
