"""Causal explanations for diagnosis candidates.

Ranking says *which* fault explains the tester's failures; an explanation
says *how*.  The candidate is re-simulated alone with the recording
tracer's event stream armed, and the per-gate ``diverge`` events are
folded into a divergence chain: the fault site, the first gate whose
value diverges in each cycle (events arrive in levelized scheduling
order, so the first record of a cycle is the shallowest new divergence),
and the primary outputs where the difference finally surfaces.  The chain
is the causal story a debug engineer walks by hand — fault, propagation
frontier cycle by cycle, observed failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, fault_name
from repro.patterns.vectors import TestSequence
from repro.result import Failure


@dataclass(frozen=True)
class CycleStep:
    """One cycle of the divergence chain."""

    cycle: int
    #: First (shallowest) gate that newly diverged this cycle, or None
    #: when the effect only travelled through already-diverged elements.
    first_gate: Optional[str]
    #: All gates that newly diverged this cycle, in scheduling order.
    new_gates: Tuple[str, ...]
    #: Primary outputs observed failing this cycle (output-gate names).
    failing_outputs: Tuple[str, ...]


@dataclass(frozen=True)
class Explanation:
    """The causal chain for one candidate fault."""

    circuit_name: str
    fault: Fault
    fault_label: str
    detected_cycle: Optional[int]
    steps: Tuple[CycleStep, ...]
    responses: Tuple[Failure, ...]

    def render(self, max_steps: int = 32) -> str:
        """Human-readable chain, one line per active cycle."""
        lines = [f"fault {self.fault_label} on {self.circuit_name}"]
        shown = self.steps[:max_steps]
        for step in shown:
            parts = []
            if step.first_gate is not None:
                extra = len(step.new_gates) - 1
                frontier = step.first_gate + (f" (+{extra} more)" if extra else "")
                parts.append(f"diverges at {frontier}")
            if step.failing_outputs:
                parts.append("fails at " + ", ".join(step.failing_outputs))
            lines.append(f"  cycle {step.cycle}: " + "; ".join(parts))
        if len(self.steps) > len(shown):
            lines.append(f"  ... {len(self.steps) - len(shown)} more active cycles")
        if self.detected_cycle is not None:
            lines.append(f"  first detected at cycle {self.detected_cycle}")
        else:
            lines.append("  never detected by these vectors")
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """JSON-ready form (the ``/diagnose`` ``explain`` field)."""
        return {
            "fault": self.fault_label,
            "site": [self.fault.gate, self.fault.pin, self.fault.kind.value],
            "detected_cycle": self.detected_cycle,
            "steps": [
                {
                    "cycle": step.cycle,
                    "first_gate": step.first_gate,
                    "new_gates": list(step.new_gates),
                    "failing_outputs": list(step.failing_outputs),
                }
                for step in self.steps
            ],
            "responses": [list(failure) for failure in self.responses],
            "text": self.render(),
        }


def explain_fault(
    circuit: Circuit,
    tests: TestSequence,
    fault: Fault,
    *,
    engine: str = "csim-MV",
) -> Explanation:
    """Re-simulate *fault* alone and assemble its divergence chain.

    Uses a concurrent-engine run (the per-gate ``diverge`` event stream
    is a fault-list concept) with response recording on, so the chain and
    the observed failures come from one simulation.
    """
    from repro.harness.runner import engine_options, make_stuck_at_simulator
    from repro.obs.tracer import RecordingTracer

    if engine_options(engine) is None:
        raise ValueError(
            "explanations need a concurrent engine's per-gate event "
            f"stream; {engine!r} does not provide one"
        )
    tracer = RecordingTracer(record_events=True)
    simulator = make_stuck_at_simulator(
        circuit, engine, [fault], tracer=tracer, record_responses=True
    )
    result = simulator.run(tests)
    responses = (result.responses or {}).get(fault, ())

    diverges_by_cycle: Dict[int, List[str]] = {}
    for record in tracer.records:
        if record["t"] == "diverge":
            gate_index = record["gate"]
            diverges_by_cycle.setdefault(int(record["cycle"]), []).append(
                circuit.gates[gate_index].name
            )

    failures_by_cycle: Dict[int, List[str]] = {}
    for cycle, position in responses:
        failures_by_cycle.setdefault(cycle, []).append(
            circuit.gates[circuit.outputs[position]].name
        )

    steps = tuple(
        CycleStep(
            cycle=cycle,
            first_gate=(diverges_by_cycle[cycle][0]
                        if cycle in diverges_by_cycle else None),
            new_gates=tuple(diverges_by_cycle.get(cycle, ())),
            failing_outputs=tuple(failures_by_cycle.get(cycle, ())),
        )
        for cycle in sorted(set(diverges_by_cycle) | set(failures_by_cycle))
    )
    return Explanation(
        circuit_name=circuit.name,
        fault=fault,
        fault_label=fault_name(circuit, fault),
        detected_cycle=result.detected.get(fault),
        steps=steps,
        responses=tuple(responses),
    )
