"""Fault dictionaries and fault diagnosis.

The classic downstream application of fast fault simulation: simulate the
fault universe once against the production test set, record each fault's
response signature, and later locate defects on failing silicon by matching
observed tester responses against the dictionary.
"""

from repro.diagnosis.dictionary import (
    FaultDictionary,
    FullResponseDictionary,
    PassFailDictionary,
    build_dictionary,
)
from repro.diagnosis.locate import DiagnosisResult, diagnose

__all__ = [
    "FaultDictionary",
    "FullResponseDictionary",
    "PassFailDictionary",
    "build_dictionary",
    "DiagnosisResult",
    "diagnose",
]
