"""Fault dictionaries and fault diagnosis.

The classic downstream application of fast fault simulation: simulate the
fault universe once against the production test set, record each fault's
response signature, and later locate defects on failing silicon by matching
observed tester responses against the dictionary.

Layout:

* :mod:`~repro.diagnosis.dictionary` — sharded, collapsed, checkpointed
  dictionary construction through the standard campaign harness;
* :mod:`~repro.diagnosis.store` — portable content-addressed artifacts
  (``repro-dict/1``) and the canonical rankings serializer;
* :mod:`~repro.diagnosis.locate` — ranking observed failures against a
  dictionary;
* :mod:`~repro.diagnosis.explain` — causal divergence chains for top
  candidates, from the engine's traced event stream.
"""

from repro.diagnosis.dictionary import (
    DICTIONARY_KINDS,
    DictionaryBuildTruncated,
    FaultDictionary,
    FullResponseDictionary,
    PassFailDictionary,
    assemble_dictionary,
    build_dictionary,
    build_responses,
)
from repro.diagnosis.explain import Explanation, explain_fault
from repro.diagnosis.locate import Candidate, DiagnosisResult, diagnose
from repro.diagnosis.store import (
    decode_dictionary,
    decode_responses,
    diagnosis_report,
    dictionary_fingerprint,
    encode_dictionary,
    parse_observed,
    read_manifest,
    serialize_rankings,
)

__all__ = [
    "DICTIONARY_KINDS",
    "DictionaryBuildTruncated",
    "FaultDictionary",
    "FullResponseDictionary",
    "PassFailDictionary",
    "assemble_dictionary",
    "build_dictionary",
    "build_responses",
    "Candidate",
    "DiagnosisResult",
    "diagnose",
    "Explanation",
    "explain_fault",
    "decode_dictionary",
    "decode_responses",
    "diagnosis_report",
    "dictionary_fingerprint",
    "encode_dictionary",
    "parse_observed",
    "read_manifest",
    "serialize_rankings",
]
