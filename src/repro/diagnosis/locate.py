"""Dictionary-based fault location.

Given the failures a tester observed from a defective device, rank the
dictionary's faults by how well their simulated signatures explain the
observation.  Exact matches are reported as such (up to the dictionary's
resolution — equivalence groups share signatures); otherwise candidates
are ranked by signature similarity, the standard fallback when the defect
is not a perfect single-stuck-line (bridging defects, multiple faults,
flaky failures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple

from repro.diagnosis.dictionary import FaultDictionary
from repro.faults.model import Fault


@dataclass(frozen=True)
class Candidate:
    """One ranked explanation for the observed failures."""

    fault: Fault
    score: float
    exact: bool
    matched: int
    missed: int
    extra: int


@dataclass(frozen=True)
class DiagnosisResult:
    """Outcome of matching an observation against a dictionary."""

    observed: FrozenSet
    candidates: Tuple[Candidate, ...]

    @property
    def exact_candidates(self) -> List[Fault]:
        return [c.fault for c in self.candidates if c.exact]

    @property
    def best(self) -> Candidate:
        if not self.candidates:
            raise ValueError("no candidate faults (empty dictionary?)")
        return self.candidates[0]

    def summary(self) -> str:
        if not self.candidates:
            return "no candidates"
        exact = self.exact_candidates
        if exact:
            return f"exact match: {len(exact)} equivalent candidate(s)"
        best = self.best
        return f"closest: {best.fault} (score {best.score:.3f})"


def _similarity(observed: FrozenSet, signature: FrozenSet) -> Tuple[float, int, int, int]:
    """Jaccard similarity plus the matched/missed/extra breakdown.

    ``missed`` are observed failures the fault does not predict (strong
    evidence against it); ``extra`` are predicted failures that did not
    occur (weaker evidence — a marginal defect may fail intermittently).
    """
    matched = len(observed & signature)
    missed = len(observed - signature)
    extra = len(signature - observed)
    union = matched + missed + extra
    score = matched / union if union else 0.0
    return score, matched, missed, extra


def diagnose(
    dictionary: FaultDictionary,
    observed_failures: Iterable,
    top: int = 10,
) -> DiagnosisResult:
    """Rank the dictionary's faults against *observed_failures*.

    *observed_failures* uses the dictionary's own signature domain:
    (cycle, output-position) tuples for a full-response dictionary,
    cycle numbers for a pass/fail one.
    """
    observed = frozenset(observed_failures)
    candidates: List[Candidate] = []
    for fault, signature in dictionary.signatures.items():
        if not signature:
            continue  # undetected faults explain nothing
        score, matched, missed, extra = _similarity(observed, signature)
        if matched == 0:
            continue
        candidates.append(
            Candidate(
                fault=fault,
                score=score,
                exact=(signature == observed),
                matched=matched,
                missed=missed,
                extra=extra,
            )
        )
    candidates.sort(key=lambda c: (-c.score, c.fault))
    return DiagnosisResult(
        observed=observed,
        candidates=tuple(candidates[:top]),
    )
