"""Fault-dictionary construction by concurrent fault simulation.

A fault dictionary is the precomputed map from each modelled fault to the
response a tester would observe from a device carrying it.  Building one
needs *full* fault simulation — every fault simulated against every vector
with no fault dropping — which is exactly the workload the paper's engine
makes affordable; the builder here is the concurrent simulator with a
recording detector.

Two classic formats:

* **full-response**: the set of (cycle, output) positions where the faulty
  response differs from the good one — maximal resolution, maximal size;
* **pass/fail**: only the set of failing cycles — far smaller, coarser
  resolution (the usual production compromise).

Signatures contain *definite* mismatches only (good and faulty both known
and different); unknown faulty values never enter a dictionary because a
tester comparison against an X is not reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.faults.model import Fault, StuckAtFault
from repro.logic.values import X
from repro.patterns.vectors import TestSequence

#: One observed/simulated failure: (cycle, primary-output position).
Failure = Tuple[int, int]


class _RecordingSimulator(ConcurrentFaultSimulator):
    """Concurrent simulator that records every output mismatch of every
    fault (fault dropping is forced off — dictionaries need it all)."""

    def __init__(self, circuit, faults, options: SimOptions) -> None:
        super().__init__(circuit, faults, options.with_(drop_detected=False))
        self.signatures: Dict[int, List[Failure]] = {}

    def _detect(self):
        newly = super()._detect()
        for po_position, po_index in enumerate(self.circuit.outputs):
            good_value = self.good[po_index]
            if good_value == X:
                continue
            for fid, value in self.vis[po_index].items():
                if value == X or value == good_value:
                    continue
                self.signatures.setdefault(fid, []).append(
                    (self.cycle, po_position)
                )
        return newly


@dataclass(frozen=True)
class FaultDictionary:
    """Base dictionary: fault -> response signature."""

    circuit_name: str
    num_vectors: int
    signatures: Dict[Fault, FrozenSet]

    def __len__(self) -> int:
        return len(self.signatures)

    def signature(self, fault: Fault) -> FrozenSet:
        """The signature of *fault* (empty when it never fails)."""
        return self.signatures.get(fault, frozenset())

    def detected_faults(self) -> List[Fault]:
        return sorted(f for f, sig in self.signatures.items() if sig)

    def indistinguishable_groups(self) -> List[List[Fault]]:
        """Faults with identical (non-empty) signatures — the resolution
        limit of this dictionary on this test set."""
        groups: Dict[FrozenSet, List[Fault]] = {}
        for fault, signature in self.signatures.items():
            if signature:
                groups.setdefault(signature, []).append(fault)
        return sorted(
            (sorted(members) for members in groups.values() if len(members) > 1),
            key=lambda members: members[0],
        )


@dataclass(frozen=True)
class FullResponseDictionary(FaultDictionary):
    """Signatures are frozensets of (cycle, output-position) failures."""


@dataclass(frozen=True)
class PassFailDictionary(FaultDictionary):
    """Signatures are frozensets of failing cycle numbers."""


def build_dictionary(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
    kind: str = "full",
    options: SimOptions = SimOptions(split_lists=True),
) -> FaultDictionary:
    """Simulate the universe without dropping and assemble a dictionary.

    ``kind``: ``"full"`` for (cycle, output) resolution, ``"passfail"``
    for failing-cycle resolution.
    """
    if kind not in ("full", "passfail"):
        raise ValueError(f"unknown dictionary kind {kind!r}")
    simulator = _RecordingSimulator(circuit, faults, options)
    for vector in tests:
        simulator.step(vector)
    signatures: Dict[Fault, FrozenSet] = {}
    for fid, descriptor in enumerate(simulator.descriptors):
        failures = simulator.signatures.get(fid, [])
        if kind == "full":
            signatures[descriptor.fault] = frozenset(failures)
        else:
            signatures[descriptor.fault] = frozenset(cycle for cycle, _ in failures)
    cls = FullResponseDictionary if kind == "full" else PassFailDictionary
    return cls(
        circuit_name=circuit.name,
        num_vectors=len(tests),
        signatures=signatures,
    )
