"""Fault-dictionary construction by concurrent fault simulation.

A fault dictionary is the precomputed map from each modelled fault to the
response a tester would observe from a device carrying it.  Building one
needs *full* fault simulation — every fault simulated against every vector
with no fault dropping — which is exactly the workload the paper's engine
makes affordable.  The builder is the standard harness
(:func:`repro.harness.runner.run_stuck_at` /
:func:`repro.parallel.runner.run_parallel`) in ``record_responses`` mode,
so every campaign facility applies uniformly: engine choice across the
ladder (every engine produces bit-identical response maps), fault
sharding over worker processes, budgets, tracers, and per-shard
checkpoints — a build killed mid-flight resumes instead of recomputing.

Construction defaults to the *collapsed* universe: only equivalence-class
representatives are simulated, and every class member inherits its
representative's response tuple exactly
(:meth:`repro.analyze.collapse.CollapsedUniverse.expand_responses`).
Equivalent machines are identical, so the collapsed dictionary is
bit-identical to the full-universe one at a fraction of the cost.
Dominance collapsing is refused: dominance argues detection, never the
response shape.

Two classic formats:

* **full-response**: the set of (cycle, output) positions where the faulty
  response differs from the good one — maximal resolution, maximal size;
* **pass/fail**: only the set of failing cycles — far smaller, coarser
  resolution (the usual production compromise).

Signatures contain *definite* mismatches only (good and faulty both known
and different); unknown faulty values never enter a dictionary because a
tester comparison against an X is not reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.obs.tracer import Tracer
    from repro.robust.budget import Budget

from repro.circuit.netlist import Circuit
from repro.concurrent.options import SimOptions
from repro.faults.model import Fault, StuckAtFault
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.patterns.vectors import TestSequence
from repro.result import Failure

#: Recognised dictionary formats.
DICTIONARY_KINDS = ("full", "passfail")


@dataclass(frozen=True)
class FaultDictionary:
    """Base dictionary: fault -> response signature."""

    circuit_name: str
    num_vectors: int
    signatures: Dict[Fault, FrozenSet]

    #: Format tag ("full" or "passfail"); set by the concrete classes.
    kind = ""

    def __len__(self) -> int:
        return len(self.signatures)

    def signature(self, fault: Fault) -> FrozenSet:
        """The signature of *fault* (empty when it never fails)."""
        return self.signatures.get(fault, frozenset())

    def detected_faults(self) -> List[Fault]:
        return sorted(f for f, sig in self.signatures.items() if sig)

    def indistinguishable_groups(self) -> List[List[Fault]]:
        """Faults with identical (non-empty) signatures — the resolution
        limit of this dictionary on this test set."""
        groups: Dict[FrozenSet, List[Fault]] = {}
        for fault, signature in self.signatures.items():
            if signature:
                groups.setdefault(signature, []).append(fault)
        return sorted(
            (sorted(members) for members in groups.values() if len(members) > 1),
            key=lambda members: members[0],
        )


@dataclass(frozen=True)
class FullResponseDictionary(FaultDictionary):
    """Signatures are frozensets of (cycle, output-position) failures."""

    kind = "full"


@dataclass(frozen=True)
class PassFailDictionary(FaultDictionary):
    """Signatures are frozensets of failing cycle numbers."""

    kind = "passfail"


def _signature_of(kind: str, failures: Tuple[Failure, ...]) -> FrozenSet:
    if kind == "full":
        return frozenset(failures)
    return frozenset(cycle for cycle, _ in failures)


def assemble_dictionary(
    circuit_name: str,
    num_vectors: int,
    responses: Dict[Fault, Tuple[Failure, ...]],
    kind: str = "full",
) -> FaultDictionary:
    """Fold a per-fault response map into a dictionary of *kind*.

    The shared final step of :func:`build_dictionary` and the on-disk
    decoder (:mod:`repro.diagnosis.store`) — one code path guarantees a
    decoded dictionary matches a freshly built one bit-for-bit.
    """
    if kind not in DICTIONARY_KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r}")
    signatures = {
        fault: _signature_of(kind, failures)
        for fault, failures in sorted(responses.items())
    }
    cls = FullResponseDictionary if kind == "full" else PassFailDictionary
    return cls(
        circuit_name=circuit_name,
        num_vectors=num_vectors,
        signatures=signatures,
    )


class DictionaryBuildTruncated(RuntimeError):
    """A dictionary build stopped early (budget breach or short shard).

    A truncated response map must never masquerade as a dictionary — a
    fault that would fail on an unsimulated cycle would silently carry the
    wrong signature.  Any per-shard checkpoints remain on disk, so the
    same build invoked again with ``resume=True`` picks up where the
    budget struck instead of recomputing.
    """


def build_responses(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
    kind: str = "full",
    options: Optional[SimOptions] = None,
    *,
    engine: str = "csim-MV",
    collapse: Optional[str] = "equivalence",
    jobs: int = 1,
    shard_strategy: str = "round-robin",
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    budget: Optional["Budget"] = None,
    tracer: Optional["Tracer"] = None,
    word_width: Optional[int] = None,
) -> Dict[Fault, Tuple[Failure, ...]]:
    """The full-resolution response map :func:`build_dictionary` folds.

    Same contract and parameters; this is the step before the fold, for
    callers (the CLI's artifact writer, the serve layer) that need the
    raw per-fault responses rather than a signature dictionary.  ``kind``
    only names the build in checkpoint fingerprints here — responses are
    always full resolution.
    """
    if kind not in DICTIONARY_KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r}")
    if collapse is not None and collapse != "equivalence":
        raise ValueError(
            "fault dictionaries require exact response attribution; "
            "collapse must be 'equivalence' or None, not "
            f"{collapse!r}"
        )

    if faults is not None:
        universe = sorted(set(faults))
    elif collapse is not None:
        # Collapsing targets the *full* pin-level universe — the serve
        # layer's convention — so every pin fault gets its response by
        # exact class inheritance at no extra simulation cost.
        universe = all_stuck_at_faults(circuit)
    else:
        universe = stuck_at_universe(circuit)

    collapsed = None
    simulate_faults: List[Fault] = list(universe)
    fingerprint_extra: tuple = ("diagnosis-dictionary", kind)
    if collapse is not None:
        from repro.analyze.collapse import collapse_universe

        collapsed = collapse_universe(circuit, universe, mode=collapse)
        simulate_faults = list(collapsed.representatives)
        fingerprint_extra = fingerprint_extra + collapsed.fingerprint_material()

    if checkpoint_path is not None or jobs > 1:
        from repro.parallel.runner import run_parallel

        result = run_parallel(
            circuit,
            tests,
            engine,
            faults=simulate_faults,
            options=options,
            jobs=jobs,
            shard_strategy=shard_strategy,
            budget=budget,
            telemetry=tracer is not None,
            checkpoint_path=checkpoint_path,
            resume=resume,
            checkpoint_every=checkpoint_every,
            word_width=word_width,
            record_responses=True,
            fingerprint_extra=fingerprint_extra,
        )
    else:
        from repro.harness.runner import run_stuck_at

        result = run_stuck_at(
            circuit,
            tests,
            engine,
            faults=simulate_faults,
            options=options,
            tracer=tracer,
            budget=budget,
            word_width=word_width,
            record_responses=True,
        )
    if result.truncated:
        raise DictionaryBuildTruncated(
            f"dictionary build stopped early ({result.truncation_reason}); "
            "checkpoints (if any) remain for resume"
        )
    responses = result.responses
    assert responses is not None
    if collapsed is not None:
        responses = collapsed.expand_responses(responses)
    return responses


def build_dictionary(
    circuit: Circuit,
    tests: TestSequence,
    faults: Optional[Iterable[StuckAtFault]] = None,
    kind: str = "full",
    options: Optional[SimOptions] = None,
    *,
    engine: str = "csim-MV",
    collapse: Optional[str] = "equivalence",
    jobs: int = 1,
    shard_strategy: str = "round-robin",
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    budget: Optional["Budget"] = None,
    tracer: Optional["Tracer"] = None,
    word_width: Optional[int] = None,
) -> FaultDictionary:
    """Simulate the universe without dropping and assemble a dictionary.

    ``kind``: ``"full"`` for (cycle, output) resolution, ``"passfail"``
    for failing-cycle resolution.  ``faults`` defaults to the full
    structural stuck-at universe.

    ``collapse="equivalence"`` (the default) simulates only equivalence
    representatives and expands their responses exactly onto every class
    member; pass ``collapse=None`` to simulate the universe verbatim.
    Both produce bit-identical dictionaries.  ``engine`` is any stuck-at
    engine in the ladder (:data:`repro.harness.runner.ENGINE_NAMES`);
    ``jobs`` shards the build over worker processes; ``checkpoint_path``
    arms durable per-shard progress so a killed build resumes (pass
    ``resume=True`` on the retry).  A budget-truncated build raises
    :class:`DictionaryBuildTruncated` rather than returning a dictionary
    with silently incomplete signatures.
    """
    responses = build_responses(
        circuit,
        tests,
        faults,
        kind,
        options,
        engine=engine,
        collapse=collapse,
        jobs=jobs,
        shard_strategy=shard_strategy,
        checkpoint_path=checkpoint_path,
        resume=resume,
        checkpoint_every=checkpoint_every,
        budget=budget,
        tracer=tracer,
        word_width=word_width,
    )
    return assemble_dictionary(circuit.name, len(tests), responses, kind)
