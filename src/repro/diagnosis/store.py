"""Portable on-disk fault-dictionary artifacts (schema ``repro-dict/1``).

A dictionary artifact is one canonical-JSON blob: a small manifest, the
sorted fault universe as ``[gate, pin, kind]`` triples, and one response
list per fault in the same order.  Canonical encoding (sorted keys, no
whitespace) makes the bytes a pure function of the dictionary content —
two builds that agree produce identical artifacts, so artifacts can live
in the serve result cache under a content address and be compared with
``==``.  Responses are always stored at full (cycle, output) resolution;
the ``kind`` tag says how to fold them on decode, so a pass/fail
dictionary's artifact still carries everything a full-response rebuild
needs.

The content address (:func:`dictionary_fingerprint`) hashes the inputs
that determine the dictionary — netlist, vectors, fault universe, the
collapse map, and the format — not the output bytes, so a cached artifact
can be *looked up* before anyone pays for the build.

:func:`serialize_rankings` is the one serializer for diagnosis rankings;
the CLI and the ``/diagnose`` service both emit its bytes, which is what
makes their outputs byte-identical for the same query.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.diagnosis.dictionary import (
    DICTIONARY_KINDS,
    FaultDictionary,
    assemble_dictionary,
)
from repro.diagnosis.locate import DiagnosisResult
from repro.faults.model import Fault, FaultKind, StuckAtFault, fault_name
from repro.logic.values import value_to_char
from repro.patterns.vectors import TestSequence
from repro.result import Failure
from repro.robust.checkpoint import circuit_fingerprint

#: Artifact schema identifier (bump on any encoding change).
SCHEMA = "repro-dict/1"


def _canonical(document: object) -> bytes:
    return (
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("ascii")


class DictionaryDecodeError(ValueError):
    """The artifact bytes are not a valid ``repro-dict/1`` dictionary."""


def dictionary_fingerprint(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    universe: Sequence[Fault],
    kind: str = "full",
    collapse_material: Optional[tuple] = None,
) -> str:
    """Content address of the dictionary these inputs determine.

    sha256 over the netlist fingerprint, the vectors, the sorted fault
    universe, the dictionary format, and the collapse map's own
    fingerprint material (``None`` for an uncollapsed build).  Collapsed
    and uncollapsed builds hash differently even though their dictionaries
    are bit-identical — the address names the *computation*, and a stale
    collapse map must never satisfy a fresh request.
    """
    material = {
        "circuit": circuit_fingerprint(circuit),
        "vectors": [
            "".join(value_to_char(value) for value in vector) for vector in vectors
        ],
        "faults": [list(fault._sort_key()) for fault in sorted(universe)],
        "kind": kind,
        "collapse": list(collapse_material) if collapse_material else None,
    }
    return hashlib.sha256(_canonical(material)).hexdigest()


def encode_dictionary(
    circuit_name: str,
    num_vectors: int,
    responses: Dict[Fault, Tuple[Failure, ...]],
    kind: str = "full",
    collapse: Optional[str] = None,
) -> bytes:
    """Encode a per-fault response map as a ``repro-dict/1`` artifact."""
    if kind not in DICTIONARY_KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r}")
    ordered = sorted(responses.items())
    faults = [[fault.gate, fault.pin, fault.kind.value] for fault, _ in ordered]
    failing = [
        [[cycle, position] for cycle, position in failures] for _, failures in ordered
    ]
    document = {
        "schema": SCHEMA,
        "manifest": {
            "circuit": circuit_name,
            "kind": kind,
            "collapse": collapse,
            "num_vectors": num_vectors,
            "num_faults": len(ordered),
            "num_detected": sum(1 for _, failures in ordered if failures),
        },
        "faults": faults,
        "responses": failing,
    }
    return _canonical(document)


def read_manifest(blob: bytes) -> dict:
    """The artifact's manifest (schema-checked), without building anything."""
    document = _parse(blob)
    return dict(document["manifest"])


def _parse(blob: bytes) -> dict:
    try:
        document = json.loads(blob)
    except (ValueError, UnicodeDecodeError) as exc:
        raise DictionaryDecodeError(f"not a JSON artifact: {exc}") from None
    if not isinstance(document, dict) or document.get("schema") != SCHEMA:
        raise DictionaryDecodeError(
            f"expected a {SCHEMA!r} artifact, got schema "
            f"{document.get('schema') if isinstance(document, dict) else None!r}"
        )
    for field in ("manifest", "faults", "responses"):
        if field not in document:
            raise DictionaryDecodeError(f"artifact missing {field!r}")
    if len(document["faults"]) != len(document["responses"]):
        raise DictionaryDecodeError(
            "artifact corrupt: fault and response counts differ"
        )
    return document


def decode_responses(blob: bytes) -> Dict[Fault, Tuple[Failure, ...]]:
    """The artifact's raw per-fault response map (full resolution)."""
    document = _parse(blob)
    responses: Dict[Fault, Tuple[Failure, ...]] = {}
    for triple, failures in zip(document["faults"], document["responses"]):
        gate, pin, kind_value = triple
        fault = StuckAtFault(int(gate), int(pin), FaultKind(kind_value))
        responses[fault] = tuple(
            (int(cycle), int(position)) for cycle, position in failures
        )
    return responses


def decode_dictionary(blob: bytes, kind: Optional[str] = None) -> FaultDictionary:
    """Rebuild a :class:`FaultDictionary` from artifact bytes.

    ``kind`` overrides the manifest's format tag — responses are stored
    at full resolution, so one artifact can serve either format.  Decoding
    goes through the same :func:`~repro.diagnosis.dictionary.assemble_dictionary`
    path as a fresh build, so decoded and built dictionaries agree
    bit-for-bit.
    """
    document = _parse(blob)
    manifest = document["manifest"]
    return assemble_dictionary(
        manifest["circuit"],
        int(manifest["num_vectors"]),
        decode_responses(blob),
        kind if kind is not None else manifest["kind"],
    )


def serialize_rankings(
    circuit: Circuit,
    dictionary: FaultDictionary,
    result: DiagnosisResult,
) -> bytes:
    """Canonical bytes for a diagnosis ranking (CLI and service alike).

    Scores are rounded to six decimals so the bytes depend only on the
    ranking, never on float formatting drift between code paths.
    """
    document = {
        "schema": "repro-diagnosis/1",
        "circuit": dictionary.circuit_name,
        "kind": dictionary.kind,
        "num_vectors": dictionary.num_vectors,
        "observed": [list(item) if isinstance(item, tuple) else item
                     for item in sorted(result.observed)],
        "summary": result.summary(),
        "candidates": [
            {
                "fault": fault_name(circuit, candidate.fault),
                "site": [
                    candidate.fault.gate,
                    candidate.fault.pin,
                    candidate.fault.kind.value,
                ],
                "score": round(candidate.score, 6),
                "exact": candidate.exact,
                "matched": candidate.matched,
                "missed": candidate.missed,
                "extra": candidate.extra,
            }
            for candidate in result.candidates
        ],
    }
    return _canonical(document)


def parse_observed(kind: str, failures: Sequence) -> List:
    """Validate one query's observed failures for a *kind* dictionary.

    Full-response dictionaries take ``[cycle, output_position]`` pairs
    (1-based cycle, 0-based position); pass/fail ones take failing cycle
    numbers.  Raises ``ValueError`` with a client-worthy message —
    ``/diagnose`` maps it to HTTP 400.
    """
    if kind not in DICTIONARY_KINDS:
        raise ValueError(f"unknown dictionary kind {kind!r}")
    observed: List = []
    for item in failures:
        if kind == "full":
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or isinstance(item[0], bool)
                or isinstance(item[1], bool)
                or not isinstance(item[0], int)
                or not isinstance(item[1], int)
            ):
                raise ValueError(
                    "each failure must be a [cycle, output_position] pair "
                    f"of integers, got {item!r}"
                )
            observed.append((item[0], item[1]))
        else:
            if isinstance(item, bool) or not isinstance(item, int):
                raise ValueError(
                    f"each failure must be a failing cycle number, got {item!r}"
                )
            observed.append(item)
    return observed


def diagnosis_report(
    circuit: Circuit,
    tests: TestSequence,
    dictionary: FaultDictionary,
    observed: Sequence,
    top: int = 10,
    explain: bool = False,
) -> bytes:
    """Rank *observed* against *dictionary* and serialize canonically.

    The one diagnosis code path: ``repro diagnose`` prints these bytes
    and ``POST /diagnose`` returns them verbatim, so the two answers to
    the same query are byte-identical.  With ``explain``, the top
    candidate's divergence chain (:mod:`repro.diagnosis.explain`) joins
    the document under ``"explain"`` — re-serialized canonically, so
    byte-identity holds for explained queries too.
    """
    from repro.diagnosis.locate import diagnose

    result = diagnose(dictionary, observed, top=top)
    body = serialize_rankings(circuit, dictionary, result)
    if explain and result.candidates:
        from repro.diagnosis.explain import explain_fault

        document = json.loads(body)
        document["explain"] = explain_fault(
            circuit, tests, result.best.fault
        ).to_payload()
        body = _canonical(document)
    return body


def write_dictionary(path: str, blob: bytes) -> None:
    """Write an artifact atomically (the cache-directory convention)."""
    import os
    import tempfile

    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(blob)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def read_dictionary(path: str) -> bytes:
    with open(path, "rb") as stream:
        return stream.read()
