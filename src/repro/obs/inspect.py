"""Run inspection: render a recorded trace directory for humans.

``repro inspect <trace-dir>`` reads what a traced run left behind — span
JSONL files from every process (:mod:`repro.obs.span`), the merged
telemetry summary (``telemetry.json``) and the trace manifest — and
renders:

* a **span timeline**: the stitched tree with per-span bars scaled to
  the trace's wall clock, so cross-process structure (api → queue →
  shards → merge) is visible at a glance;
* a **shard work-balance table**: per-shard faults, work counters and
  wall time with the imbalance ratio that bounds parallel speedup;
* a **top-gates churn report** from the merged telemetry (the paper's
  per-gate fault-evaluation ranking);
* optionally a **collapsed-stack file** (``--flamegraph``) consumable by
  ``flamegraph.pl`` and compatible viewers.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.obs.span import (
    SpanNode,
    read_spans,
    stitch_trace,
    trace_ids,
    write_collapsed,
)

def load_sidecar(trace_dir: str, stem: str, trace_id: Optional[str]) -> Optional[dict]:
    """A JSON sidecar (``<stem>-<trace_id>.json`` or ``<stem>.json``)."""
    candidates = []
    if trace_id:
        candidates.append(os.path.join(trace_dir, f"{stem}-{trace_id}.json"))
    candidates.append(os.path.join(trace_dir, f"{stem}.json"))
    for path in candidates:
        try:
            with open(path) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            continue
    return None


def _bar(offset: float, width: float, columns: int) -> str:
    """A timeline bar: *offset* and *width* are fractions of the trace."""
    start = min(columns - 1, int(offset * columns))
    length = max(1, int(width * columns))
    length = min(length, columns - start)
    return " " * start + "#" * length + " " * (columns - start - length)


def _attr_summary(attrs: Dict[str, object]) -> str:
    parts = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        elif isinstance(value, (str, int, bool)):
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_timeline(roots: List[SpanNode], columns: int = 48) -> str:
    """The stitched span tree as an indented, bar-annotated timeline."""
    if not roots:
        return "(no spans)"
    t0 = min(root.start for root in roots)
    t1 = max(_max_end(root) for root in roots)
    total = max(t1 - t0, 1e-9)
    # Root span id equals the trace id; orphan roots (a trace whose entry
    # point emitted no root span) are parented directly under it instead.
    trace_label = roots[0].parent_id or roots[0].span_id
    lines = [
        f"trace {trace_label} — "
        f"{total * 1000:.1f} ms, {sum(1 for r in roots for _ in r.walk())} spans"
    ]
    for root in roots:
        for node, depth in root.walk():
            label = ("  " * depth + node.name)[:30]
            bar = _bar((node.start - t0) / total, node.duration / total, columns)
            extra = _attr_summary(node.attrs)
            lines.append(
                f"  {label:<30} |{bar}| {node.duration * 1000:8.2f} ms"
                + (f"  {extra}" if extra else "")
            )
    return "\n".join(lines)


def _max_end(node: SpanNode) -> float:
    return max([node.end] + [_max_end(child) for child in node.children])


def _shard_spans(roots: List[SpanNode]) -> List[SpanNode]:
    shards = [
        node
        for root in roots
        for node, _ in root.walk()
        if "shard" in node.attrs
    ]
    shards.sort(key=lambda node: int(str(node.attrs["shard"])))
    return shards


def shard_balance_table(roots: List[SpanNode]) -> str:
    """Per-shard work and wall time, with the imbalance that caps speedup."""
    shards = _shard_spans(roots)
    if not shards:
        return "(no shard spans — single-process trace?)"
    rows = []
    durations = [node.duration for node in shards]
    slowest = max(durations) or 1e-9
    for node in shards:
        attrs = node.attrs
        rows.append(
            "  {index:>5}  {faults:>7}  {fault_evals:>12}  {events:>9}  "
            "{wall:>9.3f}  {share:>5.1f}%".format(
                index=attrs.get("shard", "?"),
                faults=attrs.get("faults", "?"),
                fault_evals=attrs.get("fault_evaluations", "?"),
                events=attrs.get("events", "?"),
                wall=node.duration,
                share=100.0 * node.duration / slowest,
            )
        )
    mean = sum(durations) / len(durations)
    header = (
        "  shard   faults   fault_evals     events    wall(s)  of-max\n"
        + "  -----  -------  ------------  ---------  ---------  ------"
    )
    footer = (
        f"  balance: {len(shards)} shards, slowest/mean = "
        f"{slowest / (mean or 1e-9):.2f}x (1.00x is perfectly balanced)"
    )
    return "\n".join(["shard work balance", header] + rows + [footer])


def top_gates_report(telemetry: Optional[dict], top_k: int = 10) -> str:
    """The churn ranking from a trace's merged telemetry summary."""
    if not telemetry:
        return "(no telemetry.json in trace directory)"
    ranked = telemetry.get("top_gates_by_fault_evals", [])[:top_k]
    if not ranked:
        return "(telemetry has no per-gate churn)"
    lines = [
        f"top {len(ranked)} gates by fault-evaluation churn "
        f"({telemetry.get('engine', '?')} on {telemetry.get('circuit', '?')})"
    ]
    for entry in ranked:
        lines.append(f"  gate #{entry['gate']:<6} {entry['fault_evals']}")
    counters = telemetry.get("counters", {})
    if counters:
        lines.append(
            "  totals: {fe} fault evals, {ev} events, {cy} cycles".format(
                fe=counters.get("fault_evaluations", "?"),
                ev=counters.get("events", "?"),
                cy=counters.get("cycles", "?"),
            )
        )
    return "\n".join(lines)


def inspect_trace(
    trace_dir: str,
    trace_id: Optional[str] = None,
    flamegraph: Optional[str] = None,
    top_k: int = 10,
    columns: int = 48,
) -> str:
    """The full ``repro inspect`` report for one trace directory."""
    spans = read_spans(trace_dir)
    if not spans:
        return f"{trace_dir}: no span files (was the run traced?)"
    ids = trace_ids(spans)
    sections: List[str] = []
    if trace_id is None and len(ids) > 1:
        sections.append(
            f"{len(ids)} traces in {trace_dir}; showing {ids[-1]} "
            f"(pass --trace-id to pick: {', '.join(ids)})"
        )
        trace_id = ids[-1]
    roots = stitch_trace(spans, trace_id)
    resolved_id = trace_id if trace_id is not None else (ids[0] if ids else None)
    manifest = load_sidecar(trace_dir, "manifest", resolved_id)
    if manifest:
        sections.append(
            "manifest: "
            + " ".join(f"{key}={manifest[key]}" for key in sorted(manifest))
        )
    sections.append(render_timeline(roots, columns=columns))
    sections.append(shard_balance_table(roots))
    sections.append(
        top_gates_report(load_sidecar(trace_dir, "telemetry", resolved_id), top_k)
    )
    if flamegraph:
        written = write_collapsed(roots, flamegraph)
        sections.append(f"wrote {written} collapsed stacks to {flamegraph}")
    return "\n\n".join(sections)
