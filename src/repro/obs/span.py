"""Cross-process span tracing: one job, one trace, many processes.

A *span* is a named, timed interval with a parent — the building block of
the trace tree a distributed run leaves behind.  A :class:`TraceContext`
(trace id + span id + parent) is created once at an entry point (the CLI,
the serve API) and carried across process boundaries as plain picklable
data; every process appends its spans to its own JSONL file in a shared
*trace directory*, and :func:`stitch_trace` reassembles the files into a
single tree keyed by trace id.  Nothing coordinates at runtime — the only
shared state is the directory — so tracing adds no locks or queues to the
simulation hot path.

Conventions:

* The **root span's id equals the trace id**, so any process holding just
  the trace id can parent spans under the root without a side channel
  (the serve worker reconstructs the submit-time context this way).
* Timestamps are ``time.time()`` wall-clock seconds; all processes of one
  job run on one host, so spans align without clock translation.
* Files are named ``spans-<label>-<pid>.jsonl``; one writer per process,
  append-only, flushed per record — a killed worker loses at most its
  unflushed current span.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, TextIO

#: Span files a trace directory is stitched from.
SPAN_FILE_PREFIX = "spans-"


def new_id() -> str:
    """A fresh 64-bit hex id (trace or span)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """Where in one trace's tree the current work hangs.

    Frozen and picklable: ship it to shard workers inside a task, or
    rebuild the root from a bare trace id with :meth:`root_of`.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    @classmethod
    def new_trace(cls) -> "TraceContext":
        """A fresh root context; the root span id *is* the trace id."""
        trace_id = new_id()
        return cls(trace_id=trace_id, span_id=trace_id)

    @classmethod
    def root_of(cls, trace_id: str) -> "TraceContext":
        """The root context of an existing trace (span id == trace id)."""
        return cls(trace_id=trace_id, span_id=trace_id)

    def child(self) -> "TraceContext":
        """A new context parented under this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=new_id(), parent_id=self.span_id
        )


class SpanHandle:
    """One in-flight span; set attrs freely, it is emitted when closed."""

    def __init__(self, writer: "SpanWriter", name: str, ctx: TraceContext) -> None:
        self.writer = writer
        self.name = name
        self.ctx = ctx
        self.attrs: Dict[str, object] = {}
        self.start = time.time()

    def finish(self, end: Optional[float] = None) -> None:
        self.writer.emit(
            self.name,
            self.ctx,
            self.start,
            time.time() if end is None else end,
            **self.attrs,
        )


class SpanWriter:
    """Per-process appender of span records into a trace directory.

    Thread-safe (the serve worker pool shares one writer across threads);
    the file is opened lazily on the first span and each record is
    flushed, so concurrent processes never interleave partial lines.
    """

    def __init__(self, trace_dir: str, label: str = "proc") -> None:
        self.trace_dir = trace_dir
        self.path = os.path.join(
            trace_dir, f"{SPAN_FILE_PREFIX}{label}-{os.getpid()}.jsonl"
        )
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        os.makedirs(trace_dir, exist_ok=True)

    def emit(
        self,
        name: str,
        ctx: TraceContext,
        start: float,
        end: float,
        **attrs: object,
    ) -> None:
        record = {
            "t": "span",
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_id": ctx.parent_id,
            "name": name,
            "start": start,
            "end": end,
            "pid": os.getpid(),
            "attrs": attrs,
        }
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a")
            self._handle.write(line)
            self._handle.flush()

    def span(self, name: str, parent: TraceContext) -> "_SpanScope":
        """Context manager: a child span under *parent*, emitted on exit."""
        return _SpanScope(SpanHandle(self, name, parent.child()))

    def event(self, name: str, parent: TraceContext, **attrs: object) -> None:
        """An instantaneous marker span (start == end) under *parent*.

        The serving layer uses these for execution-plane incidents —
        lease grants and expirations, retry scheduling, dead-lettering,
        reaper sweeps — which have no meaningful duration of their own
        but belong on the job's trace timeline.
        """
        now = time.time()
        self.emit(name, parent.child(), now, now, **attrs)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class _SpanScope:
    def __init__(self, handle: SpanHandle) -> None:
        self.handle = handle

    def __enter__(self) -> SpanHandle:
        self.handle.start = time.time()
        return self.handle

    def __exit__(self, *exc_info: object) -> None:
        self.handle.finish()


# ----------------------------------------------------------------------
# reading and stitching
# ----------------------------------------------------------------------


@dataclass
class SpanNode:
    """One stitched span with its children sorted by start time."""

    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: float
    pid: int
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(0.0, self.duration - sum(c.duration for c in self.children))

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Depth-first (node, depth) pairs, children in start order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


def span_files(trace_dir: str) -> List[str]:
    """The span JSONL files in *trace_dir*, in deterministic order."""
    try:
        names = sorted(os.listdir(trace_dir))
    except NotADirectoryError:
        return [trace_dir]
    return [
        os.path.join(trace_dir, name)
        for name in names
        if name.startswith(SPAN_FILE_PREFIX) and name.endswith(".jsonl")
    ]


def read_spans(trace_dir: str) -> List[dict]:
    """Every span record from every span file under *trace_dir*."""
    records: List[dict] = []
    for path in span_files(trace_dir):
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("t") == "span":
                    records.append(record)
    return records


def trace_ids(spans: List[dict]) -> List[str]:
    """Distinct trace ids present in *spans*, in first-seen order."""
    seen: Dict[str, None] = {}
    for record in spans:
        seen.setdefault(record["trace_id"], None)
    return list(seen)


def stitch_trace(spans: List[dict], trace_id: Optional[str] = None) -> List[SpanNode]:
    """Reassemble one trace's span tree from raw records.

    Returns the root nodes (spans whose parent is absent from the trace —
    normally exactly one), children sorted by start time.  With
    ``trace_id=None`` the records must all belong to one trace.
    """
    if trace_id is None:
        ids = trace_ids(spans)
        if len(ids) > 1:
            raise ValueError(
                f"trace directory holds {len(ids)} traces; pass trace_id"
            )
        if not ids:
            return []
        trace_id = ids[0]
    nodes: Dict[str, SpanNode] = {}
    for record in spans:
        if record["trace_id"] != trace_id:
            continue
        node = SpanNode(
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            name=record["name"],
            start=record["start"],
            end=record["end"],
            pid=record.get("pid", 0),
            attrs=dict(record.get("attrs", {})),
        )
        nodes[node.span_id] = node
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: (child.start, child.name))
    roots.sort(key=lambda root: (root.start, root.name))
    return roots


def collapsed_stacks(roots: List[SpanNode]) -> Dict[str, int]:
    """Flamegraph folded stacks: ``root;child;...`` -> self-time in µs.

    The output of :func:`write_collapsed` is directly consumable by
    Brendan Gregg's ``flamegraph.pl`` and compatible viewers.
    """
    stacks: Dict[str, int] = {}
    for root in roots:
        _fold(root, [], stacks)
    return stacks


def _fold(node: SpanNode, prefix: List[str], stacks: Dict[str, int]) -> None:
    path = prefix + [node.name.replace(";", ",")]
    micros = int(round(node.self_time() * 1e6))
    if micros > 0:
        key = ";".join(path)
        stacks[key] = stacks.get(key, 0) + micros
    for child in node.children:
        _fold(child, path, stacks)


def write_collapsed(roots: List[SpanNode], path: str) -> int:
    """Write folded stacks to *path* (one ``stack count`` line); returns
    the number of lines written."""
    stacks = collapsed_stacks(roots)
    with open(path, "w") as handle:
        for stack, micros in sorted(stacks.items()):
            handle.write(f"{stack} {micros}\n")
    return len(stacks)
