"""Prometheus text exposition for service metrics and engine telemetry.

:func:`render_prometheus` turns the JSON snapshot that
:meth:`repro.serve.metrics.ServiceMetrics.snapshot` produces into the
standard `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ —
``# HELP``/``# TYPE`` headers, counter/gauge families with labels, and
proper cumulative histograms (``_bucket``/``_sum``/``_count`` with an
``le="+Inf"`` bucket) for the per-phase latencies and batch sizes.  The
JSON snapshot stays the source of truth; this module only re-renders it,
so the two ``/metrics`` representations can never drift apart.

:func:`parse_prometheus_text` is the matching minimal parser — enough to
round-trip the exposition in tests and in ``repro inspect``, not a full
client library.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}

#: Engine work-counter fields exported as one labelled counter family.
_WORK_KINDS = (
    "cycles",
    "good_evaluations",
    "fault_evaluations",
    "element_visits",
    "events",
    "gates_scheduled",
)


def _escape(value: object) -> str:
    text = str(value)
    for raw, escaped in _LABEL_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def _labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels.items())
    return "{" + inner + "}"


def _num(value: Any) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Exposition:
    """Accumulates families in emission order, one HELP/TYPE per family."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(
        self, name: str, value: object, labels: Optional[Mapping[str, object]] = None
    ) -> None:
        self.lines.append(f"{name}{_labels(labels or {})} {_num(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _histogram(
    out: _Exposition,
    name: str,
    help_text: str,
    buckets: List[Tuple[float, int]],
    total: int,
    sum_value: float,
    labels: Optional[Mapping[str, object]] = None,
) -> None:
    """One histogram family from per-bucket (non-cumulative) counts."""
    out.family(name, "histogram", help_text)
    base = dict(labels or {})
    cumulative = 0
    for bound, count in buckets:
        cumulative += count
        out.sample(f"{name}_bucket", cumulative, {**base, "le": _num(bound)})
    if not buckets or buckets[-1][0] != float("inf"):
        out.sample(f"{name}_bucket", cumulative, {**base, "le": "+Inf"})
    out.sample(f"{name}_sum", sum_value, base)
    out.sample(f"{name}_count", total, base)


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """The Prometheus text form of one ``/metrics`` JSON snapshot."""
    out = _Exposition()

    info: Dict[str, object] = {}
    if "version" in snapshot:
        info["version"] = snapshot["version"]
    out.family("repro_build_info", "gauge", "Service build information.")
    out.sample("repro_build_info", 1, info)
    if "started_at" in snapshot:
        out.family(
            "repro_started_at_seconds", "gauge", "Unix time the service started."
        )
        out.sample("repro_started_at_seconds", snapshot["started_at"])
    if "uptime_seconds" in snapshot:
        out.family("repro_uptime_seconds", "gauge", "Seconds since service start.")
        out.sample("repro_uptime_seconds", snapshot["uptime_seconds"])
    if "draining" in snapshot:
        out.family(
            "repro_draining", "gauge", "1 while the service drains for shutdown."
        )
        out.sample("repro_draining", snapshot["draining"])

    jobs = snapshot.get("jobs")
    if isinstance(jobs, Mapping):
        out.family("repro_jobs_total", "counter", "Jobs by lifecycle outcome.")
        for state in sorted(jobs):
            out.sample("repro_jobs_total", jobs[state], {"state": state})

    queue = snapshot.get("queue")
    if isinstance(queue, Mapping):
        out.family("repro_queue_depth", "gauge", "Jobs currently queued.")
        out.sample("repro_queue_depth", queue.get("depth", 0))
        out.family("repro_queue_capacity", "gauge", "Queue bound (429 beyond).")
        out.sample("repro_queue_capacity", queue.get("capacity", 0))
        out.family(
            "repro_queue_saturation", "gauge", "Queue depth / capacity [0, 1]."
        )
        out.sample("repro_queue_saturation", queue.get("saturation", 0.0))

    resilience = snapshot.get("resilience")
    if isinstance(resilience, Mapping):
        out.family(
            "repro_retries_total",
            "counter",
            "Transient-failure and expired-lease re-queues.",
        )
        out.sample("repro_retries_total", resilience.get("retries", 0))
        out.family(
            "repro_dead_lettered_total",
            "counter",
            "Jobs dead-lettered after exhausting their attempt budget.",
        )
        out.sample("repro_dead_lettered_total", resilience.get("dead_lettered", 0))
        out.family(
            "repro_resurrected_total",
            "counter",
            "Dead or failed jobs explicitly re-queued.",
        )
        out.sample("repro_resurrected_total", resilience.get("resurrected", 0))
        out.family(
            "repro_lease_events_total",
            "counter",
            "Lease lifecycle events (expired, renewed, lost).",
        )
        out.sample(
            "repro_lease_events_total",
            resilience.get("lease_expirations", 0),
            {"event": "expired"},
        )
        out.sample(
            "repro_lease_events_total",
            resilience.get("lease_renewals", 0),
            {"event": "renewed"},
        )
        out.sample(
            "repro_lease_events_total",
            resilience.get("lease_losses", 0),
            {"event": "lost"},
        )
        out.family("repro_reaper_runs_total", "counter", "Reaper sweeps completed.")
        out.sample("repro_reaper_runs_total", resilience.get("reaper_runs", 0))
        out.family(
            "repro_reaper_last_run_seconds",
            "gauge",
            "Unix time of the last reaper sweep (0 until the first).",
        )
        out.sample(
            "repro_reaper_last_run_seconds", resilience.get("reaper_last_run", 0.0)
        )

    leases = snapshot.get("leases")
    if isinstance(leases, Mapping):
        out.family("repro_leases_active", "gauge", "Jobs currently holding a lease.")
        out.sample("repro_leases_active", leases.get("active", 0))
        out.family(
            "repro_lease_oldest_age_seconds",
            "gauge",
            "Age of the stalest lease since its last grant or renewal.",
        )
        out.sample(
            "repro_lease_oldest_age_seconds", leases.get("oldest_age_seconds", 0.0)
        )

    cache = snapshot.get("cache")
    if isinstance(cache, Mapping):
        out.family(
            "repro_cache_lookups_total", "counter", "Result-cache lookups by outcome."
        )
        out.sample(
            "repro_cache_lookups_total", cache.get("hits", 0), {"outcome": "hit"}
        )
        out.sample(
            "repro_cache_lookups_total", cache.get("misses", 0), {"outcome": "miss"}
        )
        out.family("repro_cache_hit_rate", "gauge", "Cache hit fraction [0, 1].")
        out.sample("repro_cache_hit_rate", cache.get("hit_rate", 0.0))

    diagnosis = snapshot.get("diagnosis")
    if isinstance(diagnosis, Mapping):
        out.family(
            "repro_diagnose_requests_total",
            "counter",
            "Diagnosis queries by dictionary-cache outcome.",
        )
        out.sample(
            "repro_diagnose_requests_total",
            diagnosis.get("dictionary_hits", 0),
            {"outcome": "hit"},
        )
        out.sample(
            "repro_diagnose_requests_total",
            diagnosis.get("dictionary_misses", 0),
            {"outcome": "miss"},
        )
        out.family(
            "repro_dictionaries_built_total",
            "counter",
            "Fault dictionaries built and encoded by workers.",
        )
        out.sample(
            "repro_dictionaries_built_total",
            diagnosis.get("dictionaries_built", 0),
        )

    batch = snapshot.get("batch")
    if isinstance(batch, Mapping):
        size_counts = batch.get("size_counts", {})
        buckets = sorted(
            (float(size), int(count)) for size, count in dict(size_counts).items()
        )
        total = sum(count for _, count in buckets)
        sum_sizes = sum(bound * count for bound, count in buckets)
        _histogram(
            out,
            "repro_batch_size",
            "Jobs coalesced per executed batch.",
            buckets,
            total,
            sum_sizes,
        )

    latency = snapshot.get("latency")
    if isinstance(latency, Mapping):
        out.family(
            "repro_phase_seconds",
            "histogram",
            "Per-phase job latency (queue wait, setup, simulate, serialize).",
        )
        for phase in latency:
            histogram = latency[phase]
            if not isinstance(histogram, Mapping):
                continue
            raw = dict(histogram.get("buckets", {}))
            buckets = sorted(
                (
                    float("inf") if bound == "+Inf" else float(bound),
                    int(count),
                )
                for bound, count in raw.items()
            )
            base = {"phase": phase}
            cumulative = 0
            for bound, count in buckets:
                cumulative += count
                out.sample(
                    "repro_phase_seconds_bucket",
                    cumulative,
                    {**base, "le": _num(bound)},
                )
            if not buckets or buckets[-1][0] != float("inf"):
                out.sample(
                    "repro_phase_seconds_bucket", cumulative, {**base, "le": "+Inf"}
                )
            out.sample(
                "repro_phase_seconds_sum", histogram.get("sum_seconds", 0.0), base
            )
            out.sample("repro_phase_seconds_count", histogram.get("count", 0), base)

    counters = snapshot.get("counters")
    if isinstance(counters, Mapping):
        out.family(
            "repro_engine_work_total",
            "counter",
            "Engine work counters summed over executed jobs.",
        )
        for kind in _WORK_KINDS:
            out.sample(
                "repro_engine_work_total", counters.get(kind, 0), {"kind": kind}
            )

    return out.render()


# ----------------------------------------------------------------------
# the matching minimal parser (tests, repro inspect)
# ----------------------------------------------------------------------

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse an exposition into ``name -> [(labels, value), ...]``.

    Raises ``ValueError`` on any line that is neither a comment, blank,
    nor a well-formed sample — which is what makes it usable as a
    validity check in tests.
    """
    metrics: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    types: Dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter",
                "gauge",
                "histogram",
                "summary",
                "untyped",
            ):
                raise ValueError(f"line {line_number}: malformed TYPE: {line!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {line_number}: malformed sample: {line!r}")
        labels: Dict[str, str] = {}
        if match.group("labels"):
            for key, value in _LABEL.findall(match.group("labels")):
                labels[key] = (
                    value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
                )
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        metrics.setdefault(match.group("name"), []).append((labels, value))
    return metrics
