"""Telemetry: the structured metrics a recorded run attaches to its result.

A :class:`Telemetry` is what :meth:`RecordingTracer.telemetry` packages and
what engines attach to :attr:`repro.result.FaultSimResult.telemetry`.  It
holds the internal quantities the paper's evaluation argues from — where
the events, fault evaluations and list traversals happened (per cycle, per
gate, per level) rather than just how many there were in total — in plain
dict/list form so the exporters (:mod:`repro.obs.export`) can serialize it
without further translation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List

from repro.result import WorkCounters


@dataclass
class Telemetry:
    """Everything a recording tracer learned about one run."""

    engine: str = ""
    circuit: str = ""
    wall_seconds: float = 0.0
    #: Totals reconciling exactly with the run's ``FaultSimResult.counters``.
    totals: WorkCounters = field(default_factory=WorkCounters)
    #: phase name -> cumulative wall seconds across all cycles.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: One metric row per cycle (see RecordingTracer.cycle_end for keys).
    #: Values are ints except ``queue_depth`` (a level -> count dict),
    #: hence ``Any``.
    cycles: List[Dict[str, Any]] = field(default_factory=list)
    #: gate index -> faulty-machine evaluations charged to it (churn).
    gate_fault_evals: Dict[int, int] = field(default_factory=dict)
    gate_good_evals: Dict[int, int] = field(default_factory=dict)
    #: traversed-list length -> number of traversals of that length.
    list_length_histogram: Dict[int, int] = field(default_factory=dict)
    #: cycle -> faults dropped that cycle.
    drop_cycles: Dict[int, int] = field(default_factory=dict)
    #: cycle -> faults first (hard) detected that cycle.
    detect_cycles: Dict[int, int] = field(default_factory=dict)
    diverges: int = 0
    converges: int = 0
    #: Budget breaches observed during the run (kind/limit/actual/cycle).
    budget_breaches: List[Dict[str, object]] = field(default_factory=list)
    #: Engine-ladder degradations recorded through the tracer.
    fallbacks: List[Dict[str, object]] = field(default_factory=list)

    # -- derived views ---------------------------------------------------

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    def peak_live_elements(self) -> int:
        return max((row["live_elements"] for row in self.cycles), default=0)

    def top_gates_by_fault_evals(self, k: int = 10) -> List[tuple]:
        """The *k* gates costing the most faulty-machine evaluations."""
        ranked = sorted(
            self.gate_fault_evals.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:k]

    def series(self, key: str) -> List[object]:
        """One per-cycle metric as a list (cycle order)."""
        return [row[key] for row in self.cycles]

    def summary_dict(self) -> Dict[str, object]:
        """JSON-safe summary (the shape the BENCH_*.json trajectory keeps).

        Everything is plain ints/floats/strings/dicts with string keys —
        ``json.dumps`` works on the return value directly.
        """
        return {
            "engine": self.engine,
            "circuit": self.circuit,
            "wall_seconds": self.wall_seconds,
            "counters": asdict(self.totals),
            "total_work": self.totals.total_work(),
            "phase_seconds": dict(self.phase_seconds),
            "num_cycles": self.num_cycles,
            "peak_live_elements": self.peak_live_elements(),
            "diverges": self.diverges,
            "converges": self.converges,
            "drops": sum(self.drop_cycles.values()),
            "detects": sum(self.detect_cycles.values()),
            "top_gates_by_fault_evals": [
                {"gate": gate, "fault_evals": count}
                for gate, count in self.top_gates_by_fault_evals()
            ],
            "list_length_histogram": {
                str(length): count
                for length, count in sorted(self.list_length_histogram.items())
            },
            "drop_timeline": {
                str(cycle): count for cycle, count in sorted(self.drop_cycles.items())
            },
            "budget_breaches": [dict(b) for b in self.budget_breaches],
            "fallbacks": [dict(f) for f in self.fallbacks],
        }
