"""The tracer protocol — the hook surface every engine reports through.

Engines hold an optional tracer and guard every hook call with a single
``is not None`` check on a local variable, so a run without tracing
executes no tracer code at all (the zero-overhead-when-disabled design
constraint; ``benchmarks/bench_obs_overhead.py`` asserts it).

The hook vocabulary mirrors :class:`repro.result.WorkCounters` increment
for increment — every ``counters.X += n`` in an engine has an adjacent
``trace.hook(..., n)`` call — which is what lets a recording tracer's
totals reconcile *exactly* with the counters a run reports.  On top of the
counter mirror the protocol carries the element-lifecycle events the
paper's evaluation reasons about: divergence, convergence, detection and
event-driven dropping, plus per-phase wall time and per-cycle boundaries.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.result import WorkCounters

if TYPE_CHECKING:
    from repro.obs.metrics import Telemetry


class Tracer:
    """No-op tracer: the protocol and its zero-cost default.

    Subclass and override any subset of hooks; every hook ignores its
    arguments by default.  ``enabled`` advertises whether the tracer
    records anything — engines may use it to skip building expensive hook
    arguments (per-cycle list-size scans) for tracers that discard them.
    """

    enabled = False

    # -- run / cycle lifecycle -----------------------------------------

    def run_start(self, engine: str, circuit: str) -> None:
        """A ``run()`` begins on *engine* over *circuit*."""

    def run_end(self, wall_seconds: float) -> None:
        """The run finished after *wall_seconds*."""

    def cycle_start(self, cycle: int) -> None:
        """Clock cycle *cycle* (1-based) begins.  Mirrors ``cycles``."""

    def cycle_end(
        self, cycle: int, live: int = 0, visible: int = 0, invisible: int = 0
    ) -> None:
        """Cycle *cycle* ended with the given fault-element population."""

    def phase_time(self, phase: str, seconds: float) -> None:
        """One engine phase (apply/settle/detect/clock/...) took *seconds*."""

    # -- hot path (mirrors WorkCounters) -------------------------------

    def good_evals(self, gate: Optional[int], count: int = 1) -> None:
        """Good-machine evaluations; *gate* is None for bulk accounting."""

    def fault_evals(self, gate: Optional[int], count: int = 1) -> None:
        """Faulty-machine evaluations at *gate*."""

    def element_visits(self, gate: int, count: int) -> None:
        """A fault list of length *count* at *gate* was traversed."""

    def event(self, gate: int) -> None:
        """A value-change event on *gate*'s output.  Mirrors ``events``."""

    def scheduled(self, gate: int, level: int) -> None:
        """*gate* entered the evaluation queue at *level*."""

    # -- element lifecycle ---------------------------------------------

    def diverge(self, gate: int, fid: int, visible: bool = True) -> None:
        """Fault *fid* became explicit at *gate* (a new element)."""

    def converge(self, gate: int, fid: int) -> None:
        """Fault *fid*'s element at *gate* was removed."""

    def detect(self, fid: int, cycle: int, potential: bool = False) -> None:
        """Fault *fid* was first detected (or potentially detected)."""

    def drop(self, fid: int, cycle: int) -> None:
        """Fault *fid* was dropped from further simulation."""

    # -- resilience (see repro.robust) ---------------------------------

    def budget_breach(self, kind: str, limit: float, actual: float) -> None:
        """A run budget (*kind*: wall/cycles/memory) was exceeded."""

    def fallback(self, engine: str, to: str, reason: str) -> None:
        """The engine ladder degraded from *engine* to *to*."""

    # -- results --------------------------------------------------------

    def telemetry(self) -> Optional["Telemetry"]:
        """The recorded telemetry, or None for non-recording tracers."""
        return None


#: Shared no-op instance: threading it through an engine exercises every
#: hook call site while recording nothing (the overhead benchmark's probe).
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """Records totals, per-cycle series, per-gate churn and a trace stream.

    Parameters
    ----------
    record_events:
        When true, every hook also appends a structured record to
        :attr:`records` (one dict per event — the JSONL trace stream).
        Per-cycle summary records are always appended; the flag controls
        the high-frequency per-gate records (evaluations, events,
        element lifecycle).
    """

    enabled = True

    def __init__(self, record_events: bool = False) -> None:
        self.record_events = record_events
        self.engine = ""
        self.circuit = ""
        self.wall_seconds = 0.0
        self.totals = WorkCounters()
        self.phase_seconds: Dict[str, float] = {}
        #: Per-gate churn: how many faulty-machine evaluations each gate cost.
        self.gate_fault_evals: Dict[int, int] = {}
        self.gate_good_evals: Dict[int, int] = {}
        #: Traversed-list-length histogram: length -> number of traversals.
        self.list_length_histogram: Dict[int, int] = {}
        #: cycle -> faults dropped that cycle (the drop timeline).
        self.drop_cycles: Dict[int, int] = {}
        self.detect_cycles: Dict[int, int] = {}
        self.diverges = 0
        self.converges = 0
        #: Budget breaches and engine-ladder fallbacks, in event order.
        self.budget_breaches: List[Dict[str, object]] = []
        self.fallbacks: List[Dict[str, object]] = []
        #: Flushed per-cycle metric rows (see :meth:`cycle_end`).
        self.cycles: List[Dict[str, object]] = []
        #: The JSONL trace stream (dicts; see repro.obs.export).
        self.records: List[Dict[str, object]] = []
        self._cycle_base = WorkCounters()
        self._cycle_queue_depth: Dict[int, int] = {}
        self._cycle_drops = 0
        self._cycle_diverges = 0
        self._cycle_converges = 0
        self._current_cycle = 0

    # -- internals ------------------------------------------------------

    def _emit(self, record_type: str, **fields: object) -> None:
        record: Dict[str, object] = {"t": record_type, "cycle": self._current_cycle}
        record.update(fields)
        self.records.append(record)

    # -- lifecycle ------------------------------------------------------

    def run_start(self, engine: str, circuit: str) -> None:
        self.engine = engine
        self.circuit = circuit
        self._emit("run_start", engine=engine, circuit=circuit)

    def run_end(self, wall_seconds: float) -> None:
        self.wall_seconds = wall_seconds
        self._emit("run_end", wall_seconds=wall_seconds)

    def cycle_start(self, cycle: int) -> None:
        self.totals.cycles += 1
        self._current_cycle = cycle
        self._cycle_base = copy.copy(self.totals)
        self._cycle_queue_depth = {}
        self._cycle_drops = 0
        self._cycle_diverges = 0
        self._cycle_converges = 0

    def cycle_end(
        self, cycle: int, live: int = 0, visible: int = 0, invisible: int = 0
    ) -> None:
        totals, base = self.totals, self._cycle_base
        row: Dict[str, Any] = {
            "cycle": cycle,
            "good_evaluations": totals.good_evaluations - base.good_evaluations,
            "fault_evaluations": totals.fault_evaluations - base.fault_evaluations,
            "element_visits": totals.element_visits - base.element_visits,
            "events": totals.events - base.events,
            "gates_scheduled": totals.gates_scheduled - base.gates_scheduled,
            "live_elements": live,
            "visible_elements": visible,
            "invisible_elements": invisible,
            "drops": self._cycle_drops,
            "diverges": self._cycle_diverges,
            "converges": self._cycle_converges,
            "queue_depth": dict(sorted(self._cycle_queue_depth.items())),
        }
        self.cycles.append(row)
        # The trace stream is JSON by contract; JSON object keys are
        # strings, so the per-level queue depths are stringified here
        # (the in-memory row keeps integer levels).
        self._emit(
            "cycle",
            **{
                **row,
                "queue_depth": {
                    str(level): n for level, n in row["queue_depth"].items()
                },
            },
        )

    def phase_time(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    # -- hot path -------------------------------------------------------

    def good_evals(self, gate: Optional[int], count: int = 1) -> None:
        self.totals.good_evaluations += count
        if gate is not None:
            self.gate_good_evals[gate] = self.gate_good_evals.get(gate, 0) + count
        if self.record_events:
            self._emit("good_eval", gate=gate, count=count)

    def fault_evals(self, gate: Optional[int], count: int = 1) -> None:
        self.totals.fault_evaluations += count
        if gate is not None:
            self.gate_fault_evals[gate] = self.gate_fault_evals.get(gate, 0) + count
        if self.record_events:
            self._emit("fault_evals", gate=gate, count=count)

    def element_visits(self, gate: int, count: int) -> None:
        self.totals.element_visits += count
        histogram = self.list_length_histogram
        histogram[count] = histogram.get(count, 0) + 1

    def event(self, gate: int) -> None:
        self.totals.events += 1
        if self.record_events:
            self._emit("event", gate=gate)

    def scheduled(self, gate: int, level: int) -> None:
        self.totals.gates_scheduled += 1
        depth = self._cycle_queue_depth
        depth[level] = depth.get(level, 0) + 1
        if self.record_events:
            self._emit("scheduled", gate=gate, level=level)

    # -- element lifecycle ---------------------------------------------

    def diverge(self, gate: int, fid: int, visible: bool = True) -> None:
        self.diverges += 1
        self._cycle_diverges += 1
        if self.record_events:
            self._emit("diverge", gate=gate, fid=fid, visible=visible)

    def converge(self, gate: int, fid: int) -> None:
        self.converges += 1
        self._cycle_converges += 1
        if self.record_events:
            self._emit("converge", gate=gate, fid=fid)

    def detect(self, fid: int, cycle: int, potential: bool = False) -> None:
        if not potential:
            self.detect_cycles[cycle] = self.detect_cycles.get(cycle, 0) + 1
        self._emit("detect", fid=fid, potential=potential)

    def drop(self, fid: int, cycle: int) -> None:
        self.drop_cycles[cycle] = self.drop_cycles.get(cycle, 0) + 1
        self._cycle_drops += 1
        self._emit("drop", fid=fid)

    # -- resilience ----------------------------------------------------

    def budget_breach(self, kind: str, limit: float, actual: float) -> None:
        breach: Dict[str, object] = {"kind": kind, "limit": limit,
                                     "actual": actual,
                                     "cycle": self._current_cycle}
        self.budget_breaches.append(breach)
        self._emit("budget_breach", **breach)

    def fallback(self, engine: str, to: str, reason: str) -> None:
        record: Dict[str, object] = {"engine": engine, "to": to, "reason": reason}
        self.fallbacks.append(record)
        self._emit("fallback", **record)

    # -- results --------------------------------------------------------

    def telemetry(self) -> "Telemetry":
        from repro.obs.metrics import Telemetry

        return Telemetry(
            engine=self.engine,
            circuit=self.circuit,
            wall_seconds=self.wall_seconds,
            totals=self.totals,
            phase_seconds=dict(self.phase_seconds),
            cycles=list(self.cycles),
            gate_fault_evals=dict(self.gate_fault_evals),
            gate_good_evals=dict(self.gate_good_evals),
            list_length_histogram=dict(self.list_length_histogram),
            drop_cycles=dict(self.drop_cycles),
            detect_cycles=dict(self.detect_cycles),
            diverges=self.diverges,
            converges=self.converges,
            budget_breaches=[dict(b) for b in self.budget_breaches],
            fallbacks=[dict(f) for f in self.fallbacks],
        )
