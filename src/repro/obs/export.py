"""Exporters: JSONL trace streams, JSON metric summaries, profile reports.

Three consumers, three formats:

* ``write_jsonl_trace`` / ``read_jsonl_trace`` — the event stream a
  :class:`repro.obs.RecordingTracer` accumulates, one JSON object per
  line, round-trippable for offline analysis.
* ``metrics_summary`` / ``write_metrics_json`` — the compact JSON summary
  the benchmark trajectory (``BENCH_*.json``) and the harness tables keep.
* ``profile_report`` — the human-readable profile: totals and phase
  times, the top-k gates by fault-evaluation churn, the drop timeline and
  the traversed-list-length histogram (the paper's Table 2 internal
  statistics, per run).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, TextIO

from repro.obs.metrics import Telemetry

if TYPE_CHECKING:
    from repro.circuit.netlist import Circuit


def write_jsonl_trace(records: Iterable[Dict[str, object]], path: str) -> int:
    """Write trace *records* to *path* as JSON Lines; returns the count."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def read_jsonl_trace(path: str) -> List[Dict[str, object]]:
    """Read a JSONL trace back into the list of records that produced it."""
    records: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def metrics_summary(telemetry: Telemetry) -> Dict[str, object]:
    """The JSON-safe metrics summary for one recorded run."""
    return telemetry.summary_dict()


def write_metrics_json(telemetry: Telemetry, path: str) -> None:
    """Write :func:`metrics_summary` to *path* (pretty-printed JSON)."""
    with open(path, "w") as handle:
        json.dump(metrics_summary(telemetry), handle, indent=2, sort_keys=True)
        handle.write("\n")


def diagnostics_summary(diagnostics: Iterable) -> Dict[str, object]:
    """JSON-safe summary of lint diagnostics (duck-typed against
    :class:`repro.analyze.lint.Diagnostic` to keep obs free of an analyze
    dependency)."""
    records: List[Dict[str, object]] = []
    by_severity: Dict[str, int] = {}
    for diagnostic in diagnostics:
        by_severity[diagnostic.severity] = by_severity.get(diagnostic.severity, 0) + 1
        records.append(
            {
                "severity": diagnostic.severity,
                "code": diagnostic.code,
                "message": diagnostic.message,
                "file": diagnostic.file,
                "line": diagnostic.line,
            }
        )
    return {"diagnostics": records, "counts": by_severity, "total": len(records)}


def write_diagnostics_json(diagnostics: Iterable, stream: TextIO) -> None:
    """Write :func:`diagnostics_summary` to an open text *stream*."""
    json.dump(diagnostics_summary(diagnostics), stream, indent=2, sort_keys=True)
    stream.write("\n")


def format_diagnostics(diagnostics: Iterable, name: str = "") -> str:
    """Human-readable lint report: one ``file:line: severity:`` row per
    finding plus a closing tally (or a clean bill of health)."""
    rows: List[str] = []
    by_severity: Dict[str, int] = {}
    for diagnostic in diagnostics:
        by_severity[diagnostic.severity] = by_severity.get(diagnostic.severity, 0) + 1
        rows.append(diagnostic.format())
    if not rows:
        return f"{name}: clean" if name else "clean"
    tally = ", ".join(
        f"{by_severity[severity]} {severity}(s)"
        for severity in ("error", "warning", "info")
        if severity in by_severity
    )
    rows.append(tally)
    return "\n".join(rows)


def _histogram_buckets(histogram: Dict[int, int]) -> List[tuple]:
    """Collapse exact lengths into power-of-two buckets for display."""
    buckets: Dict[int, int] = {}
    for length, count in histogram.items():
        upper = 1
        while upper < length:
            upper *= 2
        buckets[upper] = buckets.get(upper, 0) + count
    return sorted(buckets.items())


def profile_report(
    telemetry: Telemetry,
    circuit: Optional["Circuit"] = None,
    top_k: int = 10,
    max_timeline_rows: int = 20,
) -> str:
    """Render the human-readable profile of one recorded run.

    *circuit* (a :class:`repro.circuit.netlist.Circuit`) is optional; when
    given, gate indices resolve to their netlist names.
    """

    def gate_name(index: int) -> str:
        if circuit is not None and 0 <= index < len(circuit.gates):
            return f"{circuit.gates[index].name} (#{index})"
        return f"#{index}"

    totals = telemetry.totals
    lines: List[str] = []
    lines.append(
        f"profile: {telemetry.engine} on {telemetry.circuit} — "
        f"{telemetry.num_cycles} cycles, {telemetry.wall_seconds:.3f}s"
    )
    lines.append("")
    lines.append("work counters")
    lines.append(f"  cycles            {totals.cycles}")
    lines.append(f"  good evaluations  {totals.good_evaluations}")
    lines.append(f"  fault evaluations {totals.fault_evaluations}")
    lines.append(f"  element visits    {totals.element_visits}")
    lines.append(f"  events            {totals.events}")
    lines.append(f"  gates scheduled   {totals.gates_scheduled}")
    lines.append(f"  total work        {totals.total_work()}")
    lines.append(
        f"  elements: {telemetry.diverges} diverged, "
        f"{telemetry.converges} converged, peak {telemetry.peak_live_elements()} live"
    )

    if telemetry.phase_seconds:
        lines.append("")
        lines.append("phase wall time")
        total_phase = sum(telemetry.phase_seconds.values()) or 1.0
        for phase, seconds in sorted(
            telemetry.phase_seconds.items(), key=lambda kv: -kv[1]
        ):
            lines.append(
                f"  {phase:<16} {seconds:8.4f}s  {100.0 * seconds / total_phase:5.1f}%"
            )

    top = telemetry.top_gates_by_fault_evals(top_k)
    if top:
        lines.append("")
        lines.append(f"top {len(top)} gates by fault-evaluation churn")
        for gate, count in top:
            lines.append(f"  {gate_name(gate):<24} {count}")

    if telemetry.drop_cycles:
        lines.append("")
        total_drops = sum(telemetry.drop_cycles.values())
        lines.append(f"drop timeline ({total_drops} faults dropped)")
        timeline = sorted(telemetry.drop_cycles.items())
        shown = timeline[:max_timeline_rows]
        for cycle, count in shown:
            lines.append(f"  cycle {cycle:>6}  {count}")
        if len(timeline) > len(shown):
            remaining = sum(count for _, count in timeline[len(shown):])
            lines.append(f"  ... {len(timeline) - len(shown)} more cycles, {remaining} drops")

    if telemetry.list_length_histogram:
        lines.append("")
        lines.append("fault-list length histogram (traversals by length)")
        for upper, count in _histogram_buckets(telemetry.list_length_histogram):
            lines.append(f"  <= {upper:>6}  {count}")

    return "\n".join(lines)
