"""Simulation telemetry: structured tracing, metrics and profiling.

A zero-overhead-when-disabled instrumentation layer threaded through every
engine.  Pass a :class:`Tracer` to an engine (or to
``repro.harness.runner.run_stuck_at``) to observe the run from inside:

* :class:`Tracer` — the hook protocol, no-op by default; its vocabulary
  mirrors :class:`repro.result.WorkCounters` one increment per hook call.
* :class:`RecordingTracer` — accumulates totals, per-cycle metric series,
  per-gate churn, per-phase wall time and (optionally) a full event
  stream; its :meth:`~RecordingTracer.telemetry` packages everything as a
  :class:`Telemetry`, which engines attach to
  ``FaultSimResult.telemetry``.
* :mod:`repro.obs.export` — JSONL trace streams, JSON metric summaries
  and human-readable profile reports (``--trace``/``--profile`` in the
  CLI).

Example::

    from repro import load_circuit, ConcurrentFaultSimulator
    from repro.obs import RecordingTracer
    from repro.obs.export import profile_report

    circuit = load_circuit("s27")
    tracer = RecordingTracer()
    sim = ConcurrentFaultSimulator(circuit, tracer=tracer)
    result = sim.run(vectors)
    assert result.telemetry.totals == result.counters
    print(profile_report(result.telemetry, circuit))
"""

from repro.obs.metrics import Telemetry
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.obs.export import (
    diagnostics_summary,
    format_diagnostics,
    metrics_summary,
    profile_report,
    read_jsonl_trace,
    write_diagnostics_json,
    write_jsonl_trace,
    write_metrics_json,
)
from repro.obs.span import (
    SpanNode,
    SpanWriter,
    TraceContext,
    collapsed_stacks,
    read_spans,
    stitch_trace,
    trace_ids,
    write_collapsed,
)
from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.obs.inspect import inspect_trace

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "RecordingTracer",
    "Telemetry",
    "TraceContext",
    "SpanNode",
    "SpanWriter",
    "collapsed_stacks",
    "diagnostics_summary",
    "format_diagnostics",
    "inspect_trace",
    "metrics_summary",
    "parse_prometheus_text",
    "profile_report",
    "read_jsonl_trace",
    "read_spans",
    "render_prometheus",
    "stitch_trace",
    "trace_ids",
    "write_collapsed",
    "write_diagnostics_json",
    "write_jsonl_trace",
    "write_metrics_json",
]
