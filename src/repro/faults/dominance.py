"""Dominance collapsing of stuck-at faults.

Fault ``f`` dominates fault ``g`` when every test detecting ``g`` also
detects ``f``; the dominator can then be dropped from the target list
(detecting the dominated fault certifies both).  The gate-local rules:

* AND: output ``s-a-1`` dominates each input ``s-a-1`` (a test for input-j
  ``s-a-1`` sets j=0 with the other inputs at 1 and sensitizes the output,
  which then flips for the output fault too);
* NAND: output ``s-a-0`` dominates each input ``s-a-1``;
* OR: output ``s-a-0`` dominates each input ``s-a-0``;
* NOR: output ``s-a-1`` dominates each input ``s-a-0``.

The implication is *combinationally* exact (single observation point per
vector, acyclic propagation).  For sequential circuits it remains the
standard industrial heuristic but is no longer a theorem — a dominator's
effect can be latched and observed on a later cycle along a path the
dominated fault never takes — so :func:`dominance_collapse` is explicit
opt-in on top of equivalence collapsing, and its docstring contract is
"detecting every kept fault implies detecting every dropped one" only for
combinational circuits.
"""

from __future__ import annotations

from typing import List, Set

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType

#: (input stuck value, dominated-by output stuck value) per gate type.
_DOMINANCE_RULES = {
    GateType.AND: (1, 1),
    GateType.NAND: (1, 0),
    GateType.OR: (0, 0),
    GateType.NOR: (0, 1),
}


def dominance_collapse(
    circuit: Circuit, faults: List[StuckAtFault]
) -> List[StuckAtFault]:
    """Drop dominators from *faults*; returns the reduced target list.

    A dominator is only dropped when at least one fault it dominates is in
    the list (otherwise nothing certifies it).  Apply after equivalence
    collapsing: ``dominance_collapse(c, collapse_stuck_at(c, faults))``.
    """
    in_universe = set(faults)
    dropped: Set[StuckAtFault] = set()
    for gate in circuit.gates:
        rule = _DOMINANCE_RULES.get(gate.gtype)
        if rule is None or gate.arity < 2:
            # Single-input gates: input and output faults are equivalent,
            # already handled by equivalence collapsing.
            continue
        input_value, output_value = rule
        dominator = StuckAtFault.make(gate.index, OUTPUT_PIN, output_value)
        if dominator not in in_universe:
            continue
        dominated_present = any(
            StuckAtFault.make(gate.index, pin, input_value) in in_universe
            for pin in range(gate.arity)
        )
        if dominated_present:
            dropped.add(dominator)
    return sorted(fault for fault in faults if fault not in dropped)
