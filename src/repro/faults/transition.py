"""The transition (gross-delay) fault model of Section 3.

A transition fault delays one direction of change on one line by more than
the slack of the sampling clock but less than a full cycle: "any gate delay
fault which delays a gate transition slightly longer than its slack time"
whose extra delay "does not increase the delay at the fault site by more
than one clock cycle".  Consequences, exactly as the paper models them:

* at sampling time the faulty line still holds its *previous* value when
  the faulty transition fired this cycle (Table 1);
* after sampling, the combinational network settles to the correct values,
  so only the values latched into flip-flops (and the sampled primary
  outputs) carry the error forward.

Two faults per line: slow-to-rise (``STR``) delays 0→1, slow-to-fall
(``STF``) delays 1→0.  Following the paper, the universe places them on
gate input pins ("two transition faults are associated with each gate
input"); an option adds output lines for completeness studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, Fault, FaultKind
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO


@dataclass(frozen=True)
class TransitionFault(Fault):
    """A slow-to-rise or slow-to-fall fault on a line."""

    @property
    def slow_to_rise(self) -> bool:
        return self.kind is FaultKind.SLOW_TO_RISE

    @staticmethod
    def make(gate: int, pin: int, rise: bool) -> "TransitionFault":
        kind = FaultKind.SLOW_TO_RISE if rise else FaultKind.SLOW_TO_FALL
        return TransitionFault(gate, pin, kind)


def delayed_value(previous: int, current: int, kind: FaultKind) -> int:
    """Faulty value (FV) at sampling time, per the paper's Table 1.

    ``previous`` (PV) is the line's value before the vector, ``current``
    (CV) the value it would settle to.  A slow-to-rise fault holds the line
    at its old value whenever a rise would have completed:

    * PV = 0: any rise is still in flight at sampling — FV = 0 (this also
      covers CV = 0, where FV = CV trivially, and CV = X, where the value at
      sampling is 0 whether or not a rise began);
    * PV = 1: falls and steady-1 are unaffected — FV = CV;
    * PV = X: the line may or may not have been low; FV = 0 only if CV = 0,
      otherwise unknown.

    Slow-to-fall is the mirror image.
    """
    if kind is FaultKind.SLOW_TO_RISE:
        if previous == ZERO:
            return ZERO
        if previous == ONE:
            return current
        return ZERO if current == ZERO else X
    if kind is FaultKind.SLOW_TO_FALL:
        if previous == ONE:
            return ONE
        if previous == ZERO:
            return current
        return ONE if current == ONE else X
    raise ValueError(f"not a transition fault kind: {kind}")


def all_transition_faults(
    circuit: Circuit, include_outputs: bool = False
) -> List[TransitionFault]:
    """The transition-fault universe of *circuit*.

    Per the paper, faults sit on gate input pins (combinational gates and
    flip-flop D pins).  ``include_outputs`` adds each gate's output line,
    which covers fanout-stem delay defects — except flip-flop outputs: a
    slow Q stem is approximated by the transition faults on the input pins
    it feeds (the simulator models slow data lines, not slow clock-to-Q).
    """
    faults: List[TransitionFault] = []
    for gate in circuit.gates:
        if gate.gtype is not GateType.INPUT:
            for pin in range(gate.arity):
                faults.append(TransitionFault.make(gate.index, pin, rise=True))
                faults.append(TransitionFault.make(gate.index, pin, rise=False))
        if include_outputs and gate.gtype is not GateType.DFF:
            faults.append(TransitionFault.make(gate.index, OUTPUT_PIN, rise=True))
            faults.append(TransitionFault.make(gate.index, OUTPUT_PIN, rise=False))
    return faults
