"""Fault models: stuck-at faults, equivalence collapsing, transition faults."""

from repro.faults.model import (
    OUTPUT_PIN,
    Fault,
    FaultKind,
    FaultSite,
    StuckAtFault,
    fault_name,
)
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.faults.collapse import collapse_stuck_at, equivalence_classes
from repro.faults.dominance import dominance_collapse
from repro.faults.transition import (
    TransitionFault,
    all_transition_faults,
    delayed_value,
)

__all__ = [
    "OUTPUT_PIN",
    "Fault",
    "FaultKind",
    "FaultSite",
    "StuckAtFault",
    "fault_name",
    "all_stuck_at_faults",
    "stuck_at_universe",
    "collapse_stuck_at",
    "equivalence_classes",
    "dominance_collapse",
    "TransitionFault",
    "all_transition_faults",
    "delayed_value",
]
