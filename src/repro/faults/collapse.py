"""Structural equivalence collapsing of stuck-at faults.

Two faults are equivalent when every test for one detects the other; the
classic structural rules capture the gate-local cases:

* AND: any input ``s-a-0`` ≡ output ``s-a-0`` (NAND: ≡ output ``s-a-1``);
* OR: any input ``s-a-1`` ≡ output ``s-a-1`` (NOR: ≡ output ``s-a-0``);
* NOT: input ``s-a-v`` ≡ output ``s-a-(1-v)``; BUF: input ``s-a-v`` ≡
  output ``s-a-v``;
* stem/branch: when a gate drives exactly one input pin and is not itself a
  primary output, its output faults are equivalent to that pin's faults.

Collapsing is pure bookkeeping — a union-find over the fault universe —
but it is what makes the paper's fault counts (Table 2) and coverage
denominators meaningful, and it shrinks every simulator's workload.

Faults are never collapsed across flip-flops: a D-pin fault is observed one
cycle later than the equivalent Q fault, so their detection *times* differ
even though their detection sets coincide, and the paper's simulators report
first-detection times.
"""

from __future__ import annotations

from typing import Dict, List

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[StuckAtFault, StuckAtFault] = {}

    def add(self, item: StuckAtFault) -> None:
        self._parent.setdefault(item, item)

    def find(self, item: StuckAtFault) -> StuckAtFault:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: StuckAtFault, right: StuckAtFault) -> None:
        self._parent[self.find(left)] = self.find(right)


#: Controlling input value and the equivalent output value, per gate type.
_GATE_RULES = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}


def representative_map(
    circuit: Circuit, faults: List[StuckAtFault]
) -> Dict[StuckAtFault, StuckAtFault]:
    """Map every fault in *faults* to its equivalence-class representative.

    The representative of each class is its smallest member under the fault
    ordering (gate index, pin, kind), which makes results deterministic.
    """
    uf = _UnionFind()
    in_universe = set(faults)
    for fault in faults:
        uf.add(fault)

    def maybe_union(left: StuckAtFault, right: StuckAtFault) -> None:
        if left in in_universe and right in in_universe:
            uf.union(left, right)

    for gate in circuit.gates:
        rule = _GATE_RULES.get(gate.gtype)
        if rule is not None:
            controlling, output_value = rule
            out_fault = StuckAtFault.make(gate.index, OUTPUT_PIN, output_value)
            for pin in range(gate.arity):
                maybe_union(StuckAtFault.make(gate.index, pin, controlling), out_fault)
        elif gate.gtype is GateType.NOT:
            maybe_union(
                StuckAtFault.make(gate.index, 0, 0),
                StuckAtFault.make(gate.index, OUTPUT_PIN, 1),
            )
            maybe_union(
                StuckAtFault.make(gate.index, 0, 1),
                StuckAtFault.make(gate.index, OUTPUT_PIN, 0),
            )
        elif gate.gtype is GateType.BUF:
            for value in (0, 1):
                maybe_union(
                    StuckAtFault.make(gate.index, 0, value),
                    StuckAtFault.make(gate.index, OUTPUT_PIN, value),
                )

    # Stem/branch equivalence for singly-loaded, unobserved stems.
    loads: Dict[int, List] = {gate.index: [] for gate in circuit.gates}
    for gate in circuit.gates:
        for pin, source in enumerate(gate.fanin):
            loads[source].append((gate.index, pin))
    for gate in circuit.gates:
        pins = loads[gate.index]
        if len(pins) != 1 or gate.is_output:
            continue
        sink_gate, sink_pin = pins[0]
        if circuit.gates[sink_gate].gtype is GateType.DFF:
            continue  # never collapse across a flip-flop boundary
        for value in (0, 1):
            maybe_union(
                StuckAtFault.make(gate.index, OUTPUT_PIN, value),
                StuckAtFault.make(sink_gate, sink_pin, value),
            )

    best_of_root: Dict[StuckAtFault, StuckAtFault] = {}
    for fault in faults:
        root = uf.find(fault)
        best = best_of_root.get(root)
        if best is None or fault < best:
            best_of_root[root] = fault
    return {fault: best_of_root[uf.find(fault)] for fault in faults}


def collapse_stuck_at(
    circuit: Circuit, faults: List[StuckAtFault]
) -> List[StuckAtFault]:
    """Collapse *faults* by structural equivalence; returns representatives."""
    reps = representative_map(circuit, faults)
    return sorted(set(reps.values()))


def equivalence_classes(
    circuit: Circuit, faults: List[StuckAtFault]
) -> Dict[StuckAtFault, List[StuckAtFault]]:
    """Full class map: representative -> all members (for diagnosis tools)."""
    reps = representative_map(circuit, faults)
    classes: Dict[StuckAtFault, List[StuckAtFault]] = {}
    for fault in faults:
        classes.setdefault(reps[fault], []).append(fault)
    for members in classes.values():
        members.sort()
    return classes
