"""Static fault definitions.

A fault lives on a *site*: either the output line of a gate or one of its
input pins.  Fanout-branch faults of classic line-based models map onto
input-pin faults of the fed gates, so (gate, pin) sites cover the full
single-stuck-line universe.

These objects are immutable descriptions.  The per-run state the paper
stores in *fault descriptors* (detected flag, detection time, functional
lookup table for macro faults) lives in the engines'
:class:`repro.concurrent.elements.FaultDescriptor`, keyed by these objects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.circuit.netlist import Circuit

#: Pin number denoting a gate's output line.
OUTPUT_PIN = -1


class FaultKind(enum.Enum):
    STUCK_AT_0 = "SA0"
    STUCK_AT_1 = "SA1"
    SLOW_TO_RISE = "STR"
    SLOW_TO_FALL = "STF"


#: (gate_index, pin) — pin is OUTPUT_PIN for the output line.
FaultSite = Tuple[int, int]


@dataclass(frozen=True)
class Fault:
    """Base class for all single-fault definitions.

    Ordering is (gate, pin, kind name): deterministic fault ids and
    deterministic collapse representatives depend on it.
    """

    gate: int
    pin: int
    kind: FaultKind

    def _sort_key(self) -> Tuple[int, int, str]:
        return (self.gate, self.pin, self.kind.value)

    def __lt__(self, other: "Fault") -> bool:
        return self._sort_key() < other._sort_key()

    def __le__(self, other: "Fault") -> bool:
        return self._sort_key() <= other._sort_key()

    def __gt__(self, other: "Fault") -> bool:
        return self._sort_key() > other._sort_key()

    def __ge__(self, other: "Fault") -> bool:
        return self._sort_key() >= other._sort_key()

    @property
    def site(self) -> FaultSite:
        return (self.gate, self.pin)

    @property
    def on_output(self) -> bool:
        return self.pin == OUTPUT_PIN


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """A line permanently stuck at 0 or 1."""

    @property
    def value(self) -> int:
        return 0 if self.kind is FaultKind.STUCK_AT_0 else 1

    @staticmethod
    def make(gate: int, pin: int, value: int) -> "StuckAtFault":
        kind = FaultKind.STUCK_AT_0 if value == 0 else FaultKind.STUCK_AT_1
        return StuckAtFault(gate, pin, kind)


def fault_name(circuit: Circuit, fault: Fault) -> str:
    """Human-readable fault name, e.g. ``G9/IN1:SA0`` or ``G17:STR``."""
    gate = circuit.gates[fault.gate]
    if fault.on_output:
        return f"{gate.name}:{fault.kind.value}"
    return f"{gate.name}/IN{fault.pin}:{fault.kind.value}"
