"""Enumeration of the single stuck-at fault universe of a circuit.

The full universe places ``s-a-0`` and ``s-a-1`` on every gate output line
and on every gate input pin (input pins subsume fanout-branch faults).
``stuck_at_universe`` optionally collapses it by structural equivalence,
which is what the fault counts in the paper's Table 2 report.
"""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType


def all_stuck_at_faults(circuit: Circuit) -> List[StuckAtFault]:
    """The uncollapsed stuck-at universe, in deterministic site order.

    Output faults are placed on every gate (including primary inputs and
    flip-flops — a stuck flip-flop output is a classic sequential fault).
    Input-pin faults are placed on every combinational gate pin and on
    flip-flop D pins.
    """
    faults: List[StuckAtFault] = []
    for gate in circuit.gates:
        for value in (0, 1):
            faults.append(StuckAtFault.make(gate.index, OUTPUT_PIN, value))
        if gate.gtype is GateType.INPUT:
            continue
        for pin in range(gate.arity):
            for value in (0, 1):
                faults.append(StuckAtFault.make(gate.index, pin, value))
    return faults


def stuck_at_universe(circuit: Circuit, collapse: bool = True) -> List[StuckAtFault]:
    """The stuck-at fault list a simulator targets.

    With ``collapse`` (the default, matching the paper's fault counts) one
    representative per structural-equivalence class is kept.
    """
    faults = all_stuck_at_faults(circuit)
    if not collapse:
        return faults
    from repro.faults.collapse import collapse_stuck_at

    return collapse_stuck_at(circuit, faults)
