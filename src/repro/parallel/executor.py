"""Shard execution backends: multiprocessing workers and a sequential twin.

A :class:`ShardTask` is a self-contained, picklable description of one
shard's campaign — circuit, vectors, fault subset, engine configuration,
budget, checkpoint binding.  :func:`simulate_shard` turns one into a
:class:`repro.result.FaultSimResult`; it is a module-level function so the
``multiprocessing`` start methods that re-import (spawn/forkserver) can
find it.

Two executors run task lists:

* :class:`MultiprocessExecutor` — a process pool of ``jobs`` workers
  consuming tasks as they free up (``imap_unordered``), which is what
  makes the ``work-stealing`` strategy's oversharded queue dynamic.
  Results are re-ordered by shard index before returning, so completion
  order never leaks into the merged result.
* :class:`SequentialExecutor` — the same tasks in-process, in shard
  order.  The fallback when ``multiprocessing`` is unavailable or
  unwanted (``--jobs 1``), the debug mode (breakpoints work), and the
  determinism oracle: both executors must produce identical outcomes.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit

if TYPE_CHECKING:
    from repro.obs.tracer import RecordingTracer
from repro.concurrent.options import SimOptions
from repro.obs.span import SpanWriter, TraceContext
from repro.patterns.vectors import TestSequence, Vector
from repro.result import FaultSimResult
from repro.robust.budget import Budget


@dataclass
class ShardTask:
    """One shard's complete campaign description (picklable)."""

    index: int
    total: int
    circuit: Circuit
    vectors: List[Vector]
    faults: Tuple
    engine: str = "csim-MV"
    transition: bool = False
    options: Optional[SimOptions] = None
    budget: Optional[Budget] = None
    telemetry: bool = False
    checkpoint_path: Optional[str] = None
    resume: bool = False
    checkpoint_every: int = 64
    strategy: str = "round-robin"
    #: Extra fingerprint material binding the shard checkpoint to its
    #: position in the campaign (strategy, index, total).
    fingerprint_extra: tuple = field(default_factory=tuple)
    #: Span-tracing context (see repro.obs.span): when ``trace_dir`` is
    #: set the worker appends its shard span tree there, parented under
    #: ``trace_parent`` so the campaign stitches into one trace.
    trace_dir: Optional[str] = None
    trace_parent: Optional[TraceContext] = None
    #: Record the per-gate engine event stream into the trace directory.
    record_events: bool = False
    #: Word width for the packed engines (PROOFS/vsim); None = default.
    word_width: Optional[int] = None
    #: Dictionary-building mode: no fault dropping, full per-fault
    #: failure responses on the shard result (see ``repro.diagnosis``).
    record_responses: bool = False


def _make_cycle_clock_tracer(record_events: bool) -> "RecordingTracer":
    """A RecordingTracer that also wall-clocks every cycle boundary."""
    import time

    from repro.obs import RecordingTracer

    class CycleClockTracer(RecordingTracer):
        def __init__(self) -> None:
            super().__init__(record_events=record_events)
            self.cycle_clock: List[Tuple[int, float]] = []

        def cycle_start(self, cycle: int) -> None:
            self.cycle_clock.append((cycle, time.time()))
            super().cycle_start(cycle)

    return CycleClockTracer()


def _emit_cycle_range_spans(
    writer: SpanWriter,
    parent: TraceContext,
    cycle_clock: List[Tuple[int, float]],
    end_time: float,
    max_ranges: int = 8,
) -> None:
    """Chunk the cycle clock into at most *max_ranges* child spans."""
    if not cycle_clock:
        return
    chunk = max(1, (len(cycle_clock) + max_ranges - 1) // max_ranges)
    for start_index in range(0, len(cycle_clock), chunk):
        group = cycle_clock[start_index:start_index + chunk]
        next_index = start_index + chunk
        range_end = (
            cycle_clock[next_index][1] if next_index < len(cycle_clock) else end_time
        )
        writer.emit(
            f"cycles {group[0][0]}-{group[-1][0]}",
            parent.child(),
            group[0][1],
            range_end,
            first_cycle=group[0][0],
            last_cycle=group[-1][0],
        )


def simulate_shard(task: ShardTask) -> Tuple[int, FaultSimResult]:
    """Run one shard to completion; returns ``(shard_index, result)``.

    With tracing armed (``trace_dir`` + ``trace_parent``) the worker
    process writes a ``shard i/N`` span carrying the shard's work
    counters, cycle-range child spans, and — when ``record_events`` — the
    engine's per-gate event stream, all into the shared trace directory.
    """
    import time

    from repro.obs import RecordingTracer

    tests = TestSequence(len(task.circuit.inputs), list(task.vectors))
    tracing = task.trace_dir is not None and task.trace_parent is not None
    tracer: Optional[RecordingTracer]
    if tracing:
        tracer = _make_cycle_clock_tracer(task.record_events)
    elif task.telemetry:
        tracer = RecordingTracer()
    else:
        tracer = None
    shard_started = time.time()
    result = _run_shard(task, tests, tracer)
    if tracing:
        _write_shard_trace(task, tracer, result, shard_started)
    return task.index, result


def _run_shard(
    task: ShardTask, tests: TestSequence, tracer: Optional["RecordingTracer"]
) -> FaultSimResult:
    from repro.harness.runner import run_stuck_at, run_transition
    from repro.robust.runner import run_checkpointed

    if task.checkpoint_path is not None:
        result = run_checkpointed(
            task.circuit,
            tests,
            task.engine,
            transition=task.transition,
            faults=list(task.faults),
            options=task.options,
            tracer=tracer,
            budget=task.budget,
            checkpoint_path=task.checkpoint_path,
            resume=task.resume,
            checkpoint_every=task.checkpoint_every,
            fingerprint_extra=task.fingerprint_extra,
            word_width=task.word_width,
            record_responses=task.record_responses,
        )
    elif task.transition:
        result = run_transition(
            task.circuit,
            tests,
            split_lists=(task.options or SimOptions(split_lists=True)).split_lists,
            faults=list(task.faults),
            tracer=tracer,
            budget=task.budget,
        )
    else:
        result = run_stuck_at(
            task.circuit,
            tests,
            task.engine,
            faults=list(task.faults),
            options=task.options,
            tracer=tracer,
            budget=task.budget,
            word_width=task.word_width,
            record_responses=task.record_responses,
        )
    return result


def _write_shard_trace(
    task: ShardTask,
    tracer: Optional["RecordingTracer"],
    result: FaultSimResult,
    shard_started: float,
) -> None:
    """Append this shard's span tree (and optional event stream) to the
    trace directory.  The shard span carries the work counters so the
    inspection CLI can build the balance table from spans alone."""
    import time

    assert task.trace_dir is not None and task.trace_parent is not None
    writer = SpanWriter(task.trace_dir, label=f"shard{task.index:02d}")
    try:
        shard_ctx = task.trace_parent.child()
        counters = result.counters
        writer.emit(
            f"shard {task.index}/{task.total}",
            shard_ctx,
            shard_started,
            time.time(),
            shard=task.index,
            total=task.total,
            engine=result.engine,
            strategy=task.strategy,
            faults=len(task.faults),
            detected=result.num_detected,
            cycles=counters.cycles,
            good_evaluations=counters.good_evaluations,
            fault_evaluations=counters.fault_evaluations,
            element_visits=counters.element_visits,
            events=counters.events,
            gates_scheduled=counters.gates_scheduled,
            pid=os.getpid(),
        )
        _emit_cycle_range_spans(
            writer, shard_ctx, getattr(tracer, "cycle_clock", []), time.time()
        )
        if task.record_events and tracer is not None and tracer.records:
            from repro.obs.export import write_jsonl_trace

            events_path = os.path.join(
                task.trace_dir,
                f"events-shard{task.index:02d}-of-{task.total:02d}.jsonl",
            )
            header = {
                "t": "shard_header",
                "trace_id": task.trace_parent.trace_id,
                "span_id": shard_ctx.span_id,
                "shard": task.index,
                "total": task.total,
            }
            write_jsonl_trace([header] + list(tracer.records), events_path)
    finally:
        writer.close()


#: Callback fired after each completed shard: (shard_index, result).
ShardCallback = Callable[[int, FaultSimResult], None]


class SequentialExecutor:
    """Run shard tasks in-process, in shard order.

    ``on_result`` fires after every completed shard — the chaos/test hook
    for injecting interrupts at deterministic points of a campaign.
    """

    def __init__(self, on_result: Optional[ShardCallback] = None) -> None:
        self.on_result = on_result

    def run(self, tasks: Sequence[ShardTask]) -> List[FaultSimResult]:
        outcomes: List[Tuple[int, FaultSimResult]] = []
        for task in tasks:
            index, result = simulate_shard(task)
            outcomes.append((index, result))
            if self.on_result is not None:
                self.on_result(index, result)
        outcomes.sort(key=lambda pair: pair[0])
        return [result for _, result in outcomes]


class MultiprocessExecutor:
    """Run shard tasks in a pool of ``jobs`` worker processes.

    Tasks are consumed dynamically (a free worker takes the next pending
    shard) and results are returned in shard order regardless of
    completion order.  On interrupt the pool is terminated — worker-side
    periodic checkpoints remain the resume points for unfinished shards.
    """

    def __init__(self, jobs: int, on_result: Optional[ShardCallback] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.on_result = on_result

    def run(self, tasks: Sequence[ShardTask]) -> List[FaultSimResult]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        if workers == 1:
            return SequentialExecutor(self.on_result).run(tasks)
        outcomes: List[Tuple[int, FaultSimResult]] = []
        context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(simulate_shard, tasks):
                outcomes.append((index, result))
                if self.on_result is not None:
                    self.on_result(index, result)
        outcomes.sort(key=lambda pair: pair[0])
        return [result for _, result in outcomes]
