"""Shard execution backends: multiprocessing workers and a sequential twin.

A :class:`ShardTask` is a self-contained, picklable description of one
shard's campaign — circuit, vectors, fault subset, engine configuration,
budget, checkpoint binding.  :func:`simulate_shard` turns one into a
:class:`repro.result.FaultSimResult`; it is a module-level function so the
``multiprocessing`` start methods that re-import (spawn/forkserver) can
find it.

Two executors run task lists:

* :class:`MultiprocessExecutor` — a process pool of ``jobs`` workers
  consuming tasks as they free up (``imap_unordered``), which is what
  makes the ``work-stealing`` strategy's oversharded queue dynamic.
  Results are re-ordered by shard index before returning, so completion
  order never leaks into the merged result.
* :class:`SequentialExecutor` — the same tasks in-process, in shard
  order.  The fallback when ``multiprocessing`` is unavailable or
  unwanted (``--jobs 1``), the debug mode (breakpoints work), and the
  determinism oracle: both executors must produce identical outcomes.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.concurrent.options import SimOptions
from repro.patterns.vectors import TestSequence, Vector
from repro.result import FaultSimResult
from repro.robust.budget import Budget


@dataclass
class ShardTask:
    """One shard's complete campaign description (picklable)."""

    index: int
    total: int
    circuit: Circuit
    vectors: List[Vector]
    faults: Tuple
    engine: str = "csim-MV"
    transition: bool = False
    options: Optional[SimOptions] = None
    budget: Optional[Budget] = None
    telemetry: bool = False
    checkpoint_path: Optional[str] = None
    resume: bool = False
    checkpoint_every: int = 64
    strategy: str = "round-robin"
    #: Extra fingerprint material binding the shard checkpoint to its
    #: position in the campaign (strategy, index, total).
    fingerprint_extra: tuple = field(default_factory=tuple)


def simulate_shard(task: ShardTask) -> Tuple[int, FaultSimResult]:
    """Run one shard to completion; returns ``(shard_index, result)``."""
    from repro.harness.runner import run_stuck_at, run_transition
    from repro.obs import RecordingTracer
    from repro.robust.runner import run_checkpointed

    tests = TestSequence(len(task.circuit.inputs), list(task.vectors))
    tracer = RecordingTracer() if task.telemetry else None
    if task.checkpoint_path is not None:
        result = run_checkpointed(
            task.circuit,
            tests,
            task.engine,
            transition=task.transition,
            faults=list(task.faults),
            options=task.options,
            tracer=tracer,
            budget=task.budget,
            checkpoint_path=task.checkpoint_path,
            resume=task.resume,
            checkpoint_every=task.checkpoint_every,
            fingerprint_extra=task.fingerprint_extra,
        )
    elif task.transition:
        result = run_transition(
            task.circuit,
            tests,
            split_lists=(task.options or SimOptions(split_lists=True)).split_lists,
            faults=list(task.faults),
            tracer=tracer,
            budget=task.budget,
        )
    else:
        result = run_stuck_at(
            task.circuit,
            tests,
            task.engine,
            faults=list(task.faults),
            options=task.options,
            tracer=tracer,
            budget=task.budget,
        )
    return task.index, result


#: Callback fired after each completed shard: (shard_index, result).
ShardCallback = Callable[[int, FaultSimResult], None]


class SequentialExecutor:
    """Run shard tasks in-process, in shard order.

    ``on_result`` fires after every completed shard — the chaos/test hook
    for injecting interrupts at deterministic points of a campaign.
    """

    def __init__(self, on_result: Optional[ShardCallback] = None) -> None:
        self.on_result = on_result

    def run(self, tasks: Sequence[ShardTask]) -> List[FaultSimResult]:
        outcomes: List[Tuple[int, FaultSimResult]] = []
        for task in tasks:
            index, result = simulate_shard(task)
            outcomes.append((index, result))
            if self.on_result is not None:
                self.on_result(index, result)
        outcomes.sort(key=lambda pair: pair[0])
        return [result for _, result in outcomes]


class MultiprocessExecutor:
    """Run shard tasks in a pool of ``jobs`` worker processes.

    Tasks are consumed dynamically (a free worker takes the next pending
    shard) and results are returned in shard order regardless of
    completion order.  On interrupt the pool is terminated — worker-side
    periodic checkpoints remain the resume points for unfinished shards.
    """

    def __init__(self, jobs: int, on_result: Optional[ShardCallback] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.on_result = on_result

    def run(self, tasks: Sequence[ShardTask]) -> List[FaultSimResult]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        if workers == 1:
            return SequentialExecutor(self.on_result).run(tasks)
        outcomes: List[Tuple[int, FaultSimResult]] = []
        context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            for index, result in pool.imap_unordered(simulate_shard, tasks):
                outcomes.append((index, result))
                if self.on_result is not None:
                    self.on_result(index, result)
        outcomes.sort(key=lambda pair: pair[0])
        return [result for _, result in outcomes]
