"""The fault-sharded parallel campaign runner.

``run_parallel`` is the one entry point: partition the (collapsed) fault
universe into shards (:mod:`repro.parallel.sharding`), simulate every
shard with an independent engine — in ``jobs`` worker processes or
in-process sequentially (:mod:`repro.parallel.executor`) — and merge the
shard results deterministically (:mod:`repro.parallel.merge`).  The
merged detections, detection cycles and coverage are bit-identical to a
single-process run for any shard count, strategy, and executor.

Resilience composes with parallelism shard-wise:

* **Checkpoints** — with ``checkpoint_path`` every shard checkpoints its
  own engine through :func:`repro.robust.runner.run_checkpointed` into
  ``<path>.shardII-of-NN``, fingerprint-bound to the shard's fault subset
  *and* its (strategy, index, total) position, so resuming under a
  different sharding configuration is refused rather than silently
  merged wrong.  ``resume=True`` resumes shards whose checkpoint exists
  (finished shards replay from their final checkpoint without
  re-simulating) and starts the rest fresh — exactly what a campaign
  killed mid-run needs.
* **Budgets** — the budget is armed per shard; any shard's breach marks
  the merged result ``truncated`` (see :mod:`repro.parallel.merge`).
* **Interrupts** — Ctrl-C surfaces as
  :class:`repro.robust.checkpoint.CampaignInterrupted` carrying the base
  checkpoint path; completed and in-flight shards keep their durable
  progress.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Protocol, Sequence

import json

from repro.circuit.netlist import Circuit
from repro.concurrent.options import SimOptions
from repro.faults.model import Fault
from repro.faults.transition import all_transition_faults
from repro.faults.universe import stuck_at_universe
from repro.obs.span import SpanWriter, TraceContext
from repro.parallel.executor import (
    MultiprocessExecutor,
    SequentialExecutor,
    ShardTask,
)
from repro.parallel.merge import merge_results
from repro.parallel.sharding import DEFAULT_OVERSHARD, STRATEGIES, shard_faults
from repro.patterns.vectors import TestSequence
from repro.result import FaultSimResult
from repro.robust.budget import Budget
from repro.robust.checkpoint import CampaignInterrupted


class ShardExecutor(Protocol):
    """What ``run_parallel`` needs from an executor: run tasks, in order."""

    def run(self, tasks: Sequence[ShardTask]) -> List[FaultSimResult]: ...


def shard_checkpoint_path(base: str, index: int, total: int) -> str:
    """The per-shard checkpoint file under a campaign's base path."""
    return f"{base}.shard{index:02d}-of-{total:02d}"


def plan_shards(
    circuit: Circuit,
    faults: Optional[Sequence[Fault]],
    jobs: int,
    shard_strategy: str = "round-robin",
    overshard: int = DEFAULT_OVERSHARD,
    transition: bool = False,
) -> List[list]:
    """The deterministic shard partition a campaign would use."""
    if faults is None:
        universe = (
            all_transition_faults(circuit) if transition else stuck_at_universe(circuit)
        )
    else:
        universe = list(faults)
    return shard_faults(circuit, sorted(universe), jobs, shard_strategy, overshard)


def run_parallel(
    circuit: Circuit,
    tests: TestSequence,
    engine: str = "csim-MV",
    *,
    transition: bool = False,
    faults: Optional[Sequence[Fault]] = None,
    options: Optional[SimOptions] = None,
    jobs: int = 1,
    shard_strategy: str = "round-robin",
    overshard: int = DEFAULT_OVERSHARD,
    budget: Optional[Budget] = None,
    telemetry: bool = False,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    checkpoint_every: int = 64,
    executor: Optional[ShardExecutor] = None,
    trace_dir: Optional[str] = None,
    trace_ctx: Optional[TraceContext] = None,
    record_events: bool = False,
    word_width: Optional[int] = None,
    record_responses: bool = False,
    fingerprint_extra: tuple = (),
) -> FaultSimResult:
    """Run one fault-simulation campaign sharded over *jobs* workers.

    With the default executor, ``jobs > 1`` runs shards in a process pool
    and ``jobs == 1`` runs the (single) shard in-process.  Passing an
    ``executor`` (:class:`SequentialExecutor` or
    :class:`MultiprocessExecutor`) overrides that choice without touching
    the partition — the standard trick for testing that backends agree.

    ``telemetry=True`` records a :class:`repro.obs.RecordingTracer` in
    every worker and attaches the merged telemetry to the result (the
    parallel counterpart of passing a tracer to a single-process run);
    the merged totals reconcile exactly with the merged work counters.

    ``trace_dir`` arms cross-process span tracing: every shard worker
    appends its span tree (shard → cycle ranges) to the directory,
    parented under ``trace_ctx`` (a fresh root trace when None), and the
    campaign writes ``plan``/``merge`` spans plus ``telemetry.json`` and
    ``manifest.json`` sidecars.  Tracing implies ``telemetry``.
    ``record_events`` additionally streams each shard's per-gate engine
    events to ``events-shard*.jsonl`` files (the ``--trace`` payload).
    """
    if shard_strategy not in STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {shard_strategy!r}; choose from {STRATEGIES}"
        )
    if resume and checkpoint_path is None:
        raise ValueError("resume requested without a checkpoint path")

    writer: Optional[SpanWriter] = None
    if trace_dir is not None:
        if trace_ctx is None:
            trace_ctx = TraceContext.new_trace()
        telemetry = True
        writer = SpanWriter(trace_dir, label="campaign")

    plan_started = time.time()
    shards = plan_shards(
        circuit, faults, jobs, shard_strategy, overshard, transition=transition
    )
    if writer is not None and trace_ctx is not None:
        writer.emit(
            "plan",
            trace_ctx.child(),
            plan_started,
            time.time(),
            shards=len(shards),
            strategy=shard_strategy,
            jobs=jobs,
        )
    total = len(shards)
    tasks: List[ShardTask] = []
    for index, shard in enumerate(shards):
        path = (
            shard_checkpoint_path(checkpoint_path, index, total)
            if checkpoint_path is not None
            else None
        )
        tasks.append(
            ShardTask(
                index=index,
                total=total,
                circuit=circuit,
                vectors=list(tests.vectors),
                faults=tuple(shard),
                engine=engine,
                transition=transition,
                options=options,
                budget=budget,
                telemetry=telemetry,
                checkpoint_path=path,
                resume=resume and path is not None and os.path.exists(path),
                checkpoint_every=checkpoint_every,
                strategy=shard_strategy,
                fingerprint_extra=(
                    *fingerprint_extra,
                    "shard",
                    shard_strategy,
                    index,
                    total,
                ),
                trace_dir=trace_dir,
                trace_parent=trace_ctx,
                record_events=record_events,
                word_width=word_width,
                record_responses=record_responses,
            )
        )

    if executor is None:
        executor = MultiprocessExecutor(jobs) if jobs > 1 else SequentialExecutor()

    started = time.perf_counter()
    try:
        results = executor.run(tasks)
    except CampaignInterrupted as exc:
        # Surface the campaign's *base* path in the resume hint, not the
        # individual shard file the interrupt happened to land in.
        raise CampaignInterrupted(checkpoint_path, exc.cycles_done) from None
    except KeyboardInterrupt:
        raise CampaignInterrupted(checkpoint_path) from None
    merge_started = time.time()
    merged = merge_results(results, wall_seconds=time.perf_counter() - started)
    merged.circuit_name = circuit.name
    if writer is not None and trace_ctx is not None and trace_dir is not None:
        writer.emit(
            "merge",
            trace_ctx.child(),
            merge_started,
            time.time(),
            shards=total,
            detected=merged.num_detected,
        )
        _write_trace_sidecars(trace_dir, trace_ctx, merged, jobs, shard_strategy, total)
        writer.close()
    return merged


def _write_trace_sidecars(
    trace_dir: str,
    trace_ctx: TraceContext,
    merged: FaultSimResult,
    jobs: int,
    shard_strategy: str,
    shards: int,
) -> None:
    """The inspection sidecars: merged telemetry summary + trace manifest.

    File names carry the trace id so concurrent campaigns sharing one
    trace directory (the serve worker pool) never clobber each other;
    ``repro inspect`` resolves them by the trace it is rendering.
    """
    manifest = {
        "trace_id": trace_ctx.trace_id,
        "circuit": merged.circuit_name,
        "engine": merged.engine,
        "jobs": jobs,
        "shards": shards,
        "strategy": shard_strategy,
    }
    suffix = f"-{trace_ctx.trace_id}"
    with open(os.path.join(trace_dir, f"manifest{suffix}.json"), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if merged.telemetry is not None:
        from repro.obs.export import write_metrics_json

        write_metrics_json(
            merged.telemetry, os.path.join(trace_dir, f"telemetry{suffix}.json")
        )
