"""Fault-sharded parallel campaign execution.

Concurrent fault simulation is embarrassingly parallel along the fault
axis: faulty machines interact with the good machine, never with each
other, so the universe can be partitioned into shards, each shard
simulated by an independent engine (in a worker process or in-process),
and the shard results merged into a campaign result whose detections are
bit-identical to a single-process run — for any shard count, partition
strategy, or executor.

* :mod:`repro.parallel.sharding` — partition strategies (round-robin,
  level-balanced, work-stealing) and the activity estimator they share.
* :mod:`repro.parallel.executor` — the multiprocessing pool and its
  sequential in-process twin, plus the picklable per-shard task.
* :mod:`repro.parallel.merge` — the deterministic merge (detections,
  counters, telemetry, modelled memory) and its exactness contract.
* :mod:`repro.parallel.runner` — ``run_parallel``: partition, execute,
  merge; composes with budgets, per-shard checkpoints, and resume.
"""

from repro.parallel.executor import (
    MultiprocessExecutor,
    SequentialExecutor,
    ShardTask,
    simulate_shard,
)
from repro.parallel.merge import (
    merge_counters,
    merge_memory,
    merge_results,
    merge_telemetry,
)
from repro.parallel.runner import (
    plan_shards,
    run_parallel,
    shard_checkpoint_path,
)
from repro.parallel.sharding import (
    DEFAULT_OVERSHARD,
    STRATEGIES,
    activity_weights,
    shard_faults,
    shard_summary,
)

__all__ = [
    "DEFAULT_OVERSHARD",
    "STRATEGIES",
    "MultiprocessExecutor",
    "SequentialExecutor",
    "ShardTask",
    "activity_weights",
    "merge_counters",
    "merge_memory",
    "merge_results",
    "merge_telemetry",
    "plan_shards",
    "run_parallel",
    "shard_checkpoint_path",
    "shard_faults",
    "shard_summary",
    "simulate_shard",
]
