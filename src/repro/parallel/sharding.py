"""Fault-universe partitioning for the parallel campaign runner.

Concurrent fault simulation parallelizes naturally along the fault axis:
faulty machines never interact — each diverges from, and converges back
to, the *good* machine only — so any partition of the fault universe can
be simulated by independent engines and merged afterwards (see
:mod:`repro.parallel.merge`).  What the partition *does* change is load
balance: a shard whose faults all die in cycle 3 finishes long before a
shard of long-lived faults, and the campaign runs at the speed of its
slowest shard.

Three strategies, all deterministic for a given (circuit, universe, K):

``round-robin``
    Fault *i* of the sorted universe goes to shard ``i mod K``.  The
    sorted universe interleaves neighbouring sites across shards, which
    in practice spreads activity evenly; this is the default.
``level-balanced``
    Faults are weighted by an estimate of the activity they can cause —
    the size of the site gate's combinational fanout cone, computed from
    the circuit levelization — and packed into K shards by greedy
    longest-processing-time assignment.  Costs one reverse-topological
    sweep; pays off when fault activity is very non-uniform (a few
    faults near the PIs fan out over the whole netlist).
``work-stealing``
    The universe is cut into ``K * overshard`` small shards consumed
    dynamically from a shared queue: a worker that finishes early steals
    the next pending shard.  Balances runtime skew the static strategies
    cannot predict, at the price of more good-machine replication (every
    shard re-simulates the good machine).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault
from repro.logic.tables import GateType

#: Valid ``--shard-strategy`` names.
STRATEGIES = ("round-robin", "level-balanced", "work-stealing")

#: Shards per worker under ``work-stealing`` (small shards steal better,
#: but each one re-simulates the good machine).
DEFAULT_OVERSHARD = 4


def activity_weights(circuit: Circuit) -> List[int]:
    """Per-gate fault-activity estimate: combinational fanout-cone size.

    Computed in one reverse-level sweep as ``1 + sum(cone of fanouts)``,
    cutting at flip-flops (state boundaries).  Reconvergent fanout is
    counted once per path, which deliberately over-weights gates whose
    effects reach many paths — exactly the faults that stay live longest.
    """
    gates = circuit.gates
    cone = [1] * len(gates)
    for gate in sorted(gates, key=lambda g: g.level, reverse=True):
        if gate.gtype is GateType.DFF:
            continue
        total = 1
        for sink in gate.fanout:
            if gates[sink].gtype is not GateType.DFF:
                total += cone[sink]
        cone[gate.index] = total
    return cone


def _round_robin(faults: Sequence[Fault], num_shards: int) -> List[List[Fault]]:
    shards: List[List[Fault]] = [[] for _ in range(num_shards)]
    for position, fault in enumerate(faults):
        shards[position % num_shards].append(fault)
    return shards


def _level_balanced(
    circuit: Circuit, faults: Sequence[Fault], num_shards: int
) -> List[List[Fault]]:
    """Greedy LPT packing of weight-sorted faults into *num_shards* bins."""
    cone = activity_weights(circuit)
    # Sort once by (weight desc, fault asc): deterministic and stable.
    ordered = sorted(faults, key=lambda fault: (-cone[fault.gate], fault))
    shards: List[List[Fault]] = [[] for _ in range(num_shards)]
    heap = [(0, index) for index in range(num_shards)]
    heapq.heapify(heap)
    for fault in ordered:
        load, index = heapq.heappop(heap)
        shards[index].append(fault)
        heapq.heappush(heap, (load + cone[fault.gate], index))
    return shards


def shard_faults(
    circuit: Circuit,
    faults: Sequence[Fault],
    jobs: int,
    strategy: str = "round-robin",
    overshard: int = DEFAULT_OVERSHARD,
) -> List[List[Fault]]:
    """Partition *faults* (assumed sorted) into per-shard lists.

    Every fault appears in exactly one shard; empty shards are removed, so
    ``jobs`` larger than the universe degrades gracefully.  The result is
    a pure function of the arguments — never of worker timing — which is
    what makes the merged campaign result reproducible.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown shard strategy {strategy!r}; choose from {STRATEGIES}")
    if not faults:
        return [[]]
    if strategy == "work-stealing":
        num_shards = min(len(faults), jobs * max(1, overshard))
        shards = _round_robin(faults, num_shards)
    elif strategy == "level-balanced":
        shards = _level_balanced(circuit, faults, min(jobs, len(faults)))
    else:
        shards = _round_robin(faults, min(jobs, len(faults)))
    return [shard for shard in shards if shard]


def shard_summary(shards: List[List[Fault]], circuit: Circuit) -> List[Dict[str, int]]:
    """Per-shard size/weight table (for logs and the scaling benchmark)."""
    cone = activity_weights(circuit)
    return [
        {
            "faults": len(shard),
            "weight": sum(cone[fault.gate] for fault in shard),
        }
        for shard in shards
    ]
