"""Deterministic merging of per-shard fault-simulation results.

The merge contract, in order of strength:

* **Simulation outcome is partition-invariant.**  A faulty machine's
  trajectory — when it diverges, what it propagates, when it reaches an
  output — depends only on the good machine and its own fault, never on
  which other faults share the engine.  So ``detected``,
  ``potentially_detected`` (with their detection cycles), coverage and the
  fault universe size of the merged result are *bit-identical* to a
  single-process run over the whole universe, for any shard count and any
  strategy.  The equivalence tests and the hypothesis property suite pin
  this down.
* **The merge is deterministic.**  Results are merged in shard order and
  detection dicts are rebuilt sorted by (cycle, fault), so the merged
  result is a pure function of the shard partition — independent of
  worker scheduling, completion order, or the executor used
  (multiprocessing and the in-process sequential executor produce
  identical merged results).
* **Counters and memory aggregate the work actually done.**  Work
  counters are summed across shards and ``cycles`` takes the furthest
  shard.  Because every shard re-simulates the good machine and scheduling
  is a union over machine events, the summed counters *exceed* the
  single-process counters (for K > 1) by exactly the replication overhead
  — the quantity the scaling benchmark reports as parallel efficiency.
  For K = 1 the merge is the identity and every field matches the plain
  run bit-for-bit.  Modelled memory sums the same way: shards hold
  disjoint descriptor/element populations, so the summed peak is the
  campaign's aggregate footprint (an upper bound on the single-process
  peak, whose per-cycle maxima need not align across shards).

A shard that breached its budget marks the merged result ``truncated``
with the shard identified in the reason, and ``num_vectors`` drops to the
shortest shard's count — the prefix every fault was actually simulated
against (the contract of :mod:`repro.robust.budget`, lifted to campaigns).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import Telemetry
from repro.result import FaultSimResult, MemoryStats, WorkCounters

_SUMMED_CYCLE_FIELDS = (
    "good_evaluations",
    "fault_evaluations",
    "element_visits",
    "events",
    "gates_scheduled",
    "live_elements",
    "visible_elements",
    "invisible_elements",
    "drops",
    "diverges",
    "converges",
)


def merge_counters(parts: Sequence[WorkCounters]) -> WorkCounters:
    """Aggregate work counters: sums, except ``cycles`` (furthest shard)."""
    return WorkCounters(
        cycles=max((part.cycles for part in parts), default=0),
        good_evaluations=sum(part.good_evaluations for part in parts),
        fault_evaluations=sum(part.fault_evaluations for part in parts),
        element_visits=sum(part.element_visits for part in parts),
        events=sum(part.events for part in parts),
        gates_scheduled=sum(part.gates_scheduled for part in parts),
    )


def merge_memory(parts: Sequence[MemoryStats]) -> MemoryStats:
    """Aggregate the modelled memory of disjoint shard populations."""
    merged = MemoryStats(
        num_descriptors=sum(part.num_descriptors for part in parts),
        element_bytes=parts[0].element_bytes if parts else 12,
        descriptor_bytes=parts[0].descriptor_bytes if parts else 20,
    )
    merged.live_elements = sum(part.live_elements for part in parts)
    merged.peak_elements = sum(part.peak_elements for part in parts)
    return merged


def _merge_int_maps(parts: List[Dict]) -> Dict:
    merged: Dict = {}
    for part in parts:
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
    return dict(sorted(merged.items()))


def merge_telemetry(parts: Sequence[Optional[Telemetry]]) -> Optional[Telemetry]:
    """Merge per-shard telemetry into one campaign view (or None).

    Per-cycle series are summed row-by-row (shards simulate the same
    cycles); shards truncated short contribute only the rows they ran.
    """
    recorded = [part for part in parts if part is not None]
    if not recorded:
        return None
    rows: List[Dict[str, Any]] = []
    depth_of_row: List[Dict[int, int]] = []
    for part in recorded:
        for position, row in enumerate(part.cycles):
            if position == len(rows):
                rows.append(
                    {"cycle": row["cycle"], **{f: 0 for f in _SUMMED_CYCLE_FIELDS}}
                )
                depth_of_row.append({})
            merged_row = rows[position]
            for field_name in _SUMMED_CYCLE_FIELDS:
                merged_row[field_name] += row.get(field_name, 0)
            for level, count in row.get("queue_depth", {}).items():
                depths = depth_of_row[position]
                depths[level] = depths.get(level, 0) + count
    for merged_row, depths in zip(rows, depth_of_row):
        merged_row["queue_depth"] = dict(sorted(depths.items()))
    return Telemetry(
        engine=recorded[0].engine,
        circuit=recorded[0].circuit,
        wall_seconds=max(part.wall_seconds for part in recorded),
        totals=merge_counters([part.totals for part in recorded]),
        phase_seconds=_merge_int_maps([part.phase_seconds for part in recorded]),
        cycles=rows,
        gate_fault_evals=_merge_int_maps(
            [part.gate_fault_evals for part in recorded]
        ),
        gate_good_evals=_merge_int_maps([part.gate_good_evals for part in recorded]),
        list_length_histogram=_merge_int_maps(
            [part.list_length_histogram for part in recorded]
        ),
        drop_cycles=_merge_int_maps([part.drop_cycles for part in recorded]),
        detect_cycles=_merge_int_maps([part.detect_cycles for part in recorded]),
        diverges=sum(part.diverges for part in recorded),
        converges=sum(part.converges for part in recorded),
        budget_breaches=[
            dict(breach) for part in recorded for breach in part.budget_breaches
        ],
        fallbacks=[dict(f) for part in recorded for f in part.fallbacks],
    )


def merge_results(
    parts: Sequence[FaultSimResult],
    wall_seconds: Optional[float] = None,
) -> FaultSimResult:
    """Merge shard results (in shard order) into one campaign result.

    ``wall_seconds`` should be the campaign's elapsed wall clock (shards
    overlap in time under multiprocessing); it defaults to the slowest
    shard's own wall time.
    """
    if not parts:
        raise ValueError("merge_results needs at least one shard result")

    detected = dict(
        sorted(
            ((fault, cycle) for part in parts for fault, cycle in part.detected.items()),
            key=lambda item: (item[1], item[0]),
        )
    )
    potential = dict(
        sorted(
            (
                (fault, cycle)
                for part in parts
                for fault, cycle in part.potentially_detected.items()
            ),
            key=lambda item: (item[1], item[0]),
        )
    )

    responses = None
    if any(part.responses is not None for part in parts):
        # Shards hold disjoint fault populations, so the merged response
        # map is a plain union — rebuilt sorted by fault so the dictionary
        # bytes downstream are a pure function of the universe, never of
        # shard count or completion order.
        responses = dict(
            sorted(
                (fault, failures)
                for part in parts
                if part.responses is not None
                for fault, failures in part.responses.items()
            )
        )

    truncation_reason = None
    for index, part in enumerate(parts):
        if part.truncated:
            reason = part.truncation_reason or "budget exceeded"
            truncation_reason = (
                reason if len(parts) == 1 else f"shard {index}/{len(parts)}: {reason}"
            )
            break

    merged = FaultSimResult(
        engine=parts[0].engine,
        circuit_name=parts[0].circuit_name,
        num_faults=sum(part.num_faults for part in parts),
        num_vectors=min(part.num_vectors for part in parts),
        detected=detected,
        potentially_detected=potential,
        counters=merge_counters([part.counters for part in parts]),
        memory=merge_memory([part.memory for part in parts]),
        wall_seconds=(
            max(part.wall_seconds for part in parts)
            if wall_seconds is None
            else wall_seconds
        ),
        truncated=truncation_reason is not None,
        truncation_reason=truncation_reason,
        fallbacks=[dict(f) for part in parts for f in part.fallbacks],
        axis_windows=merge_axis_windows([part.axis_windows for part in parts]),
        responses=responses,
    )
    merged.telemetry = merge_telemetry([part.telemetry for part in parts])
    return merged


def merge_axis_windows(parts: List[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-axis window counts across shards (vector engine only).

    Each shard's scheduler plans independently from its own live-fault
    count, so the merged mix reports the campaign's actual axis usage —
    it is *not* expected to match a single-process run's mix (detection
    outcomes are bit-identical regardless; the mix is telemetry).
    """
    merged: Dict[str, int] = {}
    for part in parts:
        for axis, count in part.items():
            merged[axis] = merged.get(axis, 0) + count
    return merged
