"""Critical path tracing (Abramovici et al.) for combinational circuits.

The paper's related work ([4] Menon/Levendel/Abramovici, [7] Wang) extends
critical path tracing to sequential circuits; the paper notes they "didn't
give adequate experimental results".  This module implements the classic
combinational form as a baseline, with *exact* stem handling:

A line is **critical** for a vector when complementing its value changes
some primary output — equivalently, the stuck-at fault opposing its value
is detected by the vector.  Instead of simulating faults, CPT starts from
the outputs (trivially critical) and walks backwards:

* within a gate, criticality transfers from the output to inputs by local
  rules — with no controlling input every input is critical, with exactly
  one controlling input only it is critical, with several none are;
* at a *stem* (a signal with multiple loads) local rules break down —
  reconvergence can mask or multiply the effect — so the stem's
  criticality is decided exactly by one forward flip-simulation of its
  fanout cone (the "stem analysis" refinement of the original
  approximate algorithm).

Because stem analysis is exact, CPT's per-vector detections coincide with
deductive simulation's — the test suite checks precisely that.  The cost
profile differs: CPT does one backward sweep plus one cone simulation per
critical-candidate stem, independent of the fault count.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import Fault, OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, ZERO
from repro.result import FaultSimResult, MemoryStats, WorkCounters

#: Controlling input value per gate type (None: no controlling value).
_CONTROLLING = {
    GateType.AND: ZERO,
    GateType.NAND: ZERO,
    GateType.OR: ONE,
    GateType.NOR: ONE,
}


def _check(circuit: Circuit, vector: Sequence[int]) -> None:
    if circuit.dffs:
        raise ValueError(
            "critical path tracing here is combinational-only; "
            f"{circuit.name!r} has flip-flops"
        )
    if any(value not in (ZERO, ONE) for value in vector):
        raise ValueError("critical path tracing is two-valued; vector contains X")


def _settle(circuit: Circuit, vector: Sequence[int]) -> List[int]:
    values = [ZERO] * len(circuit.gates)
    for pi_index, value in zip(circuit.inputs, vector):
        values[pi_index] = value
    for gate_index in circuit.order:
        gate = circuit.gates[gate_index]
        values[gate_index] = evaluate_gate(
            gate, [values[source] for source in gate.fanin]
        )
    return values


def _flip_changes_output(
    circuit: Circuit, values: List[int], stem: int, counters: WorkCounters
) -> bool:
    """Exact stem analysis: forward-simulate the cone of ``flip(stem)``."""
    changed: Dict[int, int] = {stem: ONE - values[stem]}
    outputs = set(circuit.outputs)
    if stem in outputs:
        return True
    # Levelized forward propagation restricted to the affected cone.
    for gate_index in circuit.order:
        gate = circuit.gates[gate_index]
        if not any(source in changed for source in gate.fanin):
            continue
        counters.fault_evaluations += 1
        inputs = [changed.get(source, values[source]) for source in gate.fanin]
        value = evaluate_gate(gate, inputs)
        if value != values[gate_index]:
            changed[gate_index] = value
            if gate_index in outputs:
                return True
    return False


def _critical_pins(gate, values: List[int], counters: WorkCounters) -> List[int]:
    """Which input pins inherit criticality from a critical output."""
    counters.good_evaluations += 1
    gtype = gate.gtype
    if gtype in (GateType.NOT, GateType.BUF):
        return [0]
    if gtype in (GateType.XOR, GateType.XNOR):
        return list(range(gate.arity))
    controlling = _CONTROLLING.get(gtype)
    if controlling is None:  # constants
        return []
    holders = [
        pin for pin, source in enumerate(gate.fanin) if values[source] == controlling
    ]
    if not holders:
        return list(range(gate.arity))
    if len(holders) == 1:
        return holders
    return []


def critical_lines(
    circuit: Circuit,
    vector: Sequence[int],
    counters: Optional[WorkCounters] = None,
):
    """All critical lines of *vector*: (critical gate outputs, critical pins).

    Returns ``(outputs, pins)`` where *outputs* is a set of gate indices
    and *pins* a set of (gate, pin) pairs.
    """
    counters = counters if counters is not None else WorkCounters()
    _check(circuit, vector)
    values = _settle(circuit, vector)
    counters.good_evaluations += circuit.num_combinational

    loads: Dict[int, int] = {gate.index: 0 for gate in circuit.gates}
    for gate in circuit.gates:
        for source in gate.fanin:
            loads[source] += 1

    critical_out: Set[int] = set()
    critical_pin: Set[tuple] = set()
    #: source -> it fed at least one critical pin (candidate for tracing)
    fed_critical: Set[int] = set()

    sweep = sorted(
        (gate for gate in circuit.gates),
        key=lambda gate: -gate.level,
    )
    for gate in sweep:
        index = gate.index
        if gate.is_output:
            is_critical = True
        elif loads[index] == 1:
            # Single load: flipping this line IS flipping that pin.
            is_critical = index in fed_critical
        elif loads[index] == 0:
            is_critical = False
        else:
            # Stems are analyzed unconditionally: multiple-path
            # sensitization can make a stem critical although no single
            # branch is (each branch masked alone, the simultaneous flip
            # propagating) — the case that keeps exact criticality from
            # composing locally and made the original CPT approximate.
            is_critical = _flip_changes_output(circuit, values, index, counters)
        if not is_critical:
            continue
        critical_out.add(index)
        if gate.gtype in (GateType.INPUT, GateType.DFF):
            continue
        for pin in _critical_pins(gate, values, counters):
            critical_pin.add((index, pin))
            fed_critical.add(gate.fanin[pin])
    return critical_out, critical_pin, values


def cpt_detects(
    circuit: Circuit,
    vector: Sequence[int],
    faults: Optional[Iterable[StuckAtFault]] = None,
    counters: Optional[WorkCounters] = None,
) -> Set[StuckAtFault]:
    """Faults of *faults* detected by one vector, by critical path tracing."""
    universe = (
        frozenset(faults) if faults is not None else frozenset(stuck_at_universe(circuit))
    )
    counters = counters if counters is not None else WorkCounters()
    critical_out, critical_pin, values = critical_lines(circuit, vector, counters)
    detected: Set[StuckAtFault] = set()
    for index in critical_out:
        fault = StuckAtFault.make(index, OUTPUT_PIN, ONE - values[index])
        if fault in universe:
            detected.add(fault)
    for gate_index, pin in critical_pin:
        source = circuit.gates[gate_index].fanin[pin]
        fault = StuckAtFault.make(gate_index, pin, ONE - values[source])
        if fault in universe:
            detected.add(fault)
    return detected


def simulate_cpt(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Iterable[StuckAtFault]] = None,
) -> FaultSimResult:
    """Critical-path-tracing fault simulation of a combinational test set."""
    fault_list = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    universe = frozenset(fault_list)
    start = time.perf_counter()
    counters = WorkCounters()
    detected: Dict[Fault, int] = {}
    for cycle, vector in enumerate(vectors, start=1):
        counters.cycles += 1
        for fault in cpt_detects(circuit, vector, universe, counters):
            detected.setdefault(fault, cycle)
    return FaultSimResult(
        engine="critical-path-tracing",
        circuit_name=circuit.name,
        num_faults=len(fault_list),
        num_vectors=len(vectors),
        detected=detected,
        counters=counters,
        memory=MemoryStats(num_descriptors=len(fault_list)),
        wall_seconds=time.perf_counter() - start,
    )
