"""Baseline fault simulators.

* :mod:`repro.baselines.serial` — one fault at a time over the reference
  cycle simulator; slow but *obviously* correct, the oracle for every
  cross-validation test (plus the serial two-pass transition reference).
* :mod:`repro.baselines.proofs` — a reimplementation of the PROOFS
  algorithm (Niermann, Cheng & Patel, DAC 1990), the comparison point of
  the paper's Tables 3-5.
* :mod:`repro.baselines.deductive` — classic deductive fault simulation
  (Armstrong 1972) for combinational circuits, the historical method whose
  simplicity the paper's data structure borrows.
* :mod:`repro.baselines.cpt` — critical path tracing with exact stem
  analysis (the related-work approach of the paper's references [4]/[7]).
"""

from repro.baselines.serial import simulate_serial, simulate_serial_transition
from repro.baselines.proofs import ProofsSimulator
from repro.baselines.deductive import deductive_detects, simulate_deductive
from repro.baselines.cpt import cpt_detects, simulate_cpt

__all__ = [
    "simulate_serial",
    "simulate_serial_transition",
    "ProofsSimulator",
    "deductive_detects",
    "simulate_deductive",
    "cpt_detects",
    "simulate_cpt",
]
