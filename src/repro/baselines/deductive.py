"""Deductive fault simulation (Armstrong 1972) for combinational circuits.

The historical method whose *data-structure simplicity* the paper's
concurrent simulator deliberately borrows ("the proposed fault simulators
adopt the simplicity of deductive fault simulation"): one fault list per
gate, propagated in level order by set algebra.  A fault appears on a
gate's list exactly when that gate's value in the faulty machine is the
complement of the good value — which is why classic deductive simulation is
two-valued and combinational (list entries carry no state, so unknowns and
sequential memory don't fit; concurrent simulation fixes precisely this by
attaching a state to each element).

Kept as a baseline and teaching reference; it also cross-checks the
concurrent engine on combinational circuits.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Set

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import Fault, OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.values import ONE, ZERO
from repro.result import FaultSimResult, MemoryStats, WorkCounters


def _check_combinational_binary(circuit: Circuit, vector: Sequence[int]) -> None:
    if circuit.dffs:
        raise ValueError(
            "deductive simulation is combinational-only; "
            f"{circuit.name!r} has flip-flops"
        )
    if any(value not in (ZERO, ONE) for value in vector):
        raise ValueError("deductive simulation is two-valued; vector contains X")


def deductive_detects(
    circuit: Circuit,
    vector: Sequence[int],
    faults: Optional[Iterable[StuckAtFault]] = None,
    counters: Optional[WorkCounters] = None,
) -> Set[StuckAtFault]:
    """Faults of *faults* detected by one vector, by fault-list propagation.

    Returns the union of the primary outputs' fault lists intersected with
    the target universe.
    """
    _check_combinational_binary(circuit, vector)
    universe = (
        frozenset(faults) if faults is not None else frozenset(stuck_at_universe(circuit))
    )
    counters = counters if counters is not None else WorkCounters()
    gates = circuit.gates

    values: Dict[int, int] = {}
    lists: Dict[int, FrozenSet[StuckAtFault]] = {}

    for pi_index, value in zip(circuit.inputs, vector):
        values[pi_index] = value
        stuck = StuckAtFault.make(pi_index, OUTPUT_PIN, 1 - value)
        lists[pi_index] = frozenset({stuck}) if stuck in universe else frozenset()

    for gate_index in circuit.order:
        gate = gates[gate_index]
        counters.good_evaluations += 1
        good_inputs = [values[source] for source in gate.fanin]
        good = evaluate_gate(gate, good_inputs)
        values[gate_index] = good

        candidates: Set[StuckAtFault] = set()
        for source in gate.fanin:
            candidates |= lists[source]
            counters.element_visits += len(lists[source])
        for pin in range(gate.arity):
            stuck = StuckAtFault.make(gate_index, pin, 1 - good_inputs[pin])
            if stuck in universe:
                candidates.add(stuck)

        propagated: Set[StuckAtFault] = set()
        for fault in candidates:
            counters.fault_evaluations += 1
            inputs = [
                1 - value if fault in lists[source] else value
                for source, value in zip(gate.fanin, good_inputs)
            ]
            if fault.gate == gate_index and fault.pin != OUTPUT_PIN:
                inputs[fault.pin] = fault.value
            if evaluate_gate(gate, inputs) != good:
                propagated.add(fault)
        output_stuck = StuckAtFault.make(gate_index, OUTPUT_PIN, 1 - good)
        if output_stuck in universe:
            propagated.add(output_stuck)
        lists[gate_index] = frozenset(propagated)

    detected: Set[StuckAtFault] = set()
    for po_index in circuit.outputs:
        detected |= lists[po_index]
    return detected & universe


def simulate_deductive(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Iterable[StuckAtFault]] = None,
) -> FaultSimResult:
    """Deductive simulation of a combinational test set (pattern = cycle)."""
    fault_list = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    universe = frozenset(fault_list)
    start = time.perf_counter()
    counters = WorkCounters()
    detected: Dict[Fault, int] = {}
    for cycle, vector in enumerate(vectors, start=1):
        counters.cycles += 1
        for fault in deductive_detects(circuit, vector, universe, counters):
            detected.setdefault(fault, cycle)
    return FaultSimResult(
        engine="deductive",
        circuit_name=circuit.name,
        num_faults=len(fault_list),
        num_vectors=len(vectors),
        detected=detected,
        counters=counters,
        memory=MemoryStats(num_descriptors=len(fault_list)),
        wall_seconds=time.perf_counter() - start,
    )
