"""A reimplementation of PROOFS (Niermann, Cheng & Patel, DAC 1990).

PROOFS is the simulator the paper measures itself against in Tables 3-5:
bit-parallel *single fault propagation* for synchronous sequential
circuits.  Per vector:

1. the good machine is simulated once;
2. undetected faults that could possibly differ from the good machine this
   cycle — those with faulty flip-flop state, or whose stuck line's good
   value opposes the stuck value — are grouped, one word-bit per fault;
3. each group is simulated event-driven from the good values, with the
   fault effects injected at their sites and the groups' faulty flip-flop
   states applied, all machines in a group advancing in parallel through
   bitwise logic on two masks per signal (``ones`` and ``xs`` — three
   -valued logic needs two bits per machine);
4. detections are read off the primary-output words, and each fault's
   faulty-flip-flop set (its only per-fault state) is updated from the
   settled D words.

Detected faults are dropped immediately (never regrouped).  The word width
is configurable; PROOFS used the host's 32-bit words, Python integers allow
any width.

This implementation exists so the paper's comparison is algorithm-vs-
algorithm on one substrate rather than C binary vs Python (DESIGN.md §3).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO, is_binary
from repro.obs.tracer import Tracer
from repro.result import Failure, FaultSimResult, MemoryStats, WorkCounters
from repro.sim.logicsim import LogicSimulator
from repro.vector.packing import broadcast_word, evaluate_gate_word


class ProofsSimulator:
    """Word-parallel single-fault propagation fault simulator.

    ``record_responses`` switches the simulator into dictionary-building
    mode: detected faults are *not* dropped (they keep grouping and their
    flip-flop diffs keep evolving), and every binary output mismatch is
    recorded per fault as a ``(cycle, po_position)`` failure.  ``detected``
    still reports first-detection cycles, identical to a dropping run.
    """

    #: Engine name reported on results (subclasses override).
    engine_name = "PROOFS"

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Iterable[StuckAtFault]] = None,
        word_size: int = 64,
        tracer: Optional[Tracer] = None,
        record_responses: bool = False,
    ) -> None:
        if any(gate.gtype is GateType.MACRO for gate in circuit.gates):
            raise ValueError("PROOFS runs on flat circuits (no macro gates)")
        self.circuit = circuit
        self.faults: List[StuckAtFault] = (
            sorted(faults) if faults is not None else stuck_at_universe(circuit)
        )
        self.word_size = word_size
        self.tracer = tracer
        self.record_responses = record_responses
        #: Stable fault ids for trace records (PROOFS has no descriptors).
        self._fault_ids: Dict[StuckAtFault, int] = {
            fault: fid for fid, fault in enumerate(self.faults)
        }
        self.reset()

    def reset(self) -> None:
        self.good = LogicSimulator(self.circuit)
        self.cycle = 0
        self.detected: Dict[Fault, int] = {}
        self.potentially_detected: Dict[Fault, int] = {}
        #: fault -> {ff_index: latched value differing from good}
        self.ff_diffs: Dict[StuckAtFault, Dict[int, int]] = {
            fault: {} for fault in self.faults
        }
        #: fault -> recorded failures (record_responses mode only).
        self._responses: Dict[StuckAtFault, List[Failure]] = {}
        self.counters = WorkCounters()
        self.memory = MemoryStats(num_descriptors=len(self.faults))

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the full simulation state (see the concurrent engine's
        :meth:`~repro.concurrent.engine.ConcurrentFaultSimulator.snapshot`).

        PROOFS keeps almost no per-fault state — only the faulty flip-flop
        diffs — so its checkpoint is tiny.
        """
        import copy

        return {
            "values": list(self.good.values),
            "good_cycle": self.good.cycle,
            "cycle": self.cycle,
            "detected": dict(self.detected),
            "potential": dict(self.potentially_detected),
            "ff_diffs": {fault: dict(d) for fault, d in self.ff_diffs.items()},
            "counters": copy.copy(self.counters),
            "memory": copy.copy(self.memory),
            "responses": {
                fault: list(f) for fault, f in self._responses.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Roll the simulator back to a :meth:`snapshot`."""
        import copy

        self.good.values[:] = state["values"]
        self.good.cycle = state["good_cycle"]
        self.cycle = state["cycle"]
        self.detected = dict(state["detected"])
        self.potentially_detected = dict(state["potential"])
        self.ff_diffs = {fault: dict(d) for fault, d in state["ff_diffs"].items()}
        self._responses = {
            fault: [tuple(f) for f in failures]
            for fault, failures in state.get("responses", {}).items()
        }
        self.counters = copy.copy(state["counters"])
        self.memory = copy.copy(state["memory"])

    # ------------------------------------------------------------------
    # per-cycle flow
    # ------------------------------------------------------------------

    def step(self, vector: Sequence[int]) -> List[Fault]:
        """Simulate one vector; returns faults first detected this cycle."""
        circuit = self.circuit
        self.cycle += 1
        self.counters.cycles += 1
        trace = self.tracer
        if trace is not None:
            trace.cycle_start(self.cycle)
            t0 = time.perf_counter()

        self.good.settle(vector)
        self.counters.good_evaluations += circuit.num_combinational
        if trace is not None:
            trace.good_evals(None, circuit.num_combinational)
            t1 = time.perf_counter()
            trace.phase_time("good", t1 - t0)
        good_values = self.good.values
        good_outputs = self.good.sample_outputs()

        record = self.record_responses
        active = [
            fault
            for fault in self.faults
            if (record or fault not in self.detected)
            and self._is_active(fault, good_values)
        ]
        newly: List[Fault] = []
        for group_start in range(0, len(active), self.word_size):
            group = active[group_start : group_start + self.word_size]
            newly.extend(self._simulate_group(group, good_values, good_outputs))

        live = sum(len(diffs) for diffs in self.ff_diffs.values())
        self.memory.note_elements(live)
        if trace is not None:
            trace.phase_time("groups", time.perf_counter() - t1)
        self.good.clock()
        if trace is not None:
            trace.cycle_end(self.cycle, live=live, visible=live, invisible=0)
        return newly

    def run(self, vectors: Iterable[Sequence[int]], budget=None) -> FaultSimResult:
        trace = self.tracer
        if trace is not None:
            trace.run_start(self.engine_name, self.circuit.name)
        clock = budget.start() if budget else None
        start = time.perf_counter()
        applied = 0
        truncation_reason = None
        for vector in vectors:
            if clock is not None:
                breach = clock.check(self.counters.cycles, self.memory.peak_bytes)
                if breach is not None:
                    truncation_reason = breach.describe()
                    if trace is not None:
                        trace.budget_breach(breach.kind, breach.limit, breach.actual)
                    break
            self.step(vector)
            applied += 1
        elapsed = time.perf_counter() - start
        result = FaultSimResult(
            engine=self.engine_name,
            circuit_name=self.circuit.name,
            num_faults=len(self.faults),
            num_vectors=applied,
            detected=dict(self.detected),
            potentially_detected=dict(self.potentially_detected),
            counters=self.counters,
            memory=self.memory,
            wall_seconds=elapsed,
            truncated=truncation_reason is not None,
            truncation_reason=truncation_reason,
            responses=(
                self.responses_by_fault() if self.record_responses else None
            ),
        )
        if trace is not None:
            trace.run_end(elapsed)
            result.telemetry = trace.telemetry()
        return result

    def responses_by_fault(self) -> Dict[Fault, Tuple[Failure, ...]]:
        """The recorded responses keyed by fault, in sorted-fault order.

        Every simulated fault gets a key — an empty tuple means the fault
        never produced a binary output mismatch over the applied vectors.
        """
        return {
            fault: tuple(self._responses.get(fault, ())) for fault in self.faults
        }

    # ------------------------------------------------------------------
    # activity filter
    # ------------------------------------------------------------------

    def _is_active(self, fault: StuckAtFault, good_values: List[int]) -> bool:
        """Could this fault's machine differ from the good machine now?

        Yes if it carries faulty flip-flop state, or the stuck line's good
        value is not already the stuck value (an X counts: the machines
        carry different states even if no binary detection can result).
        """
        if self.ff_diffs[fault]:
            return True
        if fault.pin == OUTPUT_PIN:
            return good_values[fault.gate] != fault.value
        source = self.circuit.gates[fault.gate].fanin[fault.pin]
        return good_values[source] != fault.value

    # ------------------------------------------------------------------
    # bit-parallel group simulation
    # ------------------------------------------------------------------

    def _simulate_group(
        self,
        group: List[StuckAtFault],
        good_values: List[int],
        good_outputs: Tuple[int, ...],
    ) -> List[Fault]:
        circuit = self.circuit
        gates = circuit.gates
        width = len(group)
        mask = (1 << width) - 1
        trace = self.tracer

        # Signal words, lazily materialized from the good broadcast.  The
        # encoding and gate algebra live in repro.vector.packing, shared
        # with the pattern-axis kernel (same functions, bit axis
        # reinterpreted as one slot per cycle instead of per fault).
        ones: Dict[int, int] = {}
        xs: Dict[int, int] = {}

        def get_word(index: int) -> Tuple[int, int]:
            word = ones.get(index)
            if word is None:
                return broadcast_word(good_values[index], mask)
            return (word, xs[index])

        def set_word(index: int, one_bits: int, x_bits: int) -> bool:
            """Store a signal word; True when it changed."""
            old = get_word(index)
            if old == (one_bits, x_bits):
                return False
            ones[index] = one_bits
            xs[index] = x_bits
            return True

        # Per-site forcings for this group.
        out_force: Dict[int, List[Tuple[int, int]]] = {}
        in_force: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        queue: List[List[int]] = [[] for _ in range(circuit.num_levels + 1)]
        in_queue: Set[int] = set()
        dirty_ffs: Set[int] = set()

        def schedule(index: int) -> None:
            if index not in in_queue:
                in_queue.add(index)
                queue[gates[index].level].append(index)
                self.counters.gates_scheduled += 1
                if trace is not None:
                    trace.scheduled(index, gates[index].level)

        def emit(index: int) -> None:
            self.counters.events += 1
            if trace is not None:
                trace.event(index)
            for sink in gates[index].fanout:
                if gates[sink].gtype is GateType.DFF:
                    dirty_ffs.add(sink)
                else:
                    schedule(sink)

        for slot, fault in enumerate(group):
            bit = 1 << slot
            # Apply this machine's faulty flip-flop state.
            for ff_index, value in self.ff_diffs[fault].items():
                one_bits, x_bits = get_word(ff_index)
                one_bits &= ~bit
                x_bits &= ~bit
                if value == ONE:
                    one_bits |= bit
                elif value == X:
                    x_bits |= bit
                if set_word(ff_index, one_bits, x_bits):
                    emit(ff_index)
            # Inject the stuck line.
            if fault.pin == OUTPUT_PIN:
                out_force.setdefault(fault.gate, []).append((bit, fault.value))
                one_bits, x_bits = get_word(fault.gate)
                one_bits &= ~bit
                x_bits &= ~bit
                if fault.value == ONE:
                    one_bits |= bit
                if set_word(fault.gate, one_bits, x_bits):
                    emit(fault.gate)
            else:
                in_force.setdefault((fault.gate, fault.pin), []).append(
                    (bit, fault.value)
                )
                if gates[fault.gate].gtype is GateType.DFF:
                    dirty_ffs.add(fault.gate)
                else:
                    schedule(fault.gate)

        def operand(gate_index: int, pin: int, source: int) -> Tuple[int, int]:
            one_bits, x_bits = get_word(source)
            for bit, value in in_force.get((gate_index, pin), ()):
                one_bits &= ~bit
                x_bits &= ~bit
                if value == ONE:
                    one_bits |= bit
            return (one_bits, x_bits)

        def evaluate_word(gate_index: int) -> Tuple[int, int]:
            gate = gates[gate_index]
            operands = [
                operand(gate_index, pin, source)
                for pin, source in enumerate(gate.fanin)
            ]
            one_out, x_out = evaluate_gate_word(gate.gtype, operands, mask)
            for bit, value in out_force.get(gate_index, ()):
                one_out &= ~bit
                x_out &= ~bit
                if value == ONE:
                    one_out |= bit
            return (one_out, x_out)

        # Levelized event-driven settle, all machines in parallel.
        for level in range(1, len(queue)):
            for gate_index in queue[level]:
                in_queue.discard(gate_index)
                self.counters.fault_evaluations += 1
                if trace is not None:
                    trace.fault_evals(gate_index)
                one_out, x_out = evaluate_word(gate_index)
                if set_word(gate_index, one_out, x_out):
                    emit(gate_index)
            queue[level].clear()

        # Detection at touched primary outputs.  Hard detections (known,
        # differing values) and potential detections (known good, unknown
        # faulty) are both judged on the full output vector of the cycle.
        newly: List[Fault] = []
        for po_position, po_index in enumerate(circuit.outputs):
            if po_index not in ones:
                continue
            good_po = good_outputs[po_position]
            if not is_binary(good_po):
                continue
            good_word = mask if good_po == ONE else 0
            unknown = xs[po_index] & mask
            potential = unknown
            while potential:
                slot = (potential & -potential).bit_length() - 1
                potential &= potential - 1
                fault = group[slot]
                if fault not in self.potentially_detected:
                    self.potentially_detected[fault] = self.cycle
                    if trace is not None:
                        trace.detect(self._fault_ids[fault], self.cycle, potential=True)
            mismatch = (ones[po_index] ^ good_word) & mask & ~unknown
            while mismatch:
                slot = (mismatch & -mismatch).bit_length() - 1
                mismatch &= mismatch - 1
                fault = group[slot]
                if self.record_responses:
                    failures = self._responses.get(fault)
                    if failures is None:
                        failures = self._responses[fault] = []
                    failures.append((self.cycle, po_position))
                if fault not in self.detected:
                    self.detected[fault] = self.cycle
                    newly.append(fault)
                    if trace is not None:
                        # PROOFS always drops (detected faults never
                        # regroup) — except in record_responses mode,
                        # where nothing is ever dropped.
                        trace.detect(self._fault_ids[fault], self.cycle)
                        if not self.record_responses:
                            trace.drop(self._fault_ids[fault], self.cycle)

        # Next-state faulty flip-flop diffs from the settled D words.  Only
        # flip-flops whose D cone was touched (or whose D pin is a fault
        # site) can differ from the good next state; everything else keeps
        # the broadcast good value and contributes no diff.
        for slot, fault in enumerate(group):
            bit = 1 << slot
            if fault in self.detected and not self.record_responses:
                self.ff_diffs[fault].clear()
                continue
            new_diffs: Dict[int, int] = {}
            for ff_index in dirty_ffs:
                d_source = gates[ff_index].fanin[0]
                one_bits, x_bits = get_word(d_source)
                for fbit, fvalue in in_force.get((ff_index, 0), ()):
                    if fbit == bit:
                        one_bits = (one_bits & ~fbit) | (fbit if fvalue == ONE else 0)
                        x_bits &= ~fbit
                if one_bits & bit:
                    value = ONE
                elif x_bits & bit:
                    value = X
                else:
                    value = ZERO
                if value != good_values[d_source]:
                    new_diffs[ff_index] = value
            self.ff_diffs[fault] = new_diffs
        return newly
