"""Serial fault simulation — the correctness oracle.

One faulty machine at a time, each a full :class:`LogicSimulator` run over
the whole test sequence (stopping at first detection).  Cost is
``O(faults × vectors × gates)``, hopeless for real work and exactly why the
paper exists, but its simplicity makes it the reference every other engine
is validated against.

Also provides the serial *transition-fault* reference implementing
Section 3's two-pass semantics one fault at a time, used to validate
:class:`repro.concurrent.TransitionFaultSimulator`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import Fault, OUTPUT_PIN, StuckAtFault
from repro.faults.transition import TransitionFault, all_transition_faults, delayed_value
from repro.faults.universe import stuck_at_universe
from repro.logic.values import X, is_binary
from repro.result import Failure, FaultSimResult, MemoryStats, WorkCounters
from repro.sim.logicsim import LogicSimulator


def _binary_mismatch(good: Sequence[int], faulty: Sequence[int]) -> bool:
    return any(
        is_binary(g) and is_binary(f) and g != f for g, f in zip(good, faulty)
    )


def _potential_mismatch(good: Sequence[int], faulty: Sequence[int]) -> bool:
    """Known good value, unknown faulty value: a potential detection."""
    return any(is_binary(g) and f == X for g, f in zip(good, faulty))


def simulate_serial(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Iterable[StuckAtFault]] = None,
    drop_detected: bool = True,
    budget=None,
    tracer=None,
    record_responses: bool = False,
) -> FaultSimResult:
    """Simulate every fault serially; returns the standard result record.

    ``record_responses`` switches the run into dictionary-building mode:
    dropping is disabled (every machine runs the full sequence), every
    binary output mismatch is recorded as a ``(cycle, po_position)``
    failure on ``result.responses``, and ``detected`` keeps *first*
    detection cycles — identical to what a dropping run reports.

    A ``budget`` (:class:`repro.robust.budget.Budget`) bounds the run by
    wall clock only — the serial loop is per *fault*, not per cycle, so the
    budget is checked between faulty machines and the result is flagged
    truncated when the limit hits (remaining faults simply stay
    undetected in the partial result).

    A ``tracer`` (:class:`repro.obs.Tracer`) mirrors the work counters
    through the standard hooks — one ``cycle_start`` per good-machine
    cycle, bulk ``good_evals``/``fault_evals`` per settled network — so a
    recording tracer reconciles exactly with the reported counters, same
    as every concurrent engine.
    """
    fault_list = sorted(faults) if faults is not None else stuck_at_universe(circuit)
    if record_responses:
        drop_detected = False
    clock = budget.start() if budget else None
    trace = tracer
    start = time.perf_counter()
    counters = WorkCounters()
    if trace is not None:
        trace.run_start("serial", circuit.name)

    good = LogicSimulator(circuit)
    good_outputs: List[Tuple[int, ...]] = []
    for cycle, vector in enumerate(vectors, start=1):
        if trace is not None:
            trace.cycle_start(cycle)
        good_outputs.append(good.step(vector))
        counters.good_evaluations += circuit.num_combinational
        if trace is not None:
            trace.good_evals(None, circuit.num_combinational)
            trace.cycle_end(cycle)
    counters.cycles = len(good_outputs)

    detected: Dict[Fault, int] = {}
    potential: Dict[Fault, int] = {}
    responses: Optional[Dict[Fault, Tuple[Failure, ...]]] = (
        {} if record_responses else None
    )
    truncation_reason = None
    for fid, fault in enumerate(fault_list):
        if clock is not None:
            breach = clock.check(0, 0)  # wall clock is the only serial axis
            if breach is not None:
                truncation_reason = breach.describe()
                if trace is not None:
                    trace.budget_breach(breach.kind, breach.limit, breach.actual)
                break
        machine = LogicSimulator(circuit, fault)
        failures: List[Failure] = []
        for cycle, vector in enumerate(vectors, start=1):
            outputs = machine.step(vector)
            counters.fault_evaluations += circuit.num_combinational
            if trace is not None:
                trace.fault_evals(None, circuit.num_combinational)
            good = good_outputs[cycle - 1]
            if (
                fault not in potential
                and fault not in detected
                and _potential_mismatch(good, outputs)
            ):
                potential[fault] = cycle
                if trace is not None:
                    trace.detect(fid, cycle, potential=True)
            if record_responses:
                hits = [
                    (cycle, position)
                    for position, (g, f) in enumerate(zip(good, outputs))
                    if is_binary(g) and is_binary(f) and g != f
                ]
                if hits:
                    failures.extend(hits)
                    # First-detection semantics, matching a dropping run.
                    if fault not in detected:
                        detected[fault] = cycle
                        if trace is not None:
                            trace.detect(fid, cycle)
            elif _binary_mismatch(good, outputs):
                detected[fault] = cycle
                if trace is not None:
                    trace.detect(fid, cycle)
                if drop_detected:
                    if trace is not None:
                        trace.drop(fid, cycle)
                    break
        if responses is not None:
            responses[fault] = tuple(failures)

    result = FaultSimResult(
        engine="serial",
        circuit_name=circuit.name,
        num_faults=len(fault_list),
        num_vectors=len(vectors),
        detected=detected,
        potentially_detected=potential,
        counters=counters,
        # Serial simulation stores whole machines, not fault elements; the
        # descriptor count keeps the memory model comparable across engines.
        memory=MemoryStats(num_descriptors=len(fault_list)),
        wall_seconds=time.perf_counter() - start,
        truncated=truncation_reason is not None,
        truncation_reason=truncation_reason,
        responses=responses,
    )
    if trace is not None:
        trace.run_end(result.wall_seconds)
        result.telemetry = trace.telemetry()
    return result


class _SerialTransitionMachine:
    """One faulty machine under the two-pass transition semantics."""

    def __init__(self, circuit: Circuit, fault: TransitionFault) -> None:
        self.circuit = circuit
        self.fault = fault
        self.values: List[int] = [X] * len(circuit.gates)
        self.prev_site_value = X

    def _site_source(self) -> int:
        if self.fault.pin == OUTPUT_PIN:
            return self.fault.gate
        return self.circuit.gates[self.fault.gate].fanin[self.fault.pin]

    def _settle(self, vector: Sequence[int], firing: bool) -> None:
        circuit = self.circuit
        fault = self.fault
        for pi_index, value in zip(circuit.inputs, vector):
            self.values[pi_index] = value
        if not firing and fault.pin == OUTPUT_PIN:
            site_gate = circuit.gates[fault.gate]
            if site_gate.gtype.name in ("INPUT", "DFF"):
                self.values[fault.gate] = delayed_value(
                    self.prev_site_value, self.values[fault.gate], fault.kind
                )
        for gate_index in circuit.order:
            gate = circuit.gates[gate_index]
            inputs = [self.values[source] for source in gate.fanin]
            if not firing and fault.gate == gate_index and fault.pin != OUTPUT_PIN:
                inputs[fault.pin] = delayed_value(
                    self.prev_site_value, inputs[fault.pin], fault.kind
                )
            value = evaluate_gate(gate, inputs)
            if not firing and fault.gate == gate_index and fault.pin == OUTPUT_PIN:
                value = delayed_value(self.prev_site_value, value, fault.kind)
            self.values[gate_index] = value

    def step(self, vector: Sequence[int]) -> Tuple[int, ...]:
        """One cycle: sampling pass, PO sample + master latch, firing pass,
        slave commit; returns sampled PO values."""
        circuit = self.circuit
        fault = self.fault
        # Pass 1: transitions held; sample.
        self._settle(vector, firing=False)
        outputs = tuple(self.values[index] for index in circuit.outputs)
        pending: List[Tuple[int, int]] = []
        for ff_index in circuit.dffs:
            d_value = self.values[circuit.gates[ff_index].fanin[0]]
            if fault.gate == ff_index and fault.pin == 0:
                d_value = delayed_value(self.prev_site_value, d_value, fault.kind)
            pending.append((ff_index, d_value))
        # Pass 2: transitions fired; the network completes its cycle.
        self._settle(vector, firing=True)
        self.prev_site_value = self.values[self._site_source()]
        for ff_index, value in pending:
            self.values[ff_index] = value
        return outputs


def simulate_serial_transition(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    faults: Optional[Iterable[TransitionFault]] = None,
    drop_detected: bool = True,
) -> FaultSimResult:
    """Serial reference for the transition-fault model (Section 3)."""
    fault_list = (
        sorted(faults) if faults is not None else all_transition_faults(circuit)
    )
    start = time.perf_counter()
    counters = WorkCounters()

    good = LogicSimulator(circuit)
    good_outputs: List[Tuple[int, ...]] = []
    for vector in vectors:
        good_outputs.append(good.step(vector))
        counters.good_evaluations += circuit.num_combinational
    counters.cycles = len(good_outputs)

    detected: Dict[Fault, int] = {}
    potential: Dict[Fault, int] = {}
    for fault in fault_list:
        machine = _SerialTransitionMachine(circuit, fault)
        for cycle, vector in enumerate(vectors, start=1):
            outputs = machine.step(vector)
            counters.fault_evaluations += 2 * circuit.num_combinational
            good = good_outputs[cycle - 1]
            if (
                fault not in potential
                and fault not in detected
                and _potential_mismatch(good, outputs)
            ):
                potential[fault] = cycle
            if _binary_mismatch(good, outputs):
                detected[fault] = cycle
                if drop_detected:
                    break

    return FaultSimResult(
        engine="serial-transition",
        circuit_name=circuit.name,
        num_faults=len(fault_list),
        num_vectors=len(vectors),
        detected=detected,
        potentially_detected=potential,
        counters=counters,
        memory=MemoryStats(num_descriptors=len(fault_list)),
        wall_seconds=time.perf_counter() - start,
    )
