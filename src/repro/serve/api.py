"""The stdlib-only REST API in front of :class:`FaultSimService`.

Endpoints (all JSON):

========  ======================  =============================================
method    path                    behaviour
========  ======================  =============================================
POST      ``/jobs``               submit a job spec; ``201`` created, ``200``
                                  when an idempotency key matched, ``400`` bad
                                  spec, ``429`` + ``Retry-After`` queue full,
                                  ``503`` + ``Retry-After`` while draining
GET       ``/jobs``               list job summaries
GET       ``/jobs/<id>``          job status
GET       ``/jobs/<id>/result``   canonical result document; ``409`` until the
                                  job reaches ``done``
POST      ``/jobs/<id>/cancel``   cancel a *queued* job; ``409`` otherwise,
                                  ``410`` if the record vanished mid-cancel
POST      ``/jobs/<id>/retry``    resurrect a ``dead`` or ``failed`` job with
                                  a fresh attempt budget; ``409`` otherwise
POST      ``/diagnose``           rank observed failures against a fault
                                  dictionary; ``200`` with the canonical
                                  rankings on a warm dictionary cache,
                                  ``202`` + ``Retry-After`` with the build
                                  job's id on a miss, ``400`` bad query
GET       ``/healthz``            liveness + worker/queue/reaper gauges +
                                  uptime; ``status`` flips to ``draining``
                                  after SIGTERM
GET       ``/metrics``            :meth:`ServiceMetrics.snapshot` document;
                                  with ``Accept: text/plain`` the same metrics
                                  in Prometheus text exposition format
========  ======================  =============================================

The server is a :class:`http.server.ThreadingHTTPServer`, so requests are
served while workers simulate; everything heavier than a dictionary lookup
happens in the service layer.
"""

from __future__ import annotations

import json
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.serve.queue import QueueFull
from repro.serve.service import FaultSimService, ServiceDraining
from repro.serve.spec import SpecError

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)$")
_RESULT_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/result$")
_CANCEL_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/cancel$")
_RETRY_PATH = re.compile(r"^/jobs/([A-Za-z0-9_.-]+)/retry$")


class ServeHTTPServer(ThreadingHTTPServer):
    """An HTTP server bound to one :class:`FaultSimService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: FaultSimService) -> None:
        super().__init__(address, ServeHandler)
        self.service = service


class ServeHandler(BaseHTTPRequestHandler):
    server: ServeHTTPServer

    protocol_version = "HTTP/1.1"
    #: Set True (e.g. by the CLI's --verbose) to log requests to stderr.
    verbose = False

    @property
    def service(self) -> FaultSimService:
        return self.server.service

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        if self.verbose:
            super().log_message(format, *args)

    def _send(
        self,
        status: int,
        document: object,
        raw: Optional[bytes] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        body = raw if raw is not None else (json.dumps(document).encode() + b"\n")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, retry_after: Optional[int] = None) -> None:
        self._send(status, {"error": message}, retry_after=retry_after)

    def _read_json(self) -> object:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise SpecError("request body must be a JSON object")
        try:
            return json.loads(self.rfile.read(length))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"bad JSON body: {exc}") from None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler naming)
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send(200, self.service.health())
            return
        if path == "/metrics":
            self._metrics()
            return
        if path == "/jobs":
            self._send(
                200,
                {
                    "jobs": [
                        record.public_dict()
                        for record in self.service.store.all_records()
                    ]
                },
            )
            return
        match = _RESULT_PATH.match(path)
        if match:
            self._get_result(match.group(1))
            return
        match = _JOB_PATH.match(path)
        if match:
            record = self.service.status(match.group(1))
            if record is None:
                self._error(404, f"no job {match.group(1)!r}")
            else:
                self._send(200, record.public_dict())
            return
        self._error(404, f"no route {path!r}")

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0]
        if path == "/jobs":
            self._submit()
            return
        if path == "/diagnose":
            self._diagnose()
            return
        match = _CANCEL_PATH.match(path)
        if match:
            self._cancel(match.group(1))
            return
        match = _RETRY_PATH.match(path)
        if match:
            self._retry(match.group(1))
            return
        self._error(404, f"no route {path!r}")

    # -- handlers -------------------------------------------------------

    def _metrics(self) -> None:
        """``/metrics``: JSON by default, Prometheus when asked for text.

        Content negotiation keys on ``text/plain`` anywhere in ``Accept``
        (what Prometheus scrapers send); the JSON document stays the
        default and the source of truth — the exposition re-renders it.
        """
        snapshot = self.service.metrics_snapshot()
        accept = self.headers.get("Accept", "")
        if "text/plain" in accept:
            from repro.obs import render_prometheus

            body = render_prometheus(snapshot).encode()
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._send(200, snapshot)

    def _submit(self) -> None:
        api_started = time.time()
        try:
            payload = self._read_json()
            if not isinstance(payload, dict):
                raise SpecError("job payload must be a JSON object")
            record, created = self.service.submit(payload)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        except QueueFull as exc:
            self._error(429, str(exc), retry_after=1)
            return
        except ServiceDraining as exc:
            self._error(503, str(exc), retry_after=5)
            return
        self._emit_api_span(record, api_started)
        self._send(201 if created else 200, record.public_dict())

    def _emit_api_span(self, record: object, started: float) -> None:
        """Span for the API-side handling of one accepted submission."""
        spans = self.service.spans
        trace_id = getattr(record, "trace_id", None)
        if spans is None or trace_id is None:
            return
        from repro.obs import TraceContext

        spans.emit(
            "api POST /jobs",
            TraceContext.root_of(trace_id).child(),
            started,
            time.time(),
            job=getattr(record, "job_id", None),
        )

    def _diagnose(self) -> None:
        """``POST /diagnose``: rankings on a warm cache, 202 on a miss.

        The 200 body is :func:`repro.diagnosis.store.diagnosis_report`'s
        canonical bytes — byte-identical to ``repro diagnose`` for the
        same query.  A miss lazily enqueues the dictionary build through
        the ordinary job queue, so backpressure (429) and draining (503)
        apply exactly as they do to ``POST /jobs``.
        """
        try:
            payload = self._read_json()
            if not isinstance(payload, dict):
                raise SpecError("diagnose payload must be a JSON object")
            status, document, raw = self.service.diagnose(payload)
        except SpecError as exc:
            self._error(400, str(exc))
            return
        except QueueFull as exc:
            self._error(429, str(exc), retry_after=1)
            return
        except ServiceDraining as exc:
            self._error(503, str(exc), retry_after=5)
            return
        self._send(
            status,
            document,
            raw=raw,
            retry_after=(1 if status == 202 else None),
        )

    def _get_result(self, job_id: str) -> None:
        record = self.service.status(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        if record.state != "done":
            self._error(
                409, f"job {job_id!r} is {record.state}, not done", retry_after=1
            )
            return
        blob = self.service.result_bytes(job_id)
        if blob is None:  # done but blob missing would be a service bug
            self._error(500, f"result for {job_id!r} is missing")
            return
        self._send(200, None, raw=blob)

    def _cancel(self, job_id: str) -> None:
        record = self.service.status(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        if self.service.cancel(job_id):
            # The record can vanish between cancel and re-read (a racing
            # submit rollback deletes refused records): answer 410, not a
            # 500 from a tripped assertion.
            refreshed = self.service.status(job_id)
            if refreshed is None:
                self._error(410, f"job {job_id!r} was cancelled and removed")
                return
            self._send(200, refreshed.public_dict())
        else:
            self._error(409, f"job {job_id!r} is {record.state}; cannot cancel")

    def _retry(self, job_id: str) -> None:
        record = self.service.status(job_id)
        if record is None:
            self._error(404, f"no job {job_id!r}")
            return
        if not self.service.retry_job(job_id):
            self._error(
                409,
                f"job {job_id!r} is {record.state}; only dead or failed "
                "jobs can be retried",
            )
            return
        refreshed = self.service.status(job_id)
        if refreshed is None:
            self._error(410, f"job {job_id!r} vanished during retry")
            return
        self._send(200, refreshed.public_dict())


def make_server(
    service: FaultSimService, host: str = "127.0.0.1", port: int = 0
) -> ServeHTTPServer:
    """A bound (not yet serving) HTTP server; ``port=0`` picks a free port."""
    return ServeHTTPServer((host, port), service)
