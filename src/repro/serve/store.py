"""The persistent job store: one atomically written JSON file per job.

A :class:`JobRecord` is the durable state machine of one submission
(``queued -> running -> done | failed``, with ``cancelled`` reachable from
``queued``).  Every transition is flushed to
``<state_dir>/jobs/<job_id>.json`` via the same temp-file + ``os.replace``
pattern the checkpoint layer uses, so a killed service process leaves
every record either in its previous state or its next one — never torn.
Result payloads are *not* stored inline: a record carries its
``cache_key`` and the result bytes live in per-job files under
``<state_dir>/results/`` (and in the content-addressed cache), keeping
records small enough to rewrite on every transition.

On restart, :meth:`JobStore.load_all` rebuilds the in-memory index;
records found ``running`` belonged to a killed worker and are the ones
:meth:`repro.serve.service.FaultSimService.recover` re-queues for a
checkpoint resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: The legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


@dataclass
class JobRecord:
    """The durable state of one submitted job."""

    job_id: str
    spec: dict
    state: str = "queued"
    priority: int = 0
    idempotency_key: Optional[str] = None
    cache_key: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Execution attempts so far; > 1 means the job was recovered at least
    #: once after a worker death.
    attempts: int = 0
    #: True when the result came from the cache without simulating.
    cache_hit: bool = False
    #: Size of the batch this job executed in (0 until it runs).
    batch_size: int = 0
    #: Cycle the last attempt resumed from (0 for a fresh start).
    resumed_from_cycle: int = 0
    error: Optional[str] = None
    #: Human-readable one-liner of the finished result.
    summary: Optional[str] = None
    #: Span-trace id of this job (set when the service traces; the trace's
    #: root span id equals it, so workers rebuild the root context from
    #: the bare id — see :mod:`repro.obs.span`).
    trace_id: Optional[str] = None

    def public_dict(self) -> dict:
        """The JSON shape the API returns for status queries."""
        return asdict(self)


class JobStore:
    """Thread-safe persistent registry of every job the service has seen."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.jobs_dir = os.path.join(directory, "jobs")
        self.results_dir = os.path.join(directory, "results")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._sequence = 0
        self.load_all()

    # -- persistence ----------------------------------------------------

    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.json")

    def load_all(self) -> None:
        """(Re)build the index from disk; called once at construction."""
        with self._lock:
            self._records.clear()
            for name in sorted(os.listdir(self.jobs_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.jobs_dir, name)
                try:
                    with open(path) as handle:
                        record = JobRecord(**json.load(handle))
                except (OSError, TypeError, ValueError):
                    continue  # torn or foreign file; never happens for our writes
                self._records[record.job_id] = record
                sequence = _sequence_of(record.job_id)
                if sequence is not None and sequence > self._sequence:
                    self._sequence = sequence

    def save(self, record: JobRecord) -> None:
        """Atomically flush *record* and update the index."""
        blob = json.dumps(asdict(record), sort_keys=True).encode()
        fd, tmp_path = tempfile.mkstemp(dir=self.jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._record_path(record.job_id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self._records[record.job_id] = record

    # -- queries --------------------------------------------------------

    def new_job_id(self) -> str:
        with self._lock:
            self._sequence += 1
            return f"job-{self._sequence:06d}"

    def delete(self, job_id: str) -> None:
        """Remove a record (submit rollback after a refused enqueue)."""
        with self._lock:
            self._records.pop(job_id, None)
        try:
            os.unlink(self._record_path(job_id))
        except OSError:
            pass

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def all_records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.job_id)

    def by_idempotency_key(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            for record in self._records.values():
                if record.idempotency_key == key:
                    return record
        return None

    def counts(self) -> Dict[str, int]:
        """state -> number of jobs currently in it."""
        totals = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                totals[record.state] = totals.get(record.state, 0) + 1
        return totals

    # -- result blobs ---------------------------------------------------

    def write_result(self, job_id: str, blob: bytes) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.results_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.result_path(job_id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def read_result(self, job_id: str) -> Optional[bytes]:
        try:
            with open(self.result_path(job_id), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None


def _sequence_of(job_id: str) -> Optional[int]:
    prefix, _, tail = job_id.partition("-")
    if prefix == "job" and tail.isdigit():
        return int(tail)
    return None
