"""The persistent job store: one atomically written JSON file per job.

A :class:`JobRecord` is the durable state machine of one submission
(``queued -> running -> done | failed``, with ``cancelled`` reachable from
``queued``, ``queued`` reachable again from ``running`` on a transient
failure or an expired lease, and ``dead`` — the dead-letter state — once
the retry budget is exhausted).  Every transition is flushed to
``<state_dir>/jobs/<job_id>.json`` via the same temp-file + ``os.replace``
pattern the checkpoint layer uses, so a killed service process leaves
every record either in its previous state or its next one — never torn.
Result payloads are *not* stored inline: a record carries its
``cache_key`` and the result bytes live in per-job files under
``<state_dir>/results/`` (and in the content-addressed cache), keeping
records small enough to rewrite on every transition.

On restart, :meth:`JobStore.load_all` rebuilds the in-memory index;
records found ``running`` belonged to a killed worker and are the ones
:meth:`repro.serve.service.FaultSimService.recover` re-queues for a
checkpoint resume.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

#: The legal job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "dead")

#: States a job never leaves on its own.  ``dead`` and ``failed`` can be
#: resurrected explicitly (``POST /jobs/<id>/retry``, ``--requeue-dead``)
#: but no automatic path ever takes a job out of them.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled", "dead"})

#: Longest error message retained on a record; the tail is elided so a
#: retry storm cannot bloat the per-job JSON rewritten on every transition.
ERROR_MAX_CHARS = 512

#: Per-attempt error-history entries retained (oldest dropped first;
#: ``error_history_dropped`` counts the elided ones).
ERROR_HISTORY_LIMIT = 8


def clip_error(message: str) -> str:
    """*message* bounded to :data:`ERROR_MAX_CHARS` with an elision mark."""
    if len(message) <= ERROR_MAX_CHARS:
        return message
    suffix = f"... [{len(message)} chars]"
    return message[: ERROR_MAX_CHARS - len(suffix)] + suffix


@dataclass
class JobRecord:
    """The durable state of one submitted job."""

    job_id: str
    spec: dict
    state: str = "queued"
    priority: int = 0
    idempotency_key: Optional[str] = None
    cache_key: Optional[str] = None
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Execution attempts so far; > 1 means the job was recovered at least
    #: once after a worker death.
    attempts: int = 0
    #: True when the result came from the cache without simulating.
    cache_hit: bool = False
    #: Size of the batch this job executed in (0 until it runs).
    batch_size: int = 0
    #: Cycle the last attempt resumed from (0 for a fresh start).
    resumed_from_cycle: int = 0
    #: Lease: who claimed this job and until when the claim holds.  A
    #: ``running`` (or batch-claimed ``queued``) job whose lease expires
    #: belongs to a dead or hung worker and is re-queued by the reaper.
    lease_owner: Optional[str] = None
    lease_expires_at: Optional[float] = None
    #: Earliest wall-clock time the next retry attempt may start
    #: (exponential backoff; ``None`` = eligible immediately).
    next_retry_at: Optional[float] = None
    #: Absolute wall-clock deadline; execution beyond it produces the
    #: truncated-result contract instead of running on.
    deadline_at: Optional[float] = None
    #: Most recent error, clipped to :data:`ERROR_MAX_CHARS`.
    error: Optional[str] = None
    #: Per-attempt error history (bounded; see :meth:`note_error`).
    error_history: List[dict] = field(default_factory=list)
    #: History entries elided by the :data:`ERROR_HISTORY_LIMIT` bound.
    error_history_dropped: int = 0
    #: Human-readable one-liner of the finished result.
    summary: Optional[str] = None
    #: Span-trace id of this job (set when the service traces; the trace's
    #: root span id equals it, so workers rebuild the root context from
    #: the bare id — see :mod:`repro.obs.span`).
    trace_id: Optional[str] = None

    def public_dict(self) -> dict:
        """The JSON shape the API returns for status queries."""
        return asdict(self)

    def note_error(self, message: str, kind: str) -> None:
        """Record one failed attempt (*kind*: transient/permanent/lease).

        ``error`` holds the clipped latest message; ``error_history``
        keeps one bounded entry per attempt so a dead-lettered job
        carries how it died every time, without letting a retry storm
        grow the record without bound.
        """
        clipped = clip_error(message)
        self.error = clipped
        self.error_history.append(
            {
                "attempt": self.attempts,
                "at": time.time(),
                "kind": kind,
                "error": clipped,
            }
        )
        overflow = len(self.error_history) - ERROR_HISTORY_LIMIT
        if overflow > 0:
            del self.error_history[:overflow]
            self.error_history_dropped += overflow

    def lease_is_expired(self, now: float) -> bool:
        """Whether this record holds a lease that has lapsed."""
        return self.lease_expires_at is not None and self.lease_expires_at < now

    def clear_lease(self) -> None:
        self.lease_owner = None
        self.lease_expires_at = None


class JobStore:
    """Thread-safe persistent registry of every job the service has seen."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.jobs_dir = os.path.join(directory, "jobs")
        self.results_dir = os.path.join(directory, "results")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._records: Dict[str, JobRecord] = {}
        self._sequence = 0
        self.load_all()

    # -- persistence ----------------------------------------------------

    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.json")

    def load_all(self) -> None:
        """(Re)build the index from disk; called once at construction."""
        with self._lock:
            self._records.clear()
            for name in sorted(os.listdir(self.jobs_dir)):
                if not name.endswith(".json"):
                    continue
                path = os.path.join(self.jobs_dir, name)
                try:
                    with open(path) as handle:
                        record = JobRecord(**json.load(handle))
                except (OSError, TypeError, ValueError):
                    continue  # torn or foreign file; never happens for our writes
                self._records[record.job_id] = record
                sequence = _sequence_of(record.job_id)
                if sequence is not None and sequence > self._sequence:
                    self._sequence = sequence

    def save(self, record: JobRecord) -> None:
        """Atomically flush *record* and update the index."""
        blob = json.dumps(asdict(record), sort_keys=True).encode()
        fd, tmp_path = tempfile.mkstemp(dir=self.jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._record_path(record.job_id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        with self._lock:
            self._records[record.job_id] = record

    # -- queries --------------------------------------------------------

    def new_job_id(self) -> str:
        with self._lock:
            self._sequence += 1
            return f"job-{self._sequence:06d}"

    def delete(self, job_id: str) -> None:
        """Remove a record (submit rollback after a refused enqueue)."""
        with self._lock:
            self._records.pop(job_id, None)
        try:
            os.unlink(self._record_path(job_id))
        except OSError:
            pass

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def all_records(self) -> List[JobRecord]:
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.job_id)

    def by_idempotency_key(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            for record in self._records.values():
                if record.idempotency_key == key:
                    return record
        return None

    def counts(self) -> Dict[str, int]:
        """state -> number of jobs currently in it."""
        totals = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                totals[record.state] = totals.get(record.state, 0) + 1
        return totals

    # -- result blobs ---------------------------------------------------

    def write_result(self, job_id: str, blob: bytes) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.results_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.result_path(job_id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def read_result(self, job_id: str) -> Optional[bytes]:
        try:
            with open(self.result_path(job_id), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None


def _sequence_of(job_id: str) -> Optional[int]:
    prefix, _, tail = job_id.partition("-")
    if prefix == "job" and tail.isdigit():
        return int(tail)
    return None
