"""The fault-simulation service: queue, batcher, cache, workers, recovery.

:class:`FaultSimService` ties the serving subsystem together around the
existing engines:

* **Submit** (:meth:`FaultSimService.submit`) validates the spec, honours
  idempotency keys, and short-circuits through the content-addressed
  result cache — a duplicate of a finished job is marked ``done`` at
  submit time without ever entering the queue.  A full queue raises
  :class:`repro.serve.queue.QueueFull` (HTTP 429).
* **Execute** — workers claim the queue head, coalesce queue-mates
  sharing a (circuit, engine) group key into one batch
  (:mod:`repro.serve.batch`), and run each job through the existing
  runners: :func:`repro.robust.runner.run_checkpointed` for single-process
  jobs (periodic durable checkpoints), :func:`repro.parallel.runner.run_parallel`
  when the job asks for ``jobs > 1`` fault sharding.  Budgets
  (:class:`repro.robust.budget.Budget`) compose from the job's
  ``max_cycles`` and the service-wide wall-clock cap.
* **Recover** (:meth:`FaultSimService.recover`) re-queues every job a
  killed worker left ``running``; the next attempt resumes from the job's
  checkpoint instead of recomputing, and the resumed result is
  bit-identical to an uninterrupted run (the checkpoint layer's
  contract).
* **Leases + the reaper** — claiming a batch writes a lease (owner id +
  expiry) onto every :class:`JobRecord` in it; the executing worker
  renews the batch's leases from the engine's per-cycle tracer hook, and
  shard *processes* heartbeat implicitly through their periodic
  checkpoint writes (:func:`repro.robust.checkpoint.latest_checkpoint_mtime`).
  A reaper thread (:meth:`FaultSimService.reap`) re-queues expired-lease
  jobs through the same path :meth:`recover` uses — a worker that dies
  or hangs mid-job no longer strands the job until a restart.
* **Retry with classified backoff** — transient failures (I/O, torn
  checkpoints, chaos-injected faults) re-queue with exponential backoff
  + jitter up to a per-job attempt cap, then dead-letter into the
  terminal ``dead`` state carrying the full bounded error history;
  permanent failures (bad netlists, spec validation) fail fast on
  attempt 1.  ``POST /jobs/<id>/retry`` and ``repro serve
  --requeue-dead`` resurrect dead-lettered jobs.
* **Deadlines + drain** — per-job deadline budgets compose with the
  service-wide wall cap through :meth:`repro.robust.budget.Budget.tightened`
  and produce the truncated-result contract instead of a hang; a
  SIGTERM-initiated graceful drain (:meth:`FaultSimService.begin_drain`)
  stops claiming, finishes or checkpoints in-flight batches, and answers
  submits with :class:`ServiceDraining` (HTTP 503 + Retry-After) while
  ``/healthz`` reports ``draining``.

Results returned through the service are serialized canonically
(:func:`repro.serve.cache.serialize_result`): the outcome — detections and
their cycles — is exactly what a direct ``repro simulate`` run of the same
inputs produces, whatever worker, batch or shard count served it.
"""

from __future__ import annotations

import glob
import json
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.circuit.netlist import NetlistError
from repro.obs.span import SpanWriter, TraceContext
from repro.obs.tracer import Tracer
from repro.result import FaultSimResult, WorkCounters
from repro.robust.budget import Budget
from repro.robust.checkpoint import (
    CheckpointError,
    latest_checkpoint_mtime,
    read_checkpoint,
)
from repro.serve.batch import Batcher
from repro.serve.cache import ResultCache, cache_key, serialize_result
from repro.serve.metrics import ServiceMetrics, service_version
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.spec import JobSpec, ResolvedJob, SpecError, SpecResolver
from repro.serve.store import TERMINAL_STATES, JobRecord, JobStore

__all__ = [
    "ServeConfig",
    "FaultSimService",
    "QueueFull",
    "SpecError",
    "ServiceDraining",
    "classify_failure",
]


class ServiceDraining(RuntimeError):
    """The service is draining; the submission was refused (HTTP 503)."""

    def __init__(self) -> None:
        super().__init__("service is draining; retry against another instance")


def classify_failure(exc: BaseException) -> str:
    """``"transient"`` (worth retrying) or ``"permanent"`` (fail fast).

    Permanent failures are deterministic properties of the job itself —
    a malformed spec or netlist reproduces identically on every attempt,
    so retrying only burns compute.  Transient failures come from the
    environment: I/O errors, torn checkpoints, and the chaos suite's
    injected faults all stand a real chance of succeeding on a retry
    (usually resumed from the last checkpoint).  Unknown exceptions are
    treated as permanent: a retry loop hiding a real bug is worse than a
    fast, visible failure.
    """
    if isinstance(exc, (SpecError, NetlistError)):
        return "permanent"
    if isinstance(exc, (OSError, CheckpointError)):
        return "transient"
    from repro.diagnosis.dictionary import DictionaryBuildTruncated

    if isinstance(exc, DictionaryBuildTruncated):
        # The build's per-shard checkpoints are on disk; the retry resumes
        # from them and stands a real chance of finishing inside the
        # budget.  A deterministic max_cycles truncation dead-letters
        # after the attempt budget instead of spinning forever.
        return "transient"
    try:
        from repro.robust.chaos import ChaosError
    except ImportError:  # pragma: no cover - chaos ships with the package
        return "permanent"
    return "transient" if isinstance(exc, ChaosError) else "permanent"


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance."""

    state_dir: str
    queue_limit: int = 256
    workers: int = 1
    max_batch: int = 8
    checkpoint_every: int = 16
    #: Service-wide wall-clock cap per job (None = unlimited).  Results
    #: truncated by this nondeterministic limit are never cached.
    max_seconds_per_job: Optional[float] = None
    cache_results: bool = True
    resolver_capacity: int = 4
    #: Span-trace directory (None = tracing off).  Every job gets its own
    #: trace id; API threads, workers and shard processes append span
    #: files there (render with ``repro inspect``).
    trace_dir: Optional[str] = None
    #: How long a claimed job may go without a heartbeat before the
    #: reaper presumes its worker dead and re-queues the job.
    lease_ttl: float = 30.0
    #: Wall-clock period between lease renewals from the executing
    #: worker's per-cycle hook (None = ``lease_ttl / 3``).
    heartbeat_every: Optional[float] = None
    #: Period between reaper sweeps (None = ``max(lease_ttl / 4, 0.05)``).
    reaper_interval: Optional[float] = None
    #: Execution attempts per job before dead-lettering (a job spec's
    #: ``max_attempts`` overrides per job).
    max_attempts: int = 3
    #: Retry backoff: ``base * 2^(attempt-1)`` seconds, capped, plus
    #: uniform jitter in ``[0, retry_jitter)`` to spread thundering herds.
    retry_backoff_base: float = 0.25
    retry_backoff_cap: float = 30.0
    retry_jitter: float = 0.1
    #: Minimum age before the reaper re-queues a ``queued`` record absent
    #: from the queue: guards the submit path's save-then-push window
    #: against a double enqueue.
    requeue_grace: float = 1.0

    def effective_heartbeat_every(self) -> float:
        return (
            self.heartbeat_every
            if self.heartbeat_every is not None
            else self.lease_ttl / 3.0
        )

    def effective_reaper_interval(self) -> float:
        return (
            self.reaper_interval
            if self.reaper_interval is not None
            else max(self.lease_ttl / 4.0, 0.05)
        )


class _LeaseHeartbeat(Tracer):
    """Renews a batch's leases from the engine's per-cycle tracer hook.

    Engines fire hooks whenever a tracer object is present (``enabled``
    only gates expensive hook-argument construction), so overriding just
    ``cycle_end`` with ``enabled = False`` buys a per-cycle callback at
    near-zero instrumentation cost.  ``telemetry()`` stays the base
    ``None``, so heartbeating never attaches telemetry to the result and
    the serialized outcome remains bit-identical to an untracered run.
    """

    enabled = False

    def __init__(self, renew: Callable[[], None], every: float) -> None:
        self._renew = renew
        self._every = every
        self._last = time.monotonic()

    def cycle_end(self, cycle: int, **stats: object) -> None:
        now = time.monotonic()
        if now - self._last >= self._every:
            self._last = now
            try:
                self._renew()
            except Exception:  # noqa: BLE001 - liveness must not kill the run
                pass


class FaultSimService:
    """One serving instance over a durable state directory."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.store = JobStore(config.state_dir)
        self.queue = JobQueue(config.queue_limit)
        self.cache = ResultCache(os.path.join(config.state_dir, "cache"))
        self.checkpoints_dir = os.path.join(config.state_dir, "checkpoints")
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self.batcher = Batcher(self.store, config.max_batch)
        self.resolver = SpecResolver(config.resolver_capacity)
        self.metrics = ServiceMetrics()
        self.spans: Optional[SpanWriter] = (
            SpanWriter(config.trace_dir, label="serve")
            if config.trace_dir is not None
            else None
        )
        self._workers: List[threading.Thread] = []
        self._stop = threading.Event()
        self._draining = threading.Event()
        #: Serializes claim / renew / reap / finish transitions so the
        #: reaper and the workers never race a job's lease state.
        self._reap_lock = threading.Lock()
        self._reaper: Optional[threading.Thread] = None

    # -- submission -----------------------------------------------------

    def submit(self, payload: dict) -> Tuple[JobRecord, bool]:
        """Accept one job; returns ``(record, created)``.

        ``created`` is False when an idempotency key matched an existing
        job, which is returned unchanged.  Raises :class:`SpecError` for
        malformed payloads, :class:`QueueFull` under backpressure, and
        :class:`ServiceDraining` once :meth:`begin_drain` has run.
        """
        if self._draining.is_set():
            raise ServiceDraining()
        spec = JobSpec.from_payload(payload)
        if spec.idempotency_key is not None:
            existing = self.store.by_idempotency_key(spec.idempotency_key)
            if existing is not None:
                return existing, False
        record = JobRecord(
            job_id=self.store.new_job_id(),
            spec=spec.to_payload(),
            priority=spec.priority,
            idempotency_key=spec.idempotency_key,
        )
        if spec.deadline_seconds is not None:
            record.deadline_at = record.created_at + spec.deadline_seconds
        if self.spans is not None:
            record.trace_id = TraceContext.new_trace().trace_id
        if self.config.cache_results and self._serve_from_cache(record, spec):
            self.metrics.submitted()
            return record, True
        # The record must be durable before its id is visible to workers;
        # a refused submission is rolled back so backpressure leaves no trace.
        self.store.save(record)
        try:
            self.queue.push(record.job_id, record.priority)
        except QueueFull:
            self.store.delete(record.job_id)
            self.metrics.rejected()
            raise
        self.metrics.submitted()
        return record, True

    def _serve_from_cache(self, record: JobRecord, spec: JobSpec) -> bool:
        """Finish *record* from the cache at submit time when possible."""
        started = time.perf_counter()
        resolved = self.resolver.resolve(spec)
        key = cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)
        record.cache_key = key
        blob = self.cache.get(key)
        self.metrics.phase("setup", time.perf_counter() - started)
        if blob is None:
            return False
        self.store.write_result(record.job_id, blob)
        record.state = "done"
        record.cache_hit = True
        record.finished_at = time.time()
        record.summary = _summary_from_blob(blob, cached=True)
        self.store.save(record)
        self.metrics.cache_hit()
        self.metrics.completed(simulated=False, counters=None)
        self._emit_job_span(record)
        return True

    # -- queries --------------------------------------------------------

    def status(self, job_id: str) -> Optional[JobRecord]:
        return self.store.get(job_id)

    def result_bytes(self, job_id: str) -> Optional[bytes]:
        return self.store.read_result(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running or finished jobs are immutable."""
        record = self.store.get(job_id)
        if record is None or record.state != "queued":
            return False
        if not self.queue.cancel(job_id):
            return False
        record.state = "cancelled"
        record.finished_at = time.time()
        self.store.save(record)
        self.metrics.cancelled()
        return True

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(
            self.queue.depth(),
            self.queue.capacity,
            leases=self._lease_stats(),
            draining=self.draining,
        )

    def health(self) -> dict:
        depth = self.queue.depth()
        capacity = self.queue.capacity
        return {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "version": service_version(),
            "started_at": self.metrics.started_at,
            "uptime_seconds": time.time() - self.metrics.started_at,
            "workers_alive": sum(1 for w in self._workers if w.is_alive()),
            "workers_configured": self.config.workers,
            "queue_depth": depth,
            "queue_capacity": capacity,
            "queue_saturation": depth / capacity if capacity else 0.0,
            "reaper_last_run": self.metrics.reaper_last_run,
            "jobs": self.store.counts(),
        }

    def _lease_stats(self) -> dict:
        """Active lease count and the age of the stalest one.

        Age is measured since the last grant or renewal (``expires_at -
        ttl``), so a rising ``oldest_age_seconds`` means some worker has
        stopped heartbeating and the reaper is about to act.
        """
        now = time.time()
        active = 0
        oldest = 0.0
        for record in self.store.all_records():
            if record.lease_owner is None or record.state in TERMINAL_STATES:
                continue
            active += 1
            if record.lease_expires_at is not None:
                granted = record.lease_expires_at - self.config.lease_ttl
                oldest = max(oldest, now - granted)
        return {"active": active, "oldest_age_seconds": oldest}

    # -- recovery -------------------------------------------------------

    def recover(self) -> int:
        """Re-queue every non-terminal job from a previous process.

        Jobs found ``running`` belonged to a killed worker: they go back
        to ``queued`` and their next attempt resumes from the per-job
        checkpoint.  Returns the number of jobs re-queued.
        """
        requeued = 0
        for record in self.store.all_records():
            if record.state in TERMINAL_STATES:
                continue
            if record.state == "running" or record.lease_owner is not None:
                # Any surviving lease belonged to the dead process.
                record.state = "queued"
                record.clear_lease()
                record.next_retry_at = None
                self.store.save(record)
            try:
                self.queue.push(record.job_id, record.priority)
            except QueueFull:
                break  # the rest stay durable; a later recover() retries
            requeued += 1
        return requeued

    # -- execution ------------------------------------------------------

    def process_once(self, timeout: Optional[float] = 0.0) -> int:
        """Claim one batch and run it to completion; returns jobs finished."""
        if self._draining.is_set():
            return 0
        head_id = self.queue.pop(timeout=timeout)
        if head_id is None:
            return 0
        batch = self.batcher.take(self.queue, head_id)
        if not batch:
            return 0
        # Claim the whole batch up front: every member gets a lease under
        # one owner id, so a worker death strands no queue-mate — the
        # reaper reclaims all of them by lease expiry.
        owner = f"{os.getpid()}:{threading.current_thread().name}:{os.urandom(4).hex()}"
        now = time.time()
        claimed: List[JobRecord] = []
        with self._reap_lock:
            for record in batch:
                current = self.store.get(record.job_id)
                if current is None or current.state != "queued":
                    continue  # cancelled, reaped or double-pushed meanwhile
                current.lease_owner = owner
                current.lease_expires_at = now + self.config.lease_ttl
                self.store.save(current)
                claimed.append(current)
        if not claimed:
            return 0
        self.metrics.batch(len(claimed))
        # One shared circuit instantiation for the whole batch: the head's
        # parse/levelize warms the resolver entry every batch-mate reuses.
        # A warm-up failure (bad inline netlist, say) is not handled here:
        # each job's own resolve raises it again inside _execute_job, where
        # classification and the lease bookkeeping apply.
        try:
            self.resolver.circuit_for(JobSpec.from_payload(claimed[0].spec))
        except Exception:  # noqa: BLE001
            pass
        heartbeat = _LeaseHeartbeat(
            lambda: self._renew_leases(claimed, owner),
            self.config.effective_heartbeat_every(),
        )
        for record in claimed:
            self._execute_job(
                record, batch_size=len(claimed), owner=owner, heartbeat=heartbeat
            )
        return len(claimed)

    def _renew_leases(self, records: List[JobRecord], owner: str) -> None:
        """Heartbeat: extend the lease of every batch member still owned.

        Works on fresh store copies under the reap lock, so a renewal can
        never resurrect a lease the reaper has already reassigned.
        """
        now = time.time()
        with self._reap_lock:
            for record in records:
                current = self.store.get(record.job_id)
                if (
                    current is None
                    or current.lease_owner != owner
                    or current.state in TERMINAL_STATES
                ):
                    continue
                current.lease_expires_at = now + self.config.lease_ttl
                self.store.save(current)
                self.metrics.lease_renewed()

    # -- the reaper -----------------------------------------------------

    def reap(self) -> int:
        """One sweep over the store; returns lease/retry actions taken.

        Three rules, all under the reap lock:

        1. ``running`` with an expired lease — unless the job's checkpoint
           mtime shows recent progress (shard processes heartbeat through
           checkpoint writes) — is re-queued for a checkpoint resume, or
           dead-lettered once its attempt budget is spent.
        2. ``queued`` with an expired lease is a stranded batch-mate
           (claimed, never started): back into the queue, attempts intact.
        3. ``queued``, unleased, absent from the live queue, and past its
           backoff time (or the requeue grace) is pushed — this is how
           backoff retries and overflow re-queues actually re-enter.
        """
        now = time.time()
        actions = 0
        with self._reap_lock:
            for record in self.store.all_records():
                if record.state == "running":
                    actions += self._reap_running(record, now)
                elif record.state == "queued":
                    actions += self._reap_queued(record, now)
        self.metrics.reaper_ran(time.time())
        return actions

    def _reap_running(self, record: JobRecord, now: float) -> int:
        if not record.lease_is_expired(now):
            return 0
        # Shard processes cannot renew a lease in this process's memory;
        # an advancing checkpoint file is their implicit heartbeat.
        mtime = latest_checkpoint_mtime(self._checkpoint_path(record.job_id))
        if mtime is not None and mtime + self.config.lease_ttl > now:
            record.lease_expires_at = mtime + self.config.lease_ttl
            self.store.save(record)
            self.metrics.lease_renewed()
            return 0
        self.metrics.lease_expired()
        record.note_error(
            f"lease expired at attempt {record.attempts} "
            f"(owner {record.lease_owner}); worker presumed dead or hung",
            kind="lease",
        )
        self._span_event(record, "lease_expired", owner=record.lease_owner)
        if record.attempts >= self._max_attempts(record):
            return self._dead_letter(record)
        record.state = "queued"
        record.clear_lease()
        self.store.save(record)
        self.metrics.retried()
        self._span_event(record, "requeue", reason="lease_expired")
        try:
            self.queue.push(record.job_id, record.priority)
        except QueueFull:
            pass  # stays durably queued; rule 3 pushes it when room frees
        return 1

    def _reap_queued(self, record: JobRecord, now: float) -> int:
        if record.lease_owner is not None:
            # Batch-claimed but never started: its worker died with the
            # batch in hand.  Reclaim by expiry, attempts unchanged.
            if not record.lease_is_expired(now):
                return 0
            self.metrics.lease_expired()
            record.clear_lease()
            self.store.save(record)
            self._span_event(record, "requeue", reason="stranded_batch_mate")
            try:
                self.queue.push(record.job_id, record.priority)
            except QueueFull:
                pass
            return 1
        if self.queue.contains(record.job_id):
            return 0
        if record.next_retry_at is not None:
            if record.next_retry_at > now:
                return 0  # backoff still running
        elif record.created_at + self.config.requeue_grace > now:
            return 0  # possibly inside the submit save-then-push window
        record.next_retry_at = None
        self.store.save(record)
        try:
            self.queue.push(record.job_id, record.priority)
        except QueueFull:
            return 0
        self._span_event(record, "requeue", reason="backoff_elapsed")
        return 1

    def _max_attempts(self, record: JobRecord) -> int:
        value = record.spec.get("max_attempts")
        return int(value) if value is not None else self.config.max_attempts

    def _dead_letter(self, record: JobRecord) -> int:
        """Terminal transition into ``dead``; caller holds the reap lock."""
        record.state = "dead"
        record.clear_lease()
        record.next_retry_at = None
        record.finished_at = time.time()
        self.store.save(record)
        self.metrics.dead_lettered()
        self._span_event(record, "dead_letter", attempts=record.attempts)
        self._emit_job_span(record)
        return 1

    def _reaper_loop(self) -> None:
        interval = self.config.effective_reaper_interval()
        while not self._stop.wait(interval):
            try:
                self.reap()
            except Exception:  # noqa: BLE001 - the reaper must survive sweeps
                continue

    # -- drain and resurrection ----------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop claiming new work; in-flight batches run to completion.

        Subsequent :meth:`submit` calls raise :class:`ServiceDraining`
        (HTTP 503 + Retry-After) and ``/healthz`` reports ``draining``.
        Queued-but-unclaimed jobs stay durably queued for the next
        process; their checkpoints (if any) make the hand-off seamless.
        """
        self._draining.set()

    def await_drained(self, timeout: float = 30.0) -> bool:
        """Block until the worker pool has retired; True when it has."""
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        return not any(worker.is_alive() for worker in self._workers)

    def retry_job(self, job_id: str) -> bool:
        """Resurrect a ``dead`` (or ``failed``) job with a fresh attempt
        budget; its bounded error history is kept for the audit trail.
        Returns False when the job is missing or not resurrectable."""
        with self._reap_lock:
            record = self.store.get(job_id)
            if record is None or record.state not in ("dead", "failed"):
                return False
            prior = record.state
            record.state = "queued"
            record.attempts = 0
            record.clear_lease()
            record.next_retry_at = None
            record.finished_at = None
            self.store.save(record)
        try:
            self.queue.push(record.job_id, record.priority)
        except QueueFull:
            pass  # durably queued; the reaper pushes it when room frees
        self.metrics.resurrected()
        self._span_event(record, "resurrect", prior_state=prior)
        return True

    def requeue_dead(self) -> int:
        """Resurrect every dead-lettered job; returns how many."""
        count = 0
        for record in self.store.all_records():
            if record.state == "dead" and self.retry_job(record.job_id):
                count += 1
        return count

    def drain(self) -> int:
        """Process queued work in the calling thread until the queue is empty."""
        done = 0
        while True:
            processed = self.process_once(timeout=0.0)
            if processed == 0:
                return done
            done += processed

    def start(self) -> None:
        """Launch the background worker pool and the lease reaper."""
        self._stop.clear()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        if self._reaper is None or not self._reaper.is_alive():
            self._reaper = threading.Thread(
                target=self._reaper_loop, name="serve-reaper", daemon=True
            )
            self._reaper.start()

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers = [w for w in self._workers if w.is_alive()]
        if self._reaper is not None:
            self._reaper.join(timeout=timeout)
            self._reaper = None
        if self.spans is not None:
            self.spans.close()

    def _worker_loop(self) -> None:
        while not self._stop.is_set() and not self._draining.is_set():
            try:
                self.process_once(timeout=0.2)
            except Exception:  # job-level failures are already recorded
                continue

    # -- the per-job execution path ------------------------------------

    def _checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.checkpoints_dir, f"{job_id}.ckpt")

    def _execute_job(
        self,
        record: JobRecord,
        batch_size: int,
        owner: Optional[str] = None,
        heartbeat: Optional[Tracer] = None,
    ) -> None:
        """Run one claimed job to a terminal state.

        Worker death (``KeyboardInterrupt``/``CampaignInterrupted``, i.e.
        anything that is not a plain ``Exception``) propagates and leaves
        the record ``running`` with its checkpoint on disk and its lease
        ticking — the state both :meth:`recover` and the reaper turn into
        a resumed attempt.  Ordinary failures are classified: transient
        ones re-queue with backoff until the attempt budget dead-letters
        them, permanent ones mark the job ``failed`` on the spot.  Every
        outcome transition is fenced by lease ownership, so a worker that
        lost its lease (it hung past the TTL and woke up) discards its
        result instead of clobbering the retry's.
        """
        spec = JobSpec.from_payload(record.spec)
        record.state = "running"
        record.started_at = time.time()
        record.attempts += 1
        record.batch_size = batch_size
        record.next_retry_at = None
        self.store.save(record)
        self.metrics.phase("queue_wait", record.started_at - record.created_at)
        root = self._job_root(record)
        if self.spans is not None and root is not None:
            self.spans.emit(
                "queue_wait",
                root.child(),
                record.created_at,
                record.started_at,
                job=record.job_id,
            )
        try:
            started = time.perf_counter()
            setup_wall = time.time()
            resolved = self.resolver.resolve(spec)
            key = cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)
            record.cache_key = key
            self.metrics.phase("setup", time.perf_counter() - started)
            if self.spans is not None and root is not None:
                self.spans.emit(
                    "setup",
                    root.child(),
                    setup_wall,
                    time.time(),
                    circuit=resolved.circuit.name,
                )

            if self.config.cache_results:
                blob = self.cache.get(key)
                if blob is not None:  # in-flight duplicate finished first
                    self.store.write_result(record.job_id, blob)
                    self._finish(
                        record, blob, cache_hit=True, counters=None, owner=owner
                    )
                    return
                self.metrics.cache_miss()

            simulate_started = time.perf_counter()
            simulate_wall = time.time()
            sim_ctx = root.child() if root is not None else None
            result = self._simulate(record, spec, resolved, sim_ctx, heartbeat)
            if spec.dictionary is None and resolved.collapsed is not None:
                # Representatives -> full universe, so the serialized blob
                # is what a full-universe submission would have produced.
                # Dominance proposals are oracle-confirmed before the blob
                # can claim them.
                if resolved.collapsed.implied_by:
                    from repro.analyze import expand_verified

                    result, _audit = expand_verified(
                        resolved.circuit,
                        resolved.tests.vectors,
                        resolved.collapsed,
                        result,
                    )
                else:
                    result = resolved.collapsed.expand(result)
            self.metrics.phase("simulate", time.perf_counter() - simulate_started)
            if self.spans is not None and sim_ctx is not None:
                self.spans.emit(
                    "simulate",
                    sim_ctx,
                    simulate_wall,
                    time.time(),
                    engine=result.engine,
                    jobs=spec.jobs,
                    detected=result.num_detected,
                )

            serialize_started = time.perf_counter()
            serialize_wall = time.time()
            if spec.dictionary is not None:
                blob = self._encode_dictionary(spec, resolved, result)
            else:
                blob = serialize_result(result, resolved.circuit)
            self.store.write_result(record.job_id, blob)
            if self.spans is not None and root is not None:
                self.spans.emit(
                    "serialize", root.child(), serialize_wall, time.time()
                )
            if self.config.cache_results and not result.truncated:
                store_wall = time.time()
                self.cache.put(key, blob)
                if self.spans is not None and root is not None:
                    self.spans.emit(
                        "cache_store", root.child(), store_wall, time.time()
                    )
            self.metrics.phase(
                "serialize", time.perf_counter() - serialize_started
            )
            if spec.dictionary is not None:
                self.metrics.phase(
                    "dictionary_build", time.perf_counter() - serialize_started
                )
                record.summary = _dictionary_summary(blob)
            else:
                record.summary = result.summary()
            self._finish(
                record, blob, cache_hit=False, counters=result.counters, owner=owner
            )
            self._cleanup_checkpoints(record.job_id)
        except Exception as exc:
            self._handle_failure(record, exc, owner)

    def _handle_failure(
        self, record: JobRecord, exc: Exception, owner: Optional[str]
    ) -> None:
        """Classify one attempt's failure and route the job accordingly."""
        kind = classify_failure(exc)
        if isinstance(exc, CheckpointError):
            # A torn checkpoint cannot seed the retry; start the job over.
            self._cleanup_checkpoints(record.job_id)
        with self._reap_lock:
            if not self._still_owner(record, owner):
                self.metrics.lease_lost()
                self._span_event(record, "lease_lost", owner=owner)
                return
            record.note_error(f"{type(exc).__name__}: {exc}", kind=kind)
            record.clear_lease()
            if kind == "transient" and record.attempts < self._max_attempts(record):
                delay = min(
                    self.config.retry_backoff_cap,
                    self.config.retry_backoff_base * (2.0 ** (record.attempts - 1)),
                )
                # Jitter perturbs retry *scheduling* only, never results.
                delay += random.uniform(0.0, self.config.retry_jitter)  # codelint: ok
                record.state = "queued"
                record.next_retry_at = time.time() + delay
                self.store.save(record)
                self.metrics.retried()
                self._span_event(
                    record,
                    "retry",
                    kind=kind,
                    attempt=record.attempts,
                    delay_seconds=round(delay, 6),
                )
                return
            if kind == "transient":
                self._dead_letter(record)
                return
            record.state = "failed"
            record.finished_at = time.time()
            self.store.save(record)
            self.metrics.failed()
            self._emit_job_span(record)

    def _still_owner(self, record: JobRecord, owner: Optional[str]) -> bool:
        """Lease fence: does the store still credit *owner* with this job?

        ``owner=None`` (direct :meth:`_execute_job` calls in tests and the
        recover path) trusts the caller, preserving the pre-lease contract.
        """
        if owner is None:
            return True
        current = self.store.get(record.job_id)
        return (
            current is not None
            and current.state == "running"
            and current.lease_owner == owner
        )

    def _job_root(self, record: JobRecord) -> Optional[TraceContext]:
        """The job's root trace context, rebuilt from the bare trace id."""
        if self.spans is None or record.trace_id is None:
            return None
        return TraceContext.root_of(record.trace_id)

    def _span_event(self, record: JobRecord, name: str, **attrs: object) -> None:
        """An instantaneous execution-plane marker on the job's trace."""
        root = self._job_root(record)
        if self.spans is None or root is None:
            return
        self.spans.event(name, root, job=record.job_id, **attrs)

    def _emit_job_span(self, record: JobRecord) -> None:
        """Emit the trace's root span covering the job end to end."""
        root = self._job_root(record)
        if self.spans is None or root is None or record.finished_at is None:
            return
        self.spans.emit(
            "job",
            root,
            record.created_at,
            record.finished_at,
            job=record.job_id,
            state=record.state,
            cache_hit=record.cache_hit,
            attempts=record.attempts,
        )

    def _finish(
        self,
        record: JobRecord,
        blob: bytes,
        cache_hit: bool,
        counters: Optional[WorkCounters],
        owner: Optional[str] = None,
    ) -> None:
        with self._reap_lock:
            if not self._still_owner(record, owner):
                # The lease moved on (hung worker past TTL): the retry owns
                # the job now; this result is identical anyway — drop it.
                self.metrics.lease_lost()
                self._span_event(record, "lease_lost", owner=owner)
                return
            record.state = "done"
            record.cache_hit = cache_hit
            record.clear_lease()
            record.next_retry_at = None
            record.finished_at = time.time()
            if cache_hit:
                record.summary = _summary_from_blob(blob, cached=True)
                self.metrics.cache_hit()
            self.store.save(record)
        self.metrics.completed(simulated=not cache_hit, counters=counters)
        self._emit_job_span(record)

    def _simulate(
        self,
        record: JobRecord,
        spec: JobSpec,
        resolved: ResolvedJob,
        trace_ctx: Optional[TraceContext] = None,
        heartbeat: Optional[Tracer] = None,
    ) -> FaultSimResult:
        budget = None
        if spec.max_cycles is not None or self.config.max_seconds_per_job is not None:
            budget = Budget(
                max_wall_seconds=self.config.max_seconds_per_job,
                max_cycles=spec.max_cycles,
            )
        if record.deadline_at is not None:
            # The deadline composes as a wall budget over the time left;
            # an already-expired deadline truncates at the first cycle
            # boundary — the existing truncated-result contract, which is
            # also why deadline-truncated results are never cached.
            remaining = max(0.0, record.deadline_at - time.time())
            budget = (budget or Budget()).tightened(max_wall_seconds=remaining)
        options = None
        if spec.sanitize:
            if spec.transition:
                from repro.concurrent.options import SimOptions

                options = SimOptions(split_lists=True, sanitize=True)
            else:
                from repro.harness.runner import engine_options

                base = engine_options(spec.engine)
                assert base is not None  # spec validation guarantees csim*
                options = base.with_(sanitize=True)
        fingerprint_extra = (
            resolved.collapsed.fingerprint_material()
            if resolved.collapsed is not None
            else ()
        )
        record_responses = spec.dictionary is not None
        if record_responses:
            # PROOFS/vsim checkpoint labels do not distinguish recording
            # runs from dropping ones, so the prefix keeps a dictionary
            # build's checkpoints from ever seeding (or being seeded by) a
            # plain detection job over the same inputs.
            fingerprint_extra = (
                "diagnosis-dictionary",
                spec.dictionary,
            ) + fingerprint_extra
        if spec.engine == "serial" and not spec.transition:
            # The serial oracle has no snapshot support: no checkpoints.
            from repro.harness.runner import run_stuck_at

            return run_stuck_at(
                resolved.circuit,
                resolved.tests,
                "serial",
                faults=resolved.faults,
                tracer=heartbeat,
                budget=budget,
                record_responses=record_responses,
            )
        checkpoint_path = self._checkpoint_path(record.job_id)
        # Resume whenever a valid checkpoint exists: retries (attempts > 1)
        # and resurrections (attempts reset to 0) both pick up where the
        # last durable cycle left off, bit-identically.
        resume = self._note_resume(record, checkpoint_path)
        if spec.jobs > 1:
            from repro.parallel.runner import run_parallel

            return run_parallel(
                resolved.circuit,
                resolved.tests,
                spec.engine,
                transition=spec.transition,
                faults=resolved.faults,
                options=options,
                jobs=spec.jobs,
                shard_strategy=spec.shard_strategy,
                budget=budget,
                telemetry=trace_ctx is not None,
                checkpoint_path=checkpoint_path,
                resume=record.attempts > 1,
                checkpoint_every=self.config.checkpoint_every,
                trace_dir=self.config.trace_dir if trace_ctx is not None else None,
                trace_ctx=trace_ctx,
                word_width=spec.word_width,
                record_responses=record_responses,
                fingerprint_extra=fingerprint_extra,
            )
        from repro.robust.runner import run_checkpointed

        return run_checkpointed(
            resolved.circuit,
            resolved.tests,
            spec.engine,
            transition=spec.transition,
            faults=resolved.faults,
            options=options,
            budget=budget,
            tracer=heartbeat,
            checkpoint_path=checkpoint_path,
            resume=resume,
            checkpoint_every=self.config.checkpoint_every,
            word_width=spec.word_width,
            record_responses=record_responses,
            fingerprint_extra=fingerprint_extra,
        )

    def _encode_dictionary(
        self, spec: JobSpec, resolved: ResolvedJob, result: FaultSimResult
    ) -> bytes:
        """Encode a finished dictionary build as a ``repro-dict/1`` artifact.

        A truncated run carries incomplete response signatures, which a
        dictionary must never contain: the build fails *transiently*
        (:func:`classify_failure`) and the retry resumes from the run's
        checkpoints instead of shipping a partial artifact.
        """
        from repro.diagnosis.dictionary import DictionaryBuildTruncated
        from repro.diagnosis.store import encode_dictionary

        if result.truncated:
            raise DictionaryBuildTruncated(
                f"dictionary build stopped early ({result.truncation_reason}); "
                "checkpoints (if any) remain for resume"
            )
        responses = result.responses
        assert responses is not None  # _simulate ran with record_responses
        if resolved.collapsed is not None:
            responses = resolved.collapsed.expand_responses(responses)
        assert spec.dictionary is not None
        blob = encode_dictionary(
            resolved.circuit.name,
            len(resolved.tests),
            responses,
            spec.dictionary,
            collapse=spec.collapse,
        )
        self.metrics.dictionary_built()
        return blob

    # -- diagnosis ------------------------------------------------------

    def diagnose(
        self, payload: dict
    ) -> Tuple[int, Optional[dict], Optional[bytes]]:
        """One ``/diagnose`` query; returns ``(status, document, raw)``.

        The payload is a job spec plus the query fields ``failures``
        (required), ``top`` and ``explain``; ``dictionary`` defaults to
        ``"full"`` and ``collapse`` to ``"equivalence"``.  On a warm
        dictionary cache the answer is 200 with the canonical rankings
        bytes — the same bytes ``repro diagnose`` prints for the same
        query.  On a miss the dictionary build is enqueued through the
        ordinary job queue (idempotently, keyed by the dictionary's cache
        key, so concurrent misses share one build) and the answer is 202
        with the job id to poll.
        """
        started = time.perf_counter()
        query = dict(payload)
        failures = query.pop("failures", None)
        if not isinstance(failures, list):
            raise SpecError("'failures' must be a list of observed failures")
        top = query.pop("top", 10)
        if isinstance(top, bool) or not isinstance(top, int) or top < 1:
            raise SpecError("'top' must be a positive integer")
        explain = query.pop("explain", False)
        if not isinstance(explain, bool):
            raise SpecError("'explain' must be a boolean")
        query.setdefault("dictionary", "full")
        query.setdefault("collapse", "equivalence")
        spec = JobSpec.from_payload(query)
        assert spec.dictionary is not None  # defaulted above
        from repro.diagnosis.store import (
            decode_dictionary,
            diagnosis_report,
            parse_observed,
        )

        try:
            observed = parse_observed(spec.dictionary, failures)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
        resolved = self.resolver.resolve(spec)
        key = cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)
        blob = self.cache.get(key)
        if blob is None:
            self.metrics.diagnose_request(dictionary_hit=False)
            build = dict(query)
            build.setdefault("idempotency_key", f"dict-build:{key}")
            record, created = self.submit(build)
            document = {
                "status": "building",
                "job": record.job_id,
                "created": created,
                "cache_key": key,
            }
            return 202, document, None
        self.metrics.diagnose_request(dictionary_hit=True)
        body = diagnosis_report(
            resolved.circuit,
            resolved.tests,
            decode_dictionary(blob),
            observed,
            top=top,
            explain=explain,
        )
        self.metrics.phase("diagnose", time.perf_counter() - started)
        return 200, None, body

    def _note_resume(self, record: JobRecord, checkpoint_path: str) -> bool:
        """Whether a retry can resume, recording the resume cycle."""
        if not os.path.exists(checkpoint_path):
            return False
        try:
            saved = read_checkpoint(checkpoint_path)
        except CheckpointError:
            os.unlink(checkpoint_path)  # torn checkpoint: start over
            return False
        cycle = saved.payload.get("cycle", 0)
        record.resumed_from_cycle = int(cycle)
        return True

    def _cleanup_checkpoints(self, job_id: str) -> None:
        base = self._checkpoint_path(job_id)
        for path in [base] + glob.glob(f"{base}.shard*"):
            try:
                os.unlink(path)
            except OSError:
                pass


def _dictionary_summary(blob: bytes) -> str:
    from repro.diagnosis.store import read_manifest

    manifest = read_manifest(blob)
    return (
        f"dictionary[{manifest['kind']}]: "
        f"{manifest['num_detected']}/{manifest['num_faults']} faults detected "
        f"over {manifest['num_vectors']} vectors"
    )


def _summary_from_blob(blob: bytes, cached: bool) -> str:
    document = json.loads(blob)
    if isinstance(document, dict) and document.get("schema") == "repro-dict/1":
        text = _dictionary_summary(blob)
    else:
        text = (
            f"{document['engine']}: "
            f"{document['num_detected']}/{document['num_faults']} "
            f"faults ({100.0 * document['coverage']:.2f}%) in "
            f"{document['num_vectors']} vectors"
        )
    return f"{text} [cache hit]" if cached else text
