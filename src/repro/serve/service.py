"""The fault-simulation service: queue, batcher, cache, workers, recovery.

:class:`FaultSimService` ties the serving subsystem together around the
existing engines:

* **Submit** (:meth:`FaultSimService.submit`) validates the spec, honours
  idempotency keys, and short-circuits through the content-addressed
  result cache — a duplicate of a finished job is marked ``done`` at
  submit time without ever entering the queue.  A full queue raises
  :class:`repro.serve.queue.QueueFull` (HTTP 429).
* **Execute** — workers claim the queue head, coalesce queue-mates
  sharing a (circuit, engine) group key into one batch
  (:mod:`repro.serve.batch`), and run each job through the existing
  runners: :func:`repro.robust.runner.run_checkpointed` for single-process
  jobs (periodic durable checkpoints), :func:`repro.parallel.runner.run_parallel`
  when the job asks for ``jobs > 1`` fault sharding.  Budgets
  (:class:`repro.robust.budget.Budget`) compose from the job's
  ``max_cycles`` and the service-wide wall-clock cap.
* **Recover** (:meth:`FaultSimService.recover`) re-queues every job a
  killed worker left ``running``; the next attempt resumes from the job's
  checkpoint instead of recomputing, and the resumed result is
  bit-identical to an uninterrupted run (the checkpoint layer's
  contract).

Results returned through the service are serialized canonically
(:func:`repro.serve.cache.serialize_result`): the outcome — detections and
their cycles — is exactly what a direct ``repro simulate`` run of the same
inputs produces, whatever worker, batch or shard count served it.
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.obs.span import SpanWriter, TraceContext
from repro.result import FaultSimResult, WorkCounters
from repro.robust.budget import Budget
from repro.robust.checkpoint import CheckpointError, read_checkpoint
from repro.serve.batch import Batcher
from repro.serve.cache import ResultCache, cache_key, serialize_result
from repro.serve.metrics import ServiceMetrics, service_version
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.spec import JobSpec, ResolvedJob, SpecError, SpecResolver
from repro.serve.store import TERMINAL_STATES, JobRecord, JobStore

__all__ = ["ServeConfig", "FaultSimService", "QueueFull", "SpecError"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one service instance."""

    state_dir: str
    queue_limit: int = 256
    workers: int = 1
    max_batch: int = 8
    checkpoint_every: int = 16
    #: Service-wide wall-clock cap per job (None = unlimited).  Results
    #: truncated by this nondeterministic limit are never cached.
    max_seconds_per_job: Optional[float] = None
    cache_results: bool = True
    resolver_capacity: int = 4
    #: Span-trace directory (None = tracing off).  Every job gets its own
    #: trace id; API threads, workers and shard processes append span
    #: files there (render with ``repro inspect``).
    trace_dir: Optional[str] = None


class FaultSimService:
    """One serving instance over a durable state directory."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.store = JobStore(config.state_dir)
        self.queue = JobQueue(config.queue_limit)
        self.cache = ResultCache(os.path.join(config.state_dir, "cache"))
        self.checkpoints_dir = os.path.join(config.state_dir, "checkpoints")
        os.makedirs(self.checkpoints_dir, exist_ok=True)
        self.batcher = Batcher(self.store, config.max_batch)
        self.resolver = SpecResolver(config.resolver_capacity)
        self.metrics = ServiceMetrics()
        self.spans: Optional[SpanWriter] = (
            SpanWriter(config.trace_dir, label="serve")
            if config.trace_dir is not None
            else None
        )
        self._workers: List[threading.Thread] = []
        self._stop = threading.Event()

    # -- submission -----------------------------------------------------

    def submit(self, payload: dict) -> Tuple[JobRecord, bool]:
        """Accept one job; returns ``(record, created)``.

        ``created`` is False when an idempotency key matched an existing
        job, which is returned unchanged.  Raises :class:`SpecError` for
        malformed payloads and :class:`QueueFull` under backpressure.
        """
        spec = JobSpec.from_payload(payload)
        if spec.idempotency_key is not None:
            existing = self.store.by_idempotency_key(spec.idempotency_key)
            if existing is not None:
                return existing, False
        record = JobRecord(
            job_id=self.store.new_job_id(),
            spec=spec.to_payload(),
            priority=spec.priority,
            idempotency_key=spec.idempotency_key,
        )
        if self.spans is not None:
            record.trace_id = TraceContext.new_trace().trace_id
        if self.config.cache_results and self._serve_from_cache(record, spec):
            self.metrics.submitted()
            return record, True
        # The record must be durable before its id is visible to workers;
        # a refused submission is rolled back so backpressure leaves no trace.
        self.store.save(record)
        try:
            self.queue.push(record.job_id, record.priority)
        except QueueFull:
            self.store.delete(record.job_id)
            self.metrics.rejected()
            raise
        self.metrics.submitted()
        return record, True

    def _serve_from_cache(self, record: JobRecord, spec: JobSpec) -> bool:
        """Finish *record* from the cache at submit time when possible."""
        started = time.perf_counter()
        resolved = self.resolver.resolve(spec)
        key = cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)
        record.cache_key = key
        blob = self.cache.get(key)
        self.metrics.phase("setup", time.perf_counter() - started)
        if blob is None:
            return False
        self.store.write_result(record.job_id, blob)
        record.state = "done"
        record.cache_hit = True
        record.finished_at = time.time()
        record.summary = _summary_from_blob(blob, cached=True)
        self.store.save(record)
        self.metrics.cache_hit()
        self.metrics.completed(simulated=False, counters=None)
        self._emit_job_span(record)
        return True

    # -- queries --------------------------------------------------------

    def status(self, job_id: str) -> Optional[JobRecord]:
        return self.store.get(job_id)

    def result_bytes(self, job_id: str) -> Optional[bytes]:
        return self.store.read_result(job_id)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running or finished jobs are immutable."""
        record = self.store.get(job_id)
        if record is None or record.state != "queued":
            return False
        if not self.queue.cancel(job_id):
            return False
        record.state = "cancelled"
        record.finished_at = time.time()
        self.store.save(record)
        self.metrics.cancelled()
        return True

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(self.queue.depth(), self.queue.capacity)

    def health(self) -> dict:
        return {
            "status": "ok",
            "version": service_version(),
            "started_at": self.metrics.started_at,
            "uptime_seconds": time.time() - self.metrics.started_at,
            "workers_alive": sum(1 for w in self._workers if w.is_alive()),
            "workers_configured": self.config.workers,
            "queue_depth": self.queue.depth(),
            "queue_capacity": self.queue.capacity,
            "jobs": self.store.counts(),
        }

    # -- recovery -------------------------------------------------------

    def recover(self) -> int:
        """Re-queue every non-terminal job from a previous process.

        Jobs found ``running`` belonged to a killed worker: they go back
        to ``queued`` and their next attempt resumes from the per-job
        checkpoint.  Returns the number of jobs re-queued.
        """
        requeued = 0
        for record in self.store.all_records():
            if record.state in TERMINAL_STATES:
                continue
            if record.state == "running":
                record.state = "queued"
                self.store.save(record)
            try:
                self.queue.push(record.job_id, record.priority)
            except QueueFull:
                break  # the rest stay durable; a later recover() retries
            requeued += 1
        return requeued

    # -- execution ------------------------------------------------------

    def process_once(self, timeout: Optional[float] = 0.0) -> int:
        """Claim one batch and run it to completion; returns jobs finished."""
        head_id = self.queue.pop(timeout=timeout)
        if head_id is None:
            return 0
        batch = self.batcher.take(self.queue, head_id)
        if not batch:
            return 0
        self.metrics.batch(len(batch))
        # One shared circuit instantiation for the whole batch: the head's
        # parse/levelize warms the resolver entry every batch-mate reuses.
        self.resolver.circuit_for(JobSpec.from_payload(batch[0].spec))
        for record in batch:
            self._execute_job(record, batch_size=len(batch))
        return len(batch)

    def drain(self) -> int:
        """Process queued work in the calling thread until the queue is empty."""
        done = 0
        while True:
            processed = self.process_once(timeout=0.0)
            if processed == 0:
                return done
            done += processed

    def start(self) -> None:
        """Launch the background worker pool."""
        self._stop.clear()
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    def stop(self, timeout: float = 10.0) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers = [w for w in self._workers if w.is_alive()]
        if self.spans is not None:
            self.spans.close()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.process_once(timeout=0.2)
            except Exception:  # job-level failures are already recorded
                continue

    # -- the per-job execution path ------------------------------------

    def _checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.checkpoints_dir, f"{job_id}.ckpt")

    def _execute_job(self, record: JobRecord, batch_size: int) -> None:
        """Run one claimed job to a terminal state.

        Worker death (``KeyboardInterrupt``/``CampaignInterrupted``, i.e.
        anything that is not a plain ``Exception``) propagates and leaves
        the record ``running`` with its checkpoint on disk — exactly the
        state :meth:`recover` turns into a resumed attempt.  Ordinary
        failures mark the job ``failed`` with the error message.
        """
        spec = JobSpec.from_payload(record.spec)
        record.state = "running"
        record.started_at = time.time()
        record.attempts += 1
        record.batch_size = batch_size
        self.store.save(record)
        self.metrics.phase("queue_wait", record.started_at - record.created_at)
        root = self._job_root(record)
        if self.spans is not None and root is not None:
            self.spans.emit(
                "queue_wait",
                root.child(),
                record.created_at,
                record.started_at,
                job=record.job_id,
            )
        try:
            started = time.perf_counter()
            setup_wall = time.time()
            resolved = self.resolver.resolve(spec)
            key = cache_key(spec, resolved.circuit, resolved.tests, resolved.faults)
            record.cache_key = key
            self.metrics.phase("setup", time.perf_counter() - started)
            if self.spans is not None and root is not None:
                self.spans.emit(
                    "setup",
                    root.child(),
                    setup_wall,
                    time.time(),
                    circuit=resolved.circuit.name,
                )

            if self.config.cache_results:
                blob = self.cache.get(key)
                if blob is not None:  # in-flight duplicate finished first
                    self.store.write_result(record.job_id, blob)
                    self._finish(record, blob, cache_hit=True, counters=None)
                    return
                self.metrics.cache_miss()

            simulate_started = time.perf_counter()
            simulate_wall = time.time()
            sim_ctx = root.child() if root is not None else None
            result = self._simulate(record, spec, resolved, sim_ctx)
            self.metrics.phase("simulate", time.perf_counter() - simulate_started)
            if self.spans is not None and sim_ctx is not None:
                self.spans.emit(
                    "simulate",
                    sim_ctx,
                    simulate_wall,
                    time.time(),
                    engine=result.engine,
                    jobs=spec.jobs,
                    detected=result.num_detected,
                )

            serialize_started = time.perf_counter()
            serialize_wall = time.time()
            blob = serialize_result(result, resolved.circuit)
            self.store.write_result(record.job_id, blob)
            if self.spans is not None and root is not None:
                self.spans.emit(
                    "serialize", root.child(), serialize_wall, time.time()
                )
            if self.config.cache_results and not result.truncated:
                store_wall = time.time()
                self.cache.put(key, blob)
                if self.spans is not None and root is not None:
                    self.spans.emit(
                        "cache_store", root.child(), store_wall, time.time()
                    )
            self.metrics.phase(
                "serialize", time.perf_counter() - serialize_started
            )
            record.summary = result.summary()
            self._finish(record, blob, cache_hit=False, counters=result.counters)
            self._cleanup_checkpoints(record.job_id)
        except Exception as exc:
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
            record.finished_at = time.time()
            self.store.save(record)
            self.metrics.failed()
            self._emit_job_span(record)

    def _job_root(self, record: JobRecord) -> Optional[TraceContext]:
        """The job's root trace context, rebuilt from the bare trace id."""
        if self.spans is None or record.trace_id is None:
            return None
        return TraceContext.root_of(record.trace_id)

    def _emit_job_span(self, record: JobRecord) -> None:
        """Emit the trace's root span covering the job end to end."""
        root = self._job_root(record)
        if self.spans is None or root is None or record.finished_at is None:
            return
        self.spans.emit(
            "job",
            root,
            record.created_at,
            record.finished_at,
            job=record.job_id,
            state=record.state,
            cache_hit=record.cache_hit,
            attempts=record.attempts,
        )

    def _finish(
        self,
        record: JobRecord,
        blob: bytes,
        cache_hit: bool,
        counters: Optional[WorkCounters],
    ) -> None:
        record.state = "done"
        record.cache_hit = cache_hit
        record.finished_at = time.time()
        if cache_hit:
            record.summary = _summary_from_blob(blob, cached=True)
            self.metrics.cache_hit()
        self.store.save(record)
        self.metrics.completed(simulated=not cache_hit, counters=counters)
        self._emit_job_span(record)

    def _simulate(
        self,
        record: JobRecord,
        spec: JobSpec,
        resolved: ResolvedJob,
        trace_ctx: Optional[TraceContext] = None,
    ) -> FaultSimResult:
        budget = None
        if spec.max_cycles is not None or self.config.max_seconds_per_job is not None:
            budget = Budget(
                max_wall_seconds=self.config.max_seconds_per_job,
                max_cycles=spec.max_cycles,
            )
        if spec.engine == "serial" and not spec.transition:
            # The serial oracle has no snapshot support: no checkpoints.
            from repro.harness.runner import run_stuck_at

            return run_stuck_at(
                resolved.circuit,
                resolved.tests,
                "serial",
                faults=resolved.faults,
                budget=budget,
            )
        checkpoint_path = self._checkpoint_path(record.job_id)
        resume = record.attempts > 1 and self._note_resume(record, checkpoint_path)
        if spec.jobs > 1:
            from repro.parallel.runner import run_parallel

            return run_parallel(
                resolved.circuit,
                resolved.tests,
                spec.engine,
                transition=spec.transition,
                faults=resolved.faults,
                jobs=spec.jobs,
                shard_strategy=spec.shard_strategy,
                budget=budget,
                telemetry=trace_ctx is not None,
                checkpoint_path=checkpoint_path,
                resume=record.attempts > 1,
                checkpoint_every=self.config.checkpoint_every,
                trace_dir=self.config.trace_dir if trace_ctx is not None else None,
                trace_ctx=trace_ctx,
            )
        from repro.robust.runner import run_checkpointed

        return run_checkpointed(
            resolved.circuit,
            resolved.tests,
            spec.engine,
            transition=spec.transition,
            faults=resolved.faults,
            budget=budget,
            checkpoint_path=checkpoint_path,
            resume=resume,
            checkpoint_every=self.config.checkpoint_every,
        )

    def _note_resume(self, record: JobRecord, checkpoint_path: str) -> bool:
        """Whether a retry can resume, recording the resume cycle."""
        if not os.path.exists(checkpoint_path):
            return False
        try:
            saved = read_checkpoint(checkpoint_path)
        except CheckpointError:
            os.unlink(checkpoint_path)  # torn checkpoint: start over
            return False
        cycle = saved.payload.get("cycle", 0)
        record.resumed_from_cycle = int(cycle)
        return True

    def _cleanup_checkpoints(self, job_id: str) -> None:
        base = self._checkpoint_path(job_id)
        for path in [base] + glob.glob(f"{base}.shard*"):
            try:
                os.unlink(path)
            except OSError:
                pass


def _summary_from_blob(blob: bytes, cached: bool) -> str:
    document = json.loads(blob)
    text = (
        f"{document['engine']}: {document['num_detected']}/{document['num_faults']} "
        f"faults ({100.0 * document['coverage']:.2f}%) in "
        f"{document['num_vectors']} vectors"
    )
    return f"{text} [cache hit]" if cached else text
