"""Job specifications: the validated description of one simulation request.

A :class:`JobSpec` is the canonical form of what a client submits — a
circuit (named benchmark or inline ``.bench`` text), a test sequence
(explicit vectors or a deterministic random spec), an engine configuration
and scheduling hints (priority, idempotency key).  Validation happens at
submit time so malformed requests are rejected with a
:class:`SpecError` (HTTP 400) instead of failing later inside a worker.

:class:`SpecResolver` materializes specs into the objects the engines
consume.  Circuit loads are memoized in a small LRU keyed by the circuit
*source* (inline text, or name + scale), which is what the batcher
amortizes: jobs sharing a source resolve against one parsed, levelized
circuit object, so the per-circuit evaluation-LUT and macro caches inside
the engines stay warm across the whole batch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

from repro.circuit.library import load as load_circuit
from repro.circuit.netlist import Circuit, NetlistError
from repro.circuit.bench import parse_bench
from repro.faults.model import Fault
from repro.faults.transition import all_transition_faults
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.harness.runner import ENGINE_NAMES, WORD_ENGINES, engine_options

if TYPE_CHECKING:
    from repro.analyze.collapse import CollapsedUniverse
from repro.parallel.sharding import STRATEGIES
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence, parse_vectors


class SpecError(ValueError):
    """A malformed or inconsistent job specification (HTTP 400)."""


def _opt_str(payload: Mapping[str, object], key: str) -> Optional[str]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, str):
        raise SpecError(f"{key!r} must be a string")
    return value


def _opt_int(payload: Mapping[str, object], key: str, default: int = 0) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key!r} must be an integer")
    return value


def _opt_bool(payload: Mapping[str, object], key: str) -> bool:
    value = payload.get(key, False)
    if not isinstance(value, bool):
        raise SpecError(f"{key!r} must be a boolean")
    return value


def _opt_float(payload: Mapping[str, object], key: str, default: float) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{key!r} must be a number")
    return float(value)


_KNOWN_KEYS = frozenset(
    {
        "circuit",
        "scale",
        "netlist",
        "vectors",
        "random_patterns",
        "seed",
        "engine",
        "transition",
        "prune_untestable",
        "collapse",
        "dictionary",
        "sanitize",
        "max_cycles",
        "jobs",
        "shard_strategy",
        "priority",
        "idempotency_key",
        "deadline_seconds",
        "max_attempts",
        "word_width",
    }
)


@dataclass(frozen=True)
class JobSpec:
    """One validated simulation request.

    Exactly one of ``circuit``/``netlist`` names the design; ``vectors``
    (text, one ``0/1/X`` vector per line) and the ``random_patterns`` +
    ``seed`` pair are likewise exclusive, with the random spec as the
    default.  ``jobs``/``shard_strategy`` shard the fault universe through
    the parallel runner but never change the outcome, so they are *not*
    part of the result-cache identity (see :mod:`repro.serve.cache`).
    """

    circuit: Optional[str] = None
    scale: float = 1.0
    netlist: Optional[str] = None
    vectors: Optional[str] = None
    random_patterns: int = 64
    seed: int = 1992
    engine: str = "csim-MV"
    transition: bool = False
    prune_untestable: bool = False
    #: Collapse mode (``"equivalence"``/``"dominance"``) or ``None``.  The
    #: job simulates class representatives of the full universe and the
    #: result is expanded back before serialization, so the *blob* matches
    #: an uncollapsed full-universe run — but the option still joins the
    #: cache key (see :mod:`repro.serve.cache`): a collapsed and an
    #: uncollapsed submission resolve different fault lists and must never
    #: alias.
    collapse: Optional[str] = None
    #: Fault-dictionary build (``"full"``/``"passfail"``) or ``None`` for
    #: a plain simulation.  A dictionary job runs in ``record_responses``
    #: mode (no fault dropping, full per-fault failure responses) and its
    #: result blob is a ``repro-dict/1`` artifact instead of a detection
    #: document, so the format *is* part of the cache identity.  Stuck-at
    #: only, and incompatible with dominance collapsing (dominance argues
    #: detection, never the response shape).
    dictionary: Optional[str] = None
    #: Arm the fault-list invariant sanitizer (concurrent engines only).
    #: Purely a self-check — it never changes detections — so, like
    #: ``word_width``, it is *not* part of the cache identity.
    sanitize: bool = False
    max_cycles: Optional[int] = None
    jobs: int = 1
    shard_strategy: str = "round-robin"
    priority: int = 0
    idempotency_key: Optional[str] = None
    #: Wall-clock budget from submission; past it the job finishes with
    #: the truncated-result contract.  A scheduling knob, not part of the
    #: cache identity (truncated results are never cached anyway).
    deadline_seconds: Optional[float] = None
    #: Per-job override of the service-wide transient-retry cap.
    max_attempts: Optional[int] = None
    #: Word width for the packed engines (PROOFS/vsim): power of two
    #: >= 8.  A performance knob that never changes detections, so — like
    #: ``jobs`` — it is not part of the result-cache identity.
    word_width: Optional[int] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "JobSpec":
        if not isinstance(payload, Mapping):
            raise SpecError("job payload must be a JSON object")
        unknown = sorted(set(payload) - _KNOWN_KEYS)
        if unknown:
            raise SpecError(f"unknown job fields: {', '.join(unknown)}")
        circuit = _opt_str(payload, "circuit")
        netlist = _opt_str(payload, "netlist")
        if (circuit is None) == (netlist is None):
            raise SpecError("exactly one of 'circuit' or 'netlist' is required")
        vectors = _opt_str(payload, "vectors")
        if vectors is not None and "random_patterns" in payload:
            raise SpecError("'vectors' and 'random_patterns' are mutually exclusive")
        engine = _opt_str(payload, "engine") or "csim-MV"
        if engine not in ENGINE_NAMES:
            raise SpecError(f"unknown engine {engine!r}; choose from {ENGINE_NAMES}")
        strategy = _opt_str(payload, "shard_strategy") or "round-robin"
        if strategy not in STRATEGIES:
            raise SpecError(
                f"unknown shard strategy {strategy!r}; choose from {STRATEGIES}"
            )
        jobs = _opt_int(payload, "jobs", 1)
        if jobs < 1:
            raise SpecError("'jobs' must be >= 1")
        transition = _opt_bool(payload, "transition")
        collapse = _opt_str(payload, "collapse")
        if collapse is not None and collapse not in ("equivalence", "dominance"):
            raise SpecError(
                "'collapse' must be 'equivalence' or 'dominance'"
            )
        dictionary = _opt_str(payload, "dictionary")
        if dictionary is not None:
            from repro.diagnosis.dictionary import DICTIONARY_KINDS

            if dictionary not in DICTIONARY_KINDS:
                raise SpecError(
                    f"'dictionary' must be one of {DICTIONARY_KINDS}"
                )
            if transition:
                raise SpecError(
                    "fault dictionaries only support the stuck-at model"
                )
            if collapse == "dominance":
                raise SpecError(
                    "dictionary builds need exact response attribution; "
                    "'collapse' must be 'equivalence' (or omitted)"
                )
        sanitize = _opt_bool(payload, "sanitize")
        if sanitize and not transition and engine_options(engine) is None:
            raise SpecError(
                f"'sanitize' requires a concurrent engine (csim*), not {engine!r}"
            )
        random_patterns = _opt_int(payload, "random_patterns", 64)
        if random_patterns < 1:
            raise SpecError("'random_patterns' must be >= 1")
        max_cycles: Optional[int] = None
        if payload.get("max_cycles") is not None:
            max_cycles = _opt_int(payload, "max_cycles")
            if max_cycles < 1:
                raise SpecError("'max_cycles' must be >= 1")
        deadline_seconds: Optional[float] = None
        if payload.get("deadline_seconds") is not None:
            deadline_seconds = _opt_float(payload, "deadline_seconds", 0.0)
            if deadline_seconds < 0:
                raise SpecError("'deadline_seconds' must be >= 0")
        max_attempts: Optional[int] = None
        if payload.get("max_attempts") is not None:
            max_attempts = _opt_int(payload, "max_attempts")
            if max_attempts < 1:
                raise SpecError("'max_attempts' must be >= 1")
        word_width: Optional[int] = None
        if payload.get("word_width") is not None:
            if engine not in WORD_ENGINES:
                raise SpecError(
                    f"'word_width' only applies to the word-packed engines "
                    f"{WORD_ENGINES}, not {engine!r}"
                )
            from repro.vector.packing import validate_word_width

            try:
                word_width = validate_word_width(payload["word_width"])
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        return cls(
            circuit=circuit,
            scale=_opt_float(payload, "scale", 1.0),
            netlist=netlist,
            vectors=vectors,
            random_patterns=random_patterns,
            seed=_opt_int(payload, "seed", 1992),
            engine=engine,
            transition=transition,
            prune_untestable=_opt_bool(payload, "prune_untestable"),
            collapse=collapse,
            dictionary=dictionary,
            sanitize=sanitize,
            max_cycles=max_cycles,
            jobs=jobs,
            shard_strategy=strategy,
            priority=_opt_int(payload, "priority", 0),
            idempotency_key=_opt_str(payload, "idempotency_key"),
            deadline_seconds=deadline_seconds,
            max_attempts=max_attempts,
            word_width=word_width,
        )

    def to_payload(self) -> dict:
        """The normalized JSON form stored in the job record."""
        payload: dict = {
            "scale": self.scale,
            "engine": self.engine,
            "transition": self.transition,
            "prune_untestable": self.prune_untestable,
            "jobs": self.jobs,
            "shard_strategy": self.shard_strategy,
            "priority": self.priority,
        }
        if self.circuit is not None:
            payload["circuit"] = self.circuit
        if self.netlist is not None:
            payload["netlist"] = self.netlist
        if self.vectors is not None:
            payload["vectors"] = self.vectors
        else:
            payload["random_patterns"] = self.random_patterns
            payload["seed"] = self.seed
        if self.collapse is not None:
            payload["collapse"] = self.collapse
        if self.dictionary is not None:
            payload["dictionary"] = self.dictionary
        if self.sanitize:
            payload["sanitize"] = self.sanitize
        if self.max_cycles is not None:
            payload["max_cycles"] = self.max_cycles
        if self.idempotency_key is not None:
            payload["idempotency_key"] = self.idempotency_key
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.max_attempts is not None:
            payload["max_attempts"] = self.max_attempts
        if self.word_width is not None:
            payload["word_width"] = self.word_width
        return payload

    def circuit_source(self) -> Tuple[object, ...]:
        """Hashable identity of the circuit source (the batcher's key base)."""
        if self.netlist is not None:
            return ("inline", self.netlist)
        return ("named", self.circuit, self.scale)

    def group_key(self) -> Tuple[object, ...]:
        """Jobs sharing this key are batched onto one circuit instantiation.

        The key is the circuit source plus the engine configuration —
        everything that determines the parse/levelize/LUT setup a batch
        amortizes — and deliberately not the vectors or fault universe,
        which vary freely within a batch.
        """
        return self.circuit_source() + (self.engine, self.transition)

    def engine_label(self) -> str:
        """The engine name a direct CLI run would report for this spec."""
        return "csim-TV" if self.transition else self.engine


@dataclass
class ResolvedJob:
    """A spec materialized into engine-ready objects.

    With ``spec.collapse`` set, ``faults`` holds the class
    *representatives* and ``collapsed`` the expansion map the worker
    applies to the finished result before serialization.
    """

    spec: JobSpec
    circuit: Circuit
    tests: TestSequence
    faults: List[Fault] = field(default_factory=list)
    collapsed: Optional["CollapsedUniverse"] = None


class SpecResolver:
    """Materializes specs, memoizing circuit loads in a bounded LRU.

    ``capacity`` bounds how many distinct circuit sources stay resident;
    an interleaved multi-circuit workload with a small capacity thrashes
    the cache, which is exactly what request batching exists to prevent.
    """

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("resolver capacity must be >= 1")
        self.capacity = capacity
        self._circuits: "OrderedDict[Tuple[object, ...], Circuit]" = OrderedDict()
        self._collapses: "OrderedDict[Tuple[object, ...], CollapsedUniverse]" = (
            OrderedDict()
        )
        self.loads = 0

    def circuit_for(self, spec: JobSpec) -> Circuit:
        key = spec.circuit_source()
        cached = self._circuits.get(key)
        if cached is not None:
            self._circuits.move_to_end(key)
            return cached
        self.loads += 1
        if spec.netlist is not None:
            try:
                circuit = parse_bench(spec.netlist, name="inline")
            except NetlistError as exc:
                raise SpecError(f"bad inline netlist: {exc}") from None
        else:
            assert spec.circuit is not None
            try:
                circuit = load_circuit(spec.circuit, scale=spec.scale)
            except (NetlistError, FileNotFoundError, ValueError) as exc:
                raise SpecError(str(exc)) from None
        self._circuits[key] = circuit
        while len(self._circuits) > self.capacity:
            self._circuits.popitem(last=False)
        return circuit

    def resolve(self, spec: JobSpec) -> ResolvedJob:
        circuit = self.circuit_for(spec)
        if spec.vectors is not None:
            try:
                tests = parse_vectors(spec.vectors, circuit)
            except ValueError as exc:
                raise SpecError(f"bad vectors: {exc}") from None
            if len(tests) == 0:
                raise SpecError("'vectors' contains no vectors")
        else:
            tests = random_sequence(circuit, spec.random_patterns, seed=spec.seed)
        if spec.collapse is not None:
            # Collapsing targets the *full* universe: the job simulates the
            # representatives and the worker expands the result back, so
            # the serialized blob matches a full-universe run exactly.
            universe = list(
                all_transition_faults(circuit)
                if spec.transition
                else all_stuck_at_faults(circuit)
            )
        else:
            universe = list(
                all_transition_faults(circuit)
                if spec.transition
                else stuck_at_universe(circuit)
            )
        if spec.prune_untestable:
            from repro.analyze import prune_untestable

            universe = list(prune_untestable(circuit, universe).kept)
        collapsed: Optional["CollapsedUniverse"] = None
        if spec.collapse is not None:
            collapsed = self._collapsed_for(spec, circuit, universe)
            universe = list(collapsed.representatives)
        return ResolvedJob(
            spec=spec,
            circuit=circuit,
            tests=tests,
            faults=universe,
            collapsed=collapsed,
        )

    def _collapsed_for(
        self, spec: JobSpec, circuit: Circuit, universe: List[Fault]
    ) -> "CollapsedUniverse":
        """The collapse map for one spec, memoized with the circuit LRU.

        The map is a pure function of the circuit source and the analysis
        options, so batched queue-mates sharing a parsed circuit share its
        collapse map too — the static pass runs once per batch, not once
        per job.
        """
        key = spec.circuit_source() + (
            spec.transition,
            spec.prune_untestable,
            spec.collapse,
        )
        cached = self._collapses.get(key)
        if cached is not None:
            self._collapses.move_to_end(key)
            return cached
        from repro.analyze import collapse_universe

        assert spec.collapse is not None
        collapsed = collapse_universe(
            circuit, universe, mode=spec.collapse, transition=spec.transition
        )
        self._collapses[key] = collapsed
        while len(self._collapses) > self.capacity:
            self._collapses.popitem(last=False)
        return collapsed
