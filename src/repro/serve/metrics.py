"""Service metrics: what ``/metrics`` reports.

The vocabulary extends the :mod:`repro.obs` telemetry one level up: where
a :class:`repro.obs.Telemetry` describes one run from inside (per-cycle
series, per-gate churn), :class:`ServiceMetrics` describes the serving
layer around many runs — queue depth, batch sizes, cache hit rate, and
per-phase latency histograms (queue wait, setup, simulate, serialize).
The engine-level work counters of every executed job are aggregated into
one :class:`repro.result.WorkCounters` total, so the two layers reconcile:
the service's ``counters`` are the sum of its jobs' telemetry totals.

Everything is JSON-safe through :meth:`ServiceMetrics.snapshot`, the same
contract :meth:`repro.obs.Telemetry.summary_dict` keeps.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.result import WorkCounters


def service_version() -> str:
    """The running package version (installed distribution or source tree)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        try:
            return version("repro")
        except PackageNotFoundError:
            pass
    except ImportError:  # pragma: no cover - Python < 3.8
        pass
    from repro import __version__

    return str(__version__)

#: Geometric latency bucket upper bounds, in seconds.
LATENCY_BUCKETS = tuple(
    round(base * scale, 6)
    for scale in (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)
    for base in (1.0, 2.0, 5.0)
) + (float("inf"),)

#: The job phases the service times, in order.  ``diagnose`` covers one
#: ``/diagnose`` query end to end; ``dictionary_build`` the encode step of
#: a dictionary job (the simulation itself lands in ``simulate``).
PHASES = ("queue_wait", "setup", "simulate", "serialize", "diagnose",
          "dictionary_build")


class LatencyHistogram:
    """Fixed-bucket latency histogram with approximate percentiles."""

    def __init__(self) -> None:
        self.counts = [0] * len(LATENCY_BUCKETS)
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(LATENCY_BUCKETS, seconds)] += 1
        self.total += 1
        self.sum_seconds += seconds

    def percentile(self, fraction: float) -> float:
        """The upper bound of the bucket holding the p-th observation."""
        if not self.total:
            return 0.0
        rank = max(1, int(fraction * self.total + 0.5))
        seen = 0
        for bound, count in zip(LATENCY_BUCKETS, self.counts):
            seen += count
            if seen >= rank:
                return bound
        return LATENCY_BUCKETS[-1]

    def snapshot(self) -> dict:
        buckets = {
            ("+inf" if bound == float("inf") else f"{bound:g}"): count
            for bound, count in zip(LATENCY_BUCKETS, self.counts)
            if count
        }
        return {
            "count": self.total,
            "sum_seconds": self.sum_seconds,
            "p50_seconds": self.percentile(0.50),
            "p95_seconds": self.percentile(0.95),
            "buckets": buckets,
        }


class ServiceMetrics:
    """Thread-safe counters and histograms for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        self.jobs_rejected = 0
        self.jobs_simulated = 0
        self.jobs_retried = 0
        self.jobs_dead_lettered = 0
        self.jobs_resurrected = 0
        self.lease_expirations = 0
        self.lease_renewals = 0
        self.lease_losses = 0
        self.reaper_runs = 0
        self.reaper_last_run = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.diagnose_requests = 0
        self.diagnose_dictionary_hits = 0
        self.diagnose_dictionary_misses = 0
        self.dictionaries_built = 0
        self.batches = 0
        self.batch_size_counts: Dict[int, int] = {}
        self.phase_latency: Dict[str, LatencyHistogram] = {
            phase: LatencyHistogram() for phase in PHASES
        }
        self.counters = WorkCounters()

    # -- recording ------------------------------------------------------

    def submitted(self) -> None:
        with self._lock:
            self.jobs_submitted += 1

    def rejected(self) -> None:
        with self._lock:
            self.jobs_rejected += 1

    def cancelled(self) -> None:
        with self._lock:
            self.jobs_cancelled += 1

    def cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def diagnose_request(self, dictionary_hit: bool) -> None:
        """One ``/diagnose`` query; *dictionary_hit* is the cache outcome."""
        with self._lock:
            self.diagnose_requests += 1
            if dictionary_hit:
                self.diagnose_dictionary_hits += 1
            else:
                self.diagnose_dictionary_misses += 1

    def dictionary_built(self) -> None:
        """A worker finished building (and encoding) a fault dictionary."""
        with self._lock:
            self.dictionaries_built += 1

    def batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batch_size_counts[size] = self.batch_size_counts.get(size, 0) + 1

    def completed(self, simulated: bool, counters: Optional[WorkCounters]) -> None:
        with self._lock:
            self.jobs_completed += 1
            if simulated:
                self.jobs_simulated += 1
            if counters is not None:
                self.counters.cycles += counters.cycles
                self.counters.good_evaluations += counters.good_evaluations
                self.counters.fault_evaluations += counters.fault_evaluations
                self.counters.element_visits += counters.element_visits
                self.counters.events += counters.events
                self.counters.gates_scheduled += counters.gates_scheduled

    def failed(self) -> None:
        with self._lock:
            self.jobs_failed += 1

    def retried(self) -> None:
        """A transient failure (or expired lease) was re-queued."""
        with self._lock:
            self.jobs_retried += 1

    def dead_lettered(self) -> None:
        """A job exhausted its retry budget and entered ``dead``."""
        with self._lock:
            self.jobs_dead_lettered += 1

    def resurrected(self) -> None:
        """A dead or failed job was explicitly re-queued."""
        with self._lock:
            self.jobs_resurrected += 1

    def lease_expired(self) -> None:
        with self._lock:
            self.lease_expirations += 1

    def lease_renewed(self) -> None:
        with self._lock:
            self.lease_renewals += 1

    def lease_lost(self) -> None:
        """A worker finished a job whose lease it no longer owned."""
        with self._lock:
            self.lease_losses += 1

    def reaper_ran(self, at: float) -> None:
        with self._lock:
            self.reaper_runs += 1
            self.reaper_last_run = at

    def phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self.phase_latency[name].observe(seconds)

    # -- reporting ------------------------------------------------------

    def snapshot(
        self,
        queue_depth: int,
        queue_capacity: int,
        leases: Optional[dict] = None,
        draining: bool = False,
    ) -> dict:
        with self._lock:
            lookups = self.cache_hits + self.cache_misses
            sizes: List[int] = []
            for size, count in self.batch_size_counts.items():
                sizes.extend([size] * count)
            return {
                "version": service_version(),
                "started_at": self.started_at,
                "uptime_seconds": time.time() - self.started_at,
                "draining": draining,
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "completed": self.jobs_completed,
                    "simulated": self.jobs_simulated,
                    "failed": self.jobs_failed,
                    "cancelled": self.jobs_cancelled,
                    "rejected": self.jobs_rejected,
                    "retried": self.jobs_retried,
                    "dead_lettered": self.jobs_dead_lettered,
                    "resurrected": self.jobs_resurrected,
                },
                "queue": {
                    "depth": queue_depth,
                    "capacity": queue_capacity,
                    "saturation": (
                        queue_depth / queue_capacity if queue_capacity else 0.0
                    ),
                },
                "resilience": {
                    "retries": self.jobs_retried,
                    "dead_lettered": self.jobs_dead_lettered,
                    "resurrected": self.jobs_resurrected,
                    "lease_expirations": self.lease_expirations,
                    "lease_renewals": self.lease_renewals,
                    "lease_losses": self.lease_losses,
                    "reaper_runs": self.reaper_runs,
                    "reaper_last_run": self.reaper_last_run,
                },
                "leases": dict(leases)
                if leases is not None
                else {"active": 0, "oldest_age_seconds": 0.0},
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": self.cache_hits / lookups if lookups else 0.0,
                },
                "diagnosis": {
                    "requests": self.diagnose_requests,
                    "dictionary_hits": self.diagnose_dictionary_hits,
                    "dictionary_misses": self.diagnose_dictionary_misses,
                    "dictionaries_built": self.dictionaries_built,
                },
                "batch": {
                    "count": self.batches,
                    "mean_size": sum(sizes) / len(sizes) if sizes else 0.0,
                    "max_size": max(sizes) if sizes else 0,
                    "size_counts": {
                        str(size): count
                        for size, count in sorted(self.batch_size_counts.items())
                    },
                },
                "latency": {
                    phase: histogram.snapshot()
                    for phase, histogram in self.phase_latency.items()
                },
                "counters": asdict(self.counters),
            }
