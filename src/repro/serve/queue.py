"""The bounded, priority-ordered job queue with backpressure.

A :class:`JobQueue` holds job ids only — the durable truth lives in the
:class:`repro.serve.store.JobStore` — ordered by (priority descending,
submission order ascending).  The queue is *bounded*: pushing past
``capacity`` raises :class:`QueueFull`, which the API layer translates to
HTTP 429, so a traffic burst sheds load at the front door instead of
growing an unbounded backlog inside the service.

Cancellation is lazy: :meth:`cancel` marks the id and :meth:`pop` discards
marked entries, so cancel is O(1) and never reheapifies.
"""

from __future__ import annotations

import heapq
import threading
from typing import List, Optional, Set, Tuple


class QueueFull(RuntimeError):
    """The queue is at capacity; the submission was refused (HTTP 429)."""

    def __init__(self, capacity: int) -> None:
        super().__init__(f"job queue is full ({capacity} jobs); retry later")
        self.capacity = capacity


class JobQueue:
    """Thread-safe bounded priority queue of job ids."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        #: (-priority, sequence, job_id) min-heap.
        self._heap: List[Tuple[int, int, str]] = []
        self._cancelled: Set[str] = set()
        self._sequence = 0

    def push(self, job_id: str, priority: int = 0) -> None:
        with self._lock:
            if self._live_depth() >= self.capacity:
                raise QueueFull(self.capacity)
            self._sequence += 1
            heapq.heappush(self._heap, (-priority, self._sequence, job_id))
            self._not_empty.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[str]:
        """The highest-priority queued id, or ``None`` on timeout."""
        with self._not_empty:
            while True:
                job_id = self._pop_live_locked()
                if job_id is not None:
                    return job_id
                if not self._not_empty.wait(timeout=timeout):
                    return self._pop_live_locked()

    def pop_if(self, wanted: "frozenset[str]") -> Optional[str]:
        """Pop the best queued id that is in *wanted*, without blocking.

        The batcher uses this to drain queue-mates sharing a group key;
        ids not in *wanted* keep their positions.
        """
        with self._lock:
            candidates = [
                entry
                for entry in self._heap
                if entry[2] in wanted and entry[2] not in self._cancelled
            ]
            if not candidates:
                return None
            best = min(candidates)
            self._heap.remove(best)
            heapq.heapify(self._heap)
            return best[2]

    def cancel(self, job_id: str) -> bool:
        """Mark a queued id cancelled; False when it is not queued."""
        with self._lock:
            if any(
                entry_id == job_id and entry_id not in self._cancelled
                for _, _, entry_id in self._heap
            ):
                self._cancelled.add(job_id)
                return True
        return False

    def contains(self, job_id: str) -> bool:
        """Whether *job_id* is live in the queue (cancelled marks excluded).

        The reaper uses this to spot ``queued`` records that are *not*
        enqueued — stranded batch-mates of a killed worker, retries whose
        backoff elapsed, spillover from a full queue during recovery —
        and push them back.
        """
        with self._lock:
            return any(
                entry_id == job_id and entry_id not in self._cancelled
                for _, _, entry_id in self._heap
            )

    def depth(self) -> int:
        with self._lock:
            return self._live_depth()

    def _live_depth(self) -> int:
        return sum(1 for _, _, job_id in self._heap if job_id not in self._cancelled)

    def _pop_live_locked(self) -> Optional[str]:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._cancelled:
                self._cancelled.discard(job_id)
                continue
            return job_id
        return None
