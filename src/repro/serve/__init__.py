"""The fault-simulation service: queue, batcher, result cache, REST API.

This package turns the one-shot engines into a long-running serving
layer — the ROADMAP's "heavy traffic" direction — without touching their
semantics: every result returned through the service is bit-identical to
a direct CLI run of the same inputs.

* :mod:`repro.serve.spec` — validated job specifications and resolution.
* :mod:`repro.serve.store` — the persistent job store (atomic JSON records).
* :mod:`repro.serve.queue` — bounded priority queue with 429 backpressure.
* :mod:`repro.serve.batch` — request batching by (circuit, engine) key.
* :mod:`repro.serve.cache` — content-addressed result cache (sha256 of
  netlist + vectors + fault universe + options) and canonical result
  serialization.
* :mod:`repro.serve.service` — the service: workers, checkpointed
  execution through the robust/parallel runners, kill-and-resume recovery.
* :mod:`repro.serve.metrics` — queue/batch/cache/latency metrics.
* :mod:`repro.serve.api` — the stdlib-only REST API (``repro serve``).

Example (in-process, no HTTP)::

    from repro.serve import FaultSimService, ServeConfig

    service = FaultSimService(ServeConfig(state_dir="state"))
    record, _ = service.submit({"circuit": "s27", "random_patterns": 64})
    service.drain()
    print(service.result_bytes(record.job_id))
"""

from repro.serve.api import ServeHTTPServer, make_server
from repro.serve.batch import Batcher
from repro.serve.cache import ResultCache, cache_key, serialize_result
from repro.serve.metrics import ServiceMetrics
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.service import FaultSimService, ServeConfig
from repro.serve.spec import JobSpec, SpecError, SpecResolver
from repro.serve.store import JobRecord, JobStore

__all__ = [
    "Batcher",
    "FaultSimService",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "QueueFull",
    "ResultCache",
    "ServeConfig",
    "ServeHTTPServer",
    "ServiceMetrics",
    "SpecError",
    "SpecResolver",
    "cache_key",
    "make_server",
    "serialize_result",
]
