"""The content-addressed result cache and canonical result serialization.

A cache key is the SHA-256 of a canonical JSON document covering
everything that determines a simulation's outcome: the netlist (inline
text verbatim, or name + scale + structural fingerprint for library
circuits), the test vectors *in application order* (sequential circuits
make order semantic), the resolved fault universe, and the engine
options.  Anything that cannot change the outcome — worker sharding
(``jobs``/``shard_strategy``), priorities, idempotency keys — is
deliberately excluded, so a duplicate submission hits the cache no matter
how it asks to be scheduled.

Results are serialized by :func:`serialize_result` into canonical JSON
(sorted keys, no whitespace, no wall-clock or host-dependent fields), so
two bit-identical outcomes produce byte-identical documents and a cache
hit returns exactly the bytes the first run stored.

Entries live as ``<key>.json`` files under the service state directory,
written atomically (temp file + ``os.replace``) so a killed worker never
leaves a torn cache entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Iterable, List, Optional

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, fault_name
from repro.logic.values import value_to_char
from repro.patterns.vectors import TestSequence
from repro.result import FaultSimResult
from repro.robust.checkpoint import circuit_fingerprint
from repro.serve.spec import JobSpec


def _canonical(document: object) -> bytes:
    return json.dumps(document, sort_keys=True, separators=(",", ":")).encode()


def cache_key(
    spec: JobSpec,
    circuit: Circuit,
    tests: TestSequence,
    faults: Iterable[Fault],
) -> str:
    """The content address of one resolved job's result."""
    if spec.netlist is not None:
        netlist: object = ["inline", spec.netlist]
    else:
        netlist = ["named", spec.circuit, spec.scale, circuit_fingerprint(circuit)]
    material = {
        "netlist": netlist,
        "vectors": [
            "".join(value_to_char(value) for value in vector) for vector in tests
        ],
        "faults": sorted(
            f"{fault.gate}:{fault.pin}:{fault.kind.value}" for fault in faults
        ),
        # ``collapse`` joins the key even though an expanded result matches
        # a full-universe run: the *faults* field above holds the resolved
        # list (representatives under collapse), so without the option a
        # collapsed and an uncollapsed submission over coincidentally equal
        # lists could alias.  ``sanitize`` is deliberately absent — like
        # ``word_width`` it can never change detections, only check them.
        "options": {
            "engine": spec.engine_label(),
            "transition": spec.transition,
            "prune_untestable": spec.prune_untestable,
            "collapse": spec.collapse,
            "max_cycles": spec.max_cycles,
        },
    }
    if spec.dictionary is not None:
        # A dictionary job's blob is a repro-dict/1 artifact, not a
        # detection document; the key joins only when set so plain
        # simulation keys are unchanged.
        material["options"]["dictionary"] = spec.dictionary
    return hashlib.sha256(_canonical(material)).hexdigest()


def serialize_result(result: FaultSimResult, circuit: Circuit) -> bytes:
    """Canonical JSON for one result: deterministic fields only.

    Wall time, memory-model figures and work counters are excluded — they
    vary with the host and with ``jobs`` sharding while the *outcome*
    (detections and their cycles) is guaranteed bit-identical.  Sorting is
    by fault site, the same deterministic order the engines use.
    """

    def detections(mapping: dict) -> List[dict]:
        return [
            {"fault": fault_name(circuit, fault), "cycle": cycle}
            for fault, cycle in sorted(mapping.items())
        ]

    document = {
        "engine": result.engine,
        "circuit": result.circuit_name,
        "num_faults": result.num_faults,
        "num_vectors": result.num_vectors,
        "num_detected": result.num_detected,
        "coverage": result.coverage,
        "detected": detections(result.detected),
        "potentially_detected": detections(result.potentially_detected),
        "truncated": result.truncated,
        "truncation_reason": result.truncation_reason,
    }
    return _canonical(document)


class ResultCache:
    """A directory of atomically written, content-addressed result blobs."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, key: str, blob: bytes) -> None:
        fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self._path(key))
