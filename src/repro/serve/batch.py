"""Request batching: coalesce queue-mates onto one circuit instantiation.

When a worker claims work it takes the head of the queue and then drains
every *currently queued* job sharing the head's group key — the circuit
source plus engine configuration (:meth:`repro.serve.spec.JobSpec.group_key`)
— up to ``max_batch``.  The whole batch then executes against a single
parsed, levelized circuit object, amortizing netlist parse, levelization
and the per-circuit evaluation-LUT/macro setup that otherwise repeat per
job; fully identical jobs inside a batch additionally collapse onto one
simulation through the result cache.

Batching never reorders across priorities at the batch head (the head is
always the best queued job) and never waits for more work to arrive — a
lone job runs immediately in a batch of one.  Disabling batching
(``max_batch=1``) is the benchmark's ablation baseline.
"""

from __future__ import annotations

from typing import List

from repro.serve.queue import JobQueue
from repro.serve.spec import JobSpec
from repro.serve.store import JobRecord, JobStore


class Batcher:
    """Forms batches of queued jobs sharing a (circuit, engine) group key."""

    def __init__(self, store: JobStore, max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store = store
        self.max_batch = max_batch

    def take(self, queue: JobQueue, head_id: str) -> List[JobRecord]:
        """The batch led by *head_id*: the head plus matching queue-mates."""
        head = self.store.get(head_id)
        if head is None or head.state != "queued":
            # Vanished, cancelled, or a double-enqueued id whose first pop
            # already ran it; nothing to run.
            return []
        batch = [head]
        if self.max_batch == 1:
            return batch
        key = JobSpec.from_payload(head.spec).group_key()
        wanted = frozenset(
            record.job_id
            for record in self.store.all_records()
            if record.state == "queued"
            and record.job_id != head_id
            and JobSpec.from_payload(record.spec).group_key() == key
        )
        while len(batch) < self.max_batch:
            mate_id = queue.pop_if(wanted)
            if mate_id is None:
                break
            mate = self.store.get(mate_id)
            if mate is not None:
                batch.append(mate)
        return batch
