"""Structural fault collapsing with full-universe expansion.

The paper's concurrent machinery spends its time walking per-gate fault
element lists, so the cheapest speedup available is simulating fewer
faults.  This pass computes, purely statically over the levelized netlist:

* **equivalence classes** — the classic gate-local rules (AND input
  ``s-a-0`` ≡ output ``s-a-0``, NOT input ``s-a-v`` ≡ output
  ``s-a-(1-v)``, buffer/inverter chains folded transitively through
  singly-loaded stems), which produce *functionally identical* faulty
  machines: every member of a class is detected on exactly the same cycle
  (and potentially-detected on the same cycle) as its representative, in
  two- and three-valued simulation alike.  Expansion through the class map
  is therefore **exact** — bit-identical to simulating the full universe.
* **dominance relations** — fanout-free-region dominators (AND output
  ``s-a-1`` dominates each input ``s-a-1``, composed transitively through
  the equivalence classes that chain an FFR's internal stems).  Dominance
  is a single-time-frame theorem: on a sequential circuit the dominator's
  faulty machine accumulates its *own* state history and can self-mask
  on the very cycle the dominated fault reaches a primary output, so
  inheritance is only a *proposal*.  :func:`expand_verified` therefore
  re-simulates every proposed fault against the serial oracle and keeps
  only confirmed detections (with the oracle's exact cycles) — expansion
  never over-claims; faults whose impliers never fired simply stay
  undetected, the conservative undercount dominance trades for the
  smaller representative set.  :func:`audit_expansion` remains as the
  independent spot-check of the raw proposals.

Unlike :func:`repro.faults.collapse.representative_map` — which only
unions faults that are both present in the given list — this pass unions
through *off-universe* sites as well (equivalence is transitive, so two
input-pin faults may be equivalent via an output-line fault nobody asked
to simulate).  That is what lets the transition-fault universe, which has
no output-line faults at all, still collapse through inverter and buffer
chains.

Faults are never merged across flip-flop boundaries: a D-pin fault is
observed one cycle later than the matching Q fault, and the simulators
report first-detection times.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.faults.model import OUTPUT_PIN, Fault, StuckAtFault
from repro.faults.transition import TransitionFault, all_transition_faults
from repro.faults.universe import all_stuck_at_faults
from repro.logic.tables import GateType
from repro.result import Failure, FaultSimResult

#: Recognised collapse modes, least to most aggressive.
COLLAPSE_MODES = ("equivalence", "dominance")

#: Controlling input value and the equivalent output value, per gate type.
_EQUIVALENCE_RULES = {
    GateType.AND: (0, 0),
    GateType.NAND: (0, 1),
    GateType.OR: (1, 1),
    GateType.NOR: (1, 0),
}

#: (input stuck value, dominating output stuck value) per gate type.
_DOMINANCE_RULES = {
    GateType.AND: (1, 1),
    GateType.NAND: (1, 0),
    GateType.OR: (0, 0),
    GateType.NOR: (0, 1),
}


class _UnionFind:
    """Union-find over arbitrary fault objects, growing on demand."""

    def __init__(self) -> None:
        self._parent: Dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: Fault, right: Fault) -> None:
        self._parent[self.find(left)] = self.find(right)


def _single_loads(circuit: Circuit) -> List[Tuple[int, int, int]]:
    """(stem gate, sink gate, sink pin) for every singly-loaded stem.

    Stems that are primary outputs are skipped (the stem fault is observed
    directly at sampling, the branch fault is not), as are stems feeding a
    flip-flop (never collapse across a clock boundary).
    """
    loads: Dict[int, List[Tuple[int, int]]] = {g.index: [] for g in circuit.gates}
    for gate in circuit.gates:
        for pin, source in enumerate(gate.fanin):
            loads[source].append((gate.index, pin))
    edges: List[Tuple[int, int, int]] = []
    for gate in circuit.gates:
        pins = loads[gate.index]
        if len(pins) != 1 or gate.is_output:
            continue
        sink_gate, sink_pin = pins[0]
        if circuit.gates[sink_gate].gtype is GateType.DFF:
            continue
        edges.append((gate.index, sink_gate, sink_pin))
    return edges


def _stuck_at_union(circuit: Circuit) -> _UnionFind:
    """Equivalence union over every structural stuck-at site."""
    uf = _UnionFind()
    for gate in circuit.gates:
        rule = _EQUIVALENCE_RULES.get(gate.gtype)
        if rule is not None:
            controlling, output_value = rule
            out = StuckAtFault.make(gate.index, OUTPUT_PIN, output_value)
            for pin in range(gate.arity):
                uf.union(StuckAtFault.make(gate.index, pin, controlling), out)
        elif gate.gtype is GateType.NOT:
            for value in (0, 1):
                uf.union(
                    StuckAtFault.make(gate.index, 0, value),
                    StuckAtFault.make(gate.index, OUTPUT_PIN, 1 - value),
                )
        elif gate.gtype is GateType.BUF:
            for value in (0, 1):
                uf.union(
                    StuckAtFault.make(gate.index, 0, value),
                    StuckAtFault.make(gate.index, OUTPUT_PIN, value),
                )
    for stem, sink_gate, sink_pin in _single_loads(circuit):
        for value in (0, 1):
            uf.union(
                StuckAtFault.make(stem, OUTPUT_PIN, value),
                StuckAtFault.make(sink_gate, sink_pin, value),
            )
    return uf


def _transition_union(circuit: Circuit) -> _UnionFind:
    """Equivalence union over transition-fault sites.

    Only machine-identical rules apply — a slow line is the same slow line
    wherever the model attaches the fault, so inverters swap the direction
    (input ``STR`` ≡ output ``STF``), buffers keep it, and singly-loaded
    stems alias their branch pin.  Controlling-value rules of multi-input
    gates do *not* carry over: a slow input transition and a slow output
    transition gate different vector pairs.
    """
    uf = _UnionFind()
    for gate in circuit.gates:
        if gate.gtype is GateType.NOT:
            uf.union(
                TransitionFault.make(gate.index, 0, rise=True),
                TransitionFault.make(gate.index, OUTPUT_PIN, rise=False),
            )
            uf.union(
                TransitionFault.make(gate.index, 0, rise=False),
                TransitionFault.make(gate.index, OUTPUT_PIN, rise=True),
            )
        elif gate.gtype is GateType.BUF:
            for rise in (True, False):
                uf.union(
                    TransitionFault.make(gate.index, 0, rise=rise),
                    TransitionFault.make(gate.index, OUTPUT_PIN, rise=rise),
                )
    for stem, sink_gate, sink_pin in _single_loads(circuit):
        for rise in (True, False):
            uf.union(
                TransitionFault.make(stem, OUTPUT_PIN, rise=rise),
                TransitionFault.make(sink_gate, sink_pin, rise=rise),
            )
    return uf


@dataclass(frozen=True)
class CollapsedUniverse:
    """One representative per fault class, plus the way back.

    ``member_to_rep`` maps every universe fault in an *exact* class to its
    kept representative: equivalent machines are identical, so the member
    inherits the representative's detection (and potential-detection)
    cycles verbatim.  ``implied_by`` holds the dominance-dropped faults:
    each maps to the kept representatives whose detection *proposes* its
    own.  Proposals are combinationally sound but sequentially heuristic,
    so :meth:`expand` refuses maps that carry them — dominance results
    must go through :func:`expand_verified`, which confirms every
    proposal against the serial oracle before claiming it.
    """

    mode: str
    transition: bool
    universe: Tuple[Fault, ...]
    representatives: Tuple[Fault, ...]
    member_to_rep: Dict[Fault, Fault]
    implied_by: Dict[Fault, Tuple[Fault, ...]]

    @property
    def num_universe(self) -> int:
        return len(self.universe)

    @property
    def num_representatives(self) -> int:
        return len(self.representatives)

    @property
    def num_conservative(self) -> int:
        """Universe faults whose expansion is dominance-based (heuristic)."""
        return len(self.implied_by)

    @property
    def ratio(self) -> float:
        """Fraction of the universe removed by collapsing, in [0, 1]."""
        if not self.universe:
            return 0.0
        return 1.0 - self.num_representatives / self.num_universe

    def summary(self) -> str:
        kind = "transition" if self.transition else "stuck-at"
        text = (
            f"collapse[{self.mode}] {kind}: {self.num_universe} -> "
            f"{self.num_representatives} representatives "
            f"({100.0 * self.ratio:.1f}% reduction)"
        )
        if self.implied_by:
            text += f", {self.num_conservative} dominance-expanded"
        return text

    def fingerprint_material(self) -> Tuple:
        """Deterministic token binding checkpoints to this exact map.

        A resumed run must replay the same representatives *and* the same
        expansion; hashing the full map (not just the flag) catches a
        netlist or rule change between checkpoint and resume.
        """
        digest = hashlib.sha256()
        for member in self.universe:
            rep = self.member_to_rep.get(member)
            if rep is not None:
                entry = f"{member._sort_key()}={rep._sort_key()};"
            else:
                impliers = ",".join(
                    str(f._sort_key()) for f in self.implied_by[member]
                )
                entry = f"{member._sort_key()}<[{impliers}];"
            digest.update(entry.encode("ascii"))
        return ("collapse", self.mode, digest.hexdigest())

    def _expand_map(
        self,
        cycles: Dict[Fault, int],
        inherited: Optional[Dict[Fault, int]] = None,
    ) -> Dict[Fault, int]:
        expanded: List[Tuple[int, Fault]] = []
        for member in self.universe:
            rep = self.member_to_rep.get(member)
            if rep is not None:
                cycle = cycles.get(rep)
                if cycle is not None:
                    expanded.append((cycle, member))
            elif inherited is not None and member in inherited:
                expanded.append((inherited[member], member))
        expanded.sort()
        return {fault: cycle for cycle, fault in expanded}

    def expand(self, result: FaultSimResult) -> FaultSimResult:
        """Rewrite a representatives-only result onto the full universe.

        Detections are rebuilt in (cycle, fault) order — the same
        deterministic convention :func:`repro.parallel.merge.merge_results`
        uses — and ``num_faults`` becomes the universe size so coverage
        denominators match an uncollapsed run.  Work counters, memory and
        wall time are left as measured: they describe the work actually
        done, which is the point of collapsing.

        Only exact (equivalence) maps may expand this way; a map carrying
        dominance proposals is refused because inheriting them unverified
        can claim detections the full run never makes on a sequential
        circuit — use :func:`expand_verified`.
        """
        if self.implied_by:
            raise ValueError(
                "dominance expansion must be confirmed against the serial "
                "oracle; use repro.analyze.expand_verified"
            )
        return replace(
            result,
            num_faults=self.num_universe,
            detected=self._expand_map(result.detected),
            potentially_detected=self._expand_map(result.potentially_detected),
        )

    def expand_responses(
        self, responses: Dict[Fault, Tuple[Failure, ...]]
    ) -> Dict[Fault, Tuple[Failure, ...]]:
        """Rewrite a representatives-only response map onto the universe.

        Equivalent machines are identical, so every class member inherits
        its representative's full failing-response tuple verbatim — the
        exactness theorem that makes collapsed fault dictionaries
        bit-identical to full-universe ones.  Dominance maps are refused
        outright: dominance argues *detection*, never the response shape,
        so a dictionary built over a dominance-collapsed universe would
        attribute the dominator's responses to faults that fail
        differently.  The result is keyed in sorted fault order.
        """
        if self.implied_by:
            raise ValueError(
                "fault-dictionary responses cannot be expanded through "
                "dominance; build dictionaries with equivalence collapsing"
            )
        expanded: Dict[Fault, Tuple[Failure, ...]] = {}
        for member in self.universe:
            rep = self.member_to_rep[member]
            expanded[member] = responses.get(rep, ())
        return expanded

    def conservative_detections(self, result: FaultSimResult) -> Dict[Fault, int]:
        """Dominance detection *proposals*: fault -> earliest implier cycle.

        ``result`` is the *representatives* result, pre-expansion.  These
        are the claims the exactness theorem does not cover — the oracle
        worklist of :func:`expand_verified` and :func:`audit_expansion`.
        """
        out: Dict[Fault, int] = {}
        for member, impliers in self.implied_by.items():
            implied = [result.detected[f] for f in impliers if f in result.detected]
            if implied:
                out[member] = min(implied)
        return dict(sorted(out.items(), key=lambda item: (item[1], item[0])))


def _dominance_drops(
    circuit: Circuit,
    rep_of: Dict[Fault, Fault],
    uf: _UnionFind,
) -> Dict[Fault, Tuple[Fault, ...]]:
    """Representatives droppable by dominance -> the reps implying them.

    ``rep_of`` maps every *universe* fault to its equivalence
    representative; sites outside the universe resolve through ``uf`` to a
    class that may or may not have a universe representative.  Chains are
    resolved transitively (an implier that is itself dropped is replaced by
    its own impliers), which is what composes dominance through a
    fanout-free region: the equivalence pass already aliases each internal
    stem to its branch pin, so gate-by-gate dominance plus transitive
    resolution yields the FFR-dominator relation.
    """
    universe_rep: Dict[Fault, Fault] = {}
    for member, rep in rep_of.items():
        root = uf.find(member)
        best = universe_rep.get(root)
        if best is None or rep < best:
            universe_rep[root] = rep

    def site_rep(fault: Fault) -> Optional[Fault]:
        return universe_rep.get(uf.find(fault))

    raw: Dict[Fault, List[Fault]] = {}
    for gate in circuit.gates:
        rule = _DOMINANCE_RULES.get(gate.gtype)
        if rule is None or gate.arity < 2:
            continue
        input_value, output_value = rule
        dominator = site_rep(StuckAtFault.make(gate.index, OUTPUT_PIN, output_value))
        if dominator is None:
            continue
        impliers = sorted(
            {
                rep
                for pin in range(gate.arity)
                for rep in [site_rep(StuckAtFault.make(gate.index, pin, input_value))]
                if rep is not None and rep != dominator
            }
        )
        if impliers:
            raw.setdefault(dominator, []).extend(impliers)

    resolved: Dict[Fault, Tuple[Fault, ...]] = {}

    def resolve(fault: Fault, trail: frozenset) -> Optional[Tuple[Fault, ...]]:
        if fault not in raw:
            return (fault,)  # kept representative: terminal implier
        if fault in resolved:
            return resolved[fault]
        if fault in trail:
            return None  # defensive: a cycle would make the drop unsound
        flat: List[Fault] = []
        for implier in raw[fault]:
            sub = resolve(implier, trail | {fault})
            if sub is None:
                return None
            flat.extend(sub)
        final = tuple(sorted(set(flat)))
        resolved[fault] = final
        return final

    drops: Dict[Fault, Tuple[Fault, ...]] = {}
    for dominator in sorted(raw):
        final = resolve(dominator, frozenset())
        if final:
            drops[dominator] = final
    return drops


def collapse_universe(
    circuit: Circuit,
    faults: Optional[Iterable[Fault]] = None,
    *,
    mode: str = "equivalence",
    transition: bool = False,
) -> CollapsedUniverse:
    """Collapse a fault universe down to class representatives.

    ``faults`` defaults to the full uncollapsed universe
    (:func:`~repro.faults.universe.all_stuck_at_faults`, or
    :func:`~repro.faults.transition.all_transition_faults` with
    ``transition``); pass an explicit list — e.g. the survivors of
    ``--prune-untestable`` — to collapse just those.  ``mode`` is
    ``"equivalence"`` (exact expansion) or ``"dominance"`` (equivalence
    plus FFR-dominator drops with conservative expansion).
    """
    if mode not in COLLAPSE_MODES:
        raise ValueError(
            f"unknown collapse mode {mode!r}; expected one of {COLLAPSE_MODES}"
        )
    if faults is None:
        universe: List[Fault] = list(
            all_transition_faults(circuit) if transition else all_stuck_at_faults(circuit)
        )
    else:
        universe = list(faults)
    universe = sorted(set(universe))

    uf = _transition_union(circuit) if transition else _stuck_at_union(circuit)
    best_of_root: Dict[Fault, Fault] = {}
    for fault in universe:
        root = uf.find(fault)
        best = best_of_root.get(root)
        if best is None or fault < best:
            best_of_root[root] = fault
    rep_of = {fault: best_of_root[uf.find(fault)] for fault in universe}

    implied_by: Dict[Fault, Tuple[Fault, ...]] = {}
    if mode == "dominance" and not transition:
        drops = _dominance_drops(circuit, rep_of, uf)
        for member in universe:
            impliers = drops.get(rep_of[member])
            if impliers is not None:
                implied_by[member] = impliers
    member_to_rep = {
        member: rep for member, rep in rep_of.items() if member not in implied_by
    }
    representatives = tuple(sorted(set(member_to_rep.values())))
    return CollapsedUniverse(
        mode=mode,
        transition=transition,
        universe=tuple(universe),
        representatives=representatives,
        member_to_rep=member_to_rep,
        implied_by=implied_by,
    )


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a serial-oracle audit of conservative expansions."""

    checked: int
    confirmed: int
    refuted: Tuple[Fault, ...]

    @property
    def ok(self) -> bool:
        return not self.refuted

    def summary(self) -> str:
        if self.checked == 0:
            return "collapse audit: no dominance proposals to check"
        text = (
            f"collapse audit: {self.confirmed}/{self.checked} dominance "
            f"proposals confirmed by the serial oracle"
        )
        if self.refuted:
            text += f" ({len(self.refuted)} refuted)"
        return text


class CollapseAuditError(AssertionError):
    """A dominance-inherited detection the serial oracle could not confirm."""


def audit_expansion(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    collapsed: CollapsedUniverse,
    result: FaultSimResult,
    *,
    sample: int = 8,
    strict: bool = False,
) -> AuditReport:
    """Serially re-simulate a sample of dominance detection proposals.

    ``result`` is the *representatives* result (pre-expansion).  Up to
    ``sample`` faults whose detection ``implied_by`` proposes are re-run
    against the serial oracle; each must be detected (on any cycle —
    dominance argues detection, not the cycle).  Sampling is
    deterministic: evenly spaced over the (cycle, fault)-sorted worklist.
    ``strict`` raises :class:`CollapseAuditError` on any refutation.
    :func:`expand_verified` is the full (non-sampled) version whose
    confirmations actually drive expansion; this spot-check exists as an
    independent diagnostic of the raw proposal map.
    """
    from repro.baselines.serial import simulate_serial

    worklist = list(collapsed.conservative_detections(result))
    if sample > 0 and len(worklist) > sample:
        step = len(worklist) / sample
        worklist = [worklist[int(i * step)] for i in range(sample)]
    if not worklist:
        return AuditReport(checked=0, confirmed=0, refuted=())
    oracle = simulate_serial(circuit, vectors, worklist, drop_detected=True)
    refuted = tuple(f for f in worklist if f not in oracle.detected)
    report = AuditReport(
        checked=len(worklist),
        confirmed=len(worklist) - len(refuted),
        refuted=refuted,
    )
    if strict and refuted:
        raise CollapseAuditError(report.summary())
    return report


def expand_verified(
    circuit: Circuit,
    vectors: Sequence[Sequence[int]],
    collapsed: CollapsedUniverse,
    result: FaultSimResult,
) -> Tuple[FaultSimResult, AuditReport]:
    """Expand a representatives-only result, oracle-confirming dominance.

    Equivalence classes expand exactly, same as :meth:`expand`.  Every
    dominance-dropped fault whose impliers fired (detected *or*
    potentially detected) is re-simulated against the serial oracle, and
    only oracle-confirmed detections — at the oracle's exact cycles —
    make it into the expanded result; refuted proposals stay undetected.
    Because the engines are bit-identical to the serial baseline, the
    expanded detections are a subset of (and cycle-exact against) a
    full-universe run: dominance never over-claims, it only undercounts
    faults whose impliers the vectors missed.

    Returns the expanded result and an :class:`AuditReport` covering the
    whole proposal worklist (``refuted`` lists dropped detection claims).
    """
    if not collapsed.implied_by:
        return collapsed.expand(result), AuditReport(checked=0, confirmed=0, refuted=())
    from repro.baselines.serial import simulate_serial

    proposals = collapsed.conservative_detections(result)
    worklist = set(proposals)
    for member, impliers in collapsed.implied_by.items():
        if any(f in result.potentially_detected for f in impliers):
            worklist.add(member)
    inherited_detected: Dict[Fault, int] = {}
    inherited_potential: Dict[Fault, int] = {}
    refuted: Tuple[Fault, ...] = ()
    if worklist:
        oracle = simulate_serial(
            circuit, vectors, sorted(worklist), drop_detected=True
        )
        inherited_detected = dict(oracle.detected)
        inherited_potential = {
            fault: cycle
            for fault, cycle in oracle.potentially_detected.items()
            if fault not in inherited_detected
        }
        refuted = tuple(
            sorted(f for f in proposals if f not in inherited_detected)
        )
    expanded = replace(
        result,
        num_faults=collapsed.num_universe,
        detected=collapsed._expand_map(result.detected, inherited_detected),
        potentially_detected=collapsed._expand_map(
            result.potentially_detected, inherited_potential
        ),
    )
    report = AuditReport(
        checked=len(worklist),
        confirmed=len(inherited_detected),
        refuted=refuted,
    )
    return expanded, report
