"""Determinism lint: AST checks for nondeterminism hazards in the codebase.

The whole repository stakes its correctness story on bit-identical
replay: the same netlist, vectors and options must produce the same
detections on every engine, under every ``--jobs`` sharding, across a
kill/resume, and between a cache miss and a cache hit.  Three coding
patterns quietly break that guarantee long before a test notices:

``unseeded-random``
    A call through the *module-level* :mod:`random` API (``random.random()``,
    ``random.uniform()``, ...) draws from the interpreter-global RNG, whose
    state depends on everything else that ran in the process.  Seeded
    generator objects (``random.Random(seed)``) are fine and are the
    repo-wide convention (see :mod:`repro.patterns.random_gen`).

``wall-clock``
    ``time.time()`` (or ``datetime.now()``) inside an engine hot path
    couples simulation behaviour to the host clock.  Timing belongs in the
    harness and observability layers, which exclude it from canonical
    results; the engines themselves must be pure functions of their
    inputs.  Monotonic stopwatches (``time.perf_counter``) are allowed —
    they are only ever *reported*, never branched on — but the wall clock
    has no business below the harness.

``unordered-merge``
    Iterating a ``set`` (or a set operation result) in the ``parallel`` or
    ``serve`` layers makes merge order depend on hash seeding.  Shard
    merges and cache serialization must iterate in ``sorted(...)`` order —
    the same convention :func:`repro.parallel.merge.merge_results` and
    :func:`repro.serve.cache.serialize_result` follow.

A finding is suppressed by a trailing ``# codelint: ok`` comment on the
flagged line — the marker documents, in place, that a human decided the
use is benign (e.g. retry jitter in the serve layer, which perturbs
*scheduling*, never results).

Run as a module (CI does)::

    python -m repro.analyze.codelint [paths...]

Paths default to ``src/repro``; the exit status is the number of files
with findings, capped at 1, so the lint composes with ``&&`` chains.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

#: Marker that waives a finding on its own physical line.
SUPPRESS_MARKER = "# codelint: ok"

#: Module-level :mod:`random` attributes that touch the global RNG.  The
#: class constructors (``Random``, ``SystemRandom``) are deliberately
#: absent — instantiating a seeded generator is the *fix*, not the bug.
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: Packages whose modules are engine hot paths: wall-clock reads here are
#: findings.  Everything above the engines (harness, obs, serve) is free
#: to measure wall time because canonical results exclude it.
HOT_PATH_PACKAGES = ("concurrent", "vector", "baselines", "logic", "sim")

#: Packages where iteration order becomes output order: shard merging,
#: result serialization, and dictionary-artifact encoding.
ORDERED_MERGE_PACKAGES = ("parallel", "serve", "diagnosis")

#: ``set`` methods that return sets; iterating their result directly is
#: just as order-dependent as iterating a literal.
_SET_OPERATION_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


@dataclass(frozen=True)
class Finding:
    """One determinism hazard at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def _package_of(path: str) -> str:
    """The first package segment under ``repro`` for *path*, or ``""``."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        tail = parts[parts.index("repro") + 1 :]
        if len(tail) > 1:
            return tail[0]
    return ""


def _is_global_random_call(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
        and func.attr in _GLOBAL_RANDOM_FNS
    )


def _is_wall_clock_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    # time.time()
    if isinstance(func.value, ast.Name):
        if func.value.id == "time" and func.attr == "time":
            return True
        if func.value.id == "datetime" and func.attr in ("now", "utcnow", "today"):
            return True
    # datetime.datetime.now()
    if (
        isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "datetime"
        and func.value.attr in ("datetime", "date")
        and func.attr in ("now", "utcnow", "today")
    ):
        return True
    return False


def _is_set_expression(node: ast.expr) -> bool:
    """Whether *node* evaluates to a set with hash-dependent order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_OPERATION_METHODS
            and _is_set_expression(func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` etc. is only a set operation when a side provably is
        # one; integers share the operators, so require syntactic proof.
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, suppressed: Set[int]) -> None:
        self.path = path
        self.suppressed = suppressed
        self.package = _package_of(path)
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if line not in self.suppressed:
            self.findings.append(Finding(self.path, line, rule, message))

    def visit_Call(self, node: ast.Call) -> None:
        if _is_global_random_call(node):
            assert isinstance(node.func, ast.Attribute)
            self._flag(
                node,
                "unseeded-random",
                f"random.{node.func.attr}() draws from the process-global "
                "RNG; use a seeded random.Random instance",
            )
        if self.package in HOT_PATH_PACKAGES and _is_wall_clock_call(node):
            self._flag(
                node,
                "wall-clock",
                "wall-clock read in an engine hot path; engines must be "
                "pure functions of their inputs (time belongs in the "
                "harness/obs layers)",
            )
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.expr) -> None:
        if self.package in ORDERED_MERGE_PACKAGES and _is_set_expression(iterable):
            self._flag(
                iterable,
                "unordered-merge",
                "iteration over a set in a merge/serialization layer "
                "depends on hash order; wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _check_comprehensions(
        self, node: ast.expr, generators: Sequence[ast.comprehension]
    ) -> None:
        for comp in generators:
            self._check_iteration(comp.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehensions(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehensions(node, node.generators)
        self.generic_visit(node)


def _suppressed_lines(source: str) -> Set[int]:
    return {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if SUPPRESS_MARKER in text
    }


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns findings sorted by line."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 0
        return [Finding(path, line, "syntax-error", str(exc.msg))]
    visitor = _Visitor(path, _suppressed_lines(source))
    visitor.visit(tree)
    return sorted(visitor.findings, key=lambda f: (f.line, f.rule))


def lint_file(path: str) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def _python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(".py"):
                        yield os.path.join(root, name)
        else:
            yield path


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every ``.py`` file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for path in _python_files(paths):
        findings.extend(lint_file(path))
    return findings


def main(argv: Sequence[str] = ()) -> int:
    paths: Tuple[str, ...] = tuple(argv) or ("src/repro",)
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"codelint: {len(findings)} finding(s) "
            f"(suppress with '{SUPPRESS_MARKER}')",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
