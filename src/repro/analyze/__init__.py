"""Static analysis over circuits and fault universes.

Five tools, all usable before a single vector is simulated:

* :mod:`repro.analyze.lint` — severity-tiered netlist diagnostics with
  ``file:line`` locations (``repro lint``);
* :mod:`repro.analyze.scoap` + :mod:`repro.analyze.untestable` — SCOAP
  testability scores and sound structural pruning of provably
  undetectable faults (``--prune-untestable``);
* :mod:`repro.analyze.collapse` — equivalence/dominance fault collapsing
  with an exact expansion map back to the full universe (``--collapse``);
* :mod:`repro.analyze.sanitize` — the opt-in fault-list invariant
  checker for the concurrent engines (``--sanitize``);
* :mod:`repro.analyze.codelint` — the AST determinism lint for this
  codebase itself (unseeded randomness, wall clocks in hot paths,
  set-order-dependent merges), run in CI.
"""

from repro.analyze.collapse import (
    AuditReport,
    COLLAPSE_MODES,
    CollapseAuditError,
    CollapsedUniverse,
    audit_expansion,
    collapse_universe,
    expand_verified,
)
from repro.analyze.lint import (
    Diagnostic,
    SEVERITIES,
    has_findings,
    lint_bench_text,
    lint_circuit,
    lint_path,
    severity_rank,
    worst_severity,
)
from repro.analyze.sanitize import FaultListSanitizer, SanitizerError
from repro.analyze.scoap import INF, ScoapResult, scoap
from repro.analyze.untestable import (
    PruneReport,
    PrunedFault,
    constant_values,
    observable_gates,
    prune_untestable,
)

__all__ = [
    "AuditReport",
    "COLLAPSE_MODES",
    "CollapseAuditError",
    "CollapsedUniverse",
    "audit_expansion",
    "collapse_universe",
    "expand_verified",
    "Diagnostic",
    "SEVERITIES",
    "has_findings",
    "lint_bench_text",
    "lint_circuit",
    "lint_path",
    "severity_rank",
    "worst_severity",
    "FaultListSanitizer",
    "SanitizerError",
    "INF",
    "ScoapResult",
    "scoap",
    "PruneReport",
    "PrunedFault",
    "constant_values",
    "observable_gates",
    "prune_untestable",
]
