"""Static analysis over circuits and fault universes.

Three tools, all usable before a single vector is simulated:

* :mod:`repro.analyze.lint` — severity-tiered netlist diagnostics with
  ``file:line`` locations (``repro lint``);
* :mod:`repro.analyze.scoap` + :mod:`repro.analyze.untestable` — SCOAP
  testability scores and sound structural pruning of provably
  undetectable faults (``--prune-untestable``);
* :mod:`repro.analyze.sanitize` — the opt-in fault-list invariant
  checker for the concurrent engines (``--sanitize``).
"""

from repro.analyze.lint import (
    Diagnostic,
    SEVERITIES,
    has_findings,
    lint_bench_text,
    lint_circuit,
    lint_path,
    severity_rank,
    worst_severity,
)
from repro.analyze.sanitize import FaultListSanitizer, SanitizerError
from repro.analyze.scoap import INF, ScoapResult, scoap
from repro.analyze.untestable import (
    PruneReport,
    PrunedFault,
    constant_values,
    observable_gates,
    prune_untestable,
)

__all__ = [
    "Diagnostic",
    "SEVERITIES",
    "has_findings",
    "lint_bench_text",
    "lint_circuit",
    "lint_path",
    "severity_rank",
    "worst_severity",
    "FaultListSanitizer",
    "SanitizerError",
    "INF",
    "ScoapResult",
    "scoap",
    "PruneReport",
    "PrunedFault",
    "constant_values",
    "observable_gates",
    "prune_untestable",
]
