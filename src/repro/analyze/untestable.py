"""Structural-untestability analysis: prune provably-undetectable faults.

Two sound structural facts identify faults no pattern sequence can ever
detect — not even potentially (an X at an observed output):

* **Unobservable site** — if no path of fanout edges leads from the
  fault's site gate to any primary output, the faulty machine's divergence
  can never reach an observed line.  Fanout edges include flip-flop D
  inputs, so multi-cycle propagation through state is fully accounted for.
* **Constant masking** — three-valued constant propagation with *every*
  source (primary input and flip-flop) held at X computes, per line, a
  value that holds in every machine state of every cycle (monotonicity of
  the three-valued algebra: refining X inputs can only refine outputs).
  A fault that forces a line to the value the line provably always has —
  or whose forced pin provably never changes its gate's definite output —
  produces a faulty machine whose observable behaviour is identical to
  the good machine's.

Both facts hold uniformly across engines (csim variants, PROOFS, serial,
parallel shards): detection results on the *surviving* faults are
bit-identical to an unpruned run, because per-fault outcomes are
independent — the same property the fault-sharded parallel runner already
relies on.

Deliberately **not** used for pruning: SCOAP scores (finite vs. infinite
cost is a heuristic boundary, see :mod:`repro.analyze.scoap`) and any
flip-flop fixpoint refinement of the constant analysis (first-cycle
flip-flops genuinely hold X, so assuming settled constants for them would
be unsound for potential detections).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.faults.model import OUTPUT_PIN, Fault, FaultKind
from repro.logic.tables import COMBINATIONAL_TYPES
from repro.logic.values import ONE, X, ZERO

#: Reason codes attached to pruned faults.
UNOBSERVABLE = "unobservable"
CONSTANT_LINE = "constant-line"
MASKED = "masked-by-constant"


def observable_gates(circuit: Circuit) -> Set[int]:
    """Gate indices from which some primary output is structurally
    reachable (reverse reachability over fanin edges, which crosses
    flip-flops through their D pins)."""
    reachable: Set[int] = set(circuit.outputs)
    stack: List[int] = list(circuit.outputs)
    gates = circuit.gates
    while stack:
        index = stack.pop()
        for source in gates[index].fanin:
            if source not in reachable:
                reachable.add(source)
                stack.append(source)
    return reachable


def constant_values(circuit: Circuit) -> List[int]:
    """Per-gate three-valued value under all-X sources, one settle pass.

    A definite entry is the value the line holds in every reachable state
    of every machine; ``X`` means "varies or unknown".  Sources stay X by
    construction (no flip-flop refinement — see the module docstring).
    """
    values = [X] * len(circuit.gates)
    gates = circuit.gates
    for index in circuit.order:
        gate = gates[index]
        values[index] = evaluate_gate(gate, [values[s] for s in gate.fanin])
    return values


@dataclass(frozen=True)
class PrunedFault:
    """One pruned fault and the structural reason it can never be seen."""

    fault: Fault
    reason: str


@dataclass
class PruneReport:
    """Outcome of :func:`prune_untestable` over one fault list."""

    circuit_name: str
    kept: List[Fault] = field(default_factory=list)
    pruned: List[PrunedFault] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.kept) + len(self.pruned)

    @property
    def reduction(self) -> float:
        """Fraction of the universe removed (0.0 when the list was empty)."""
        return len(self.pruned) / self.total if self.total else 0.0

    def summary(self) -> str:
        return (
            f"pruned {len(self.pruned)}/{self.total} faults "
            f"({100.0 * self.reduction:.1f}%) from {self.circuit_name!r}"
        )


def _prune_reason_stuck_at(
    circuit: Circuit, fault: Fault, observable: Set[int], constants: Sequence[int]
) -> str:
    gate = circuit.gates[fault.gate]
    if fault.gate not in observable:
        return UNOBSERVABLE
    forced = ZERO if fault.kind is FaultKind.STUCK_AT_0 else ONE
    if fault.pin == OUTPUT_PIN:
        if constants[fault.gate] == forced:
            return CONSTANT_LINE
        return ""
    driver = gate.fanin[fault.pin]
    if constants[driver] == forced:
        # The forcing never changes the pin's value: identical machines.
        return CONSTANT_LINE
    if gate.gtype in COMBINATIONAL_TYPES:
        inputs = [constants[s] for s in gate.fanin]
        normal = evaluate_gate(gate, inputs)
        inputs[fault.pin] = forced
        faulty = evaluate_gate(gate, inputs)
        if normal == faulty and normal != X:
            # The gate's definite output provably absorbs the stuck pin.
            return MASKED
    return ""


def _prune_reason_transition(
    circuit: Circuit, fault: Fault, observable: Set[int], constants: Sequence[int]
) -> str:
    if fault.gate not in observable:
        return UNOBSERVABLE
    if fault.pin == OUTPUT_PIN:
        line = fault.gate
    else:
        line = circuit.gates[fault.gate].fanin[fault.pin]
    # A line that provably never leaves v cannot exhibit a delayed edge in
    # the direction the fault slows: slow-to-rise on a constant-0 line and
    # slow-to-fall on a constant-1 line hold the line at the value it has
    # anyway (including against the initial-X previous value, where
    # Table 1 yields exactly the settled constant).  The mirror cases
    # (e.g. STR on a constant-1 line) are kept: the X power-up state can
    # produce a divergent potential detection.
    if fault.kind is FaultKind.SLOW_TO_RISE and constants[line] == ZERO:
        return CONSTANT_LINE
    if fault.kind is FaultKind.SLOW_TO_FALL and constants[line] == ONE:
        return CONSTANT_LINE
    return ""


def prune_untestable(circuit: Circuit, faults: Sequence[Fault]) -> PruneReport:
    """Split *faults* into survivors and provably-undetectable faults.

    Handles stuck-at and transition faults (dispatching on
    :class:`FaultKind`); survivors keep their original relative order, so
    the pruned list drops into every engine, shard strategy and
    checkpoint fingerprint unchanged.
    """
    observable = observable_gates(circuit)
    constants = constant_values(circuit)
    report = PruneReport(circuit_name=circuit.name)
    for fault in faults:
        if fault.kind in (FaultKind.SLOW_TO_RISE, FaultKind.SLOW_TO_FALL):
            reason = _prune_reason_transition(circuit, fault, observable, constants)
        else:
            reason = _prune_reason_stuck_at(circuit, fault, observable, constants)
        if reason:
            report.pruned.append(PrunedFault(fault, reason))
        else:
            report.kept.append(fault)
    return report
