"""Netlist lint: severity-tiered structural diagnostics over circuits.

The simulators require well-formed synchronous circuits and reject
anything else at build time — but a hard :class:`NetlistError` reports
only the *first* problem and nothing about constructs that are legal yet
almost certainly wrong (dangling nets, flip-flop self-loops, constant
logic).  The lint pass reports *all* findings at once, each with a
severity tier and a ``file:line`` location threaded from the parser:

``error``
    The circuit cannot be simulated (or simulates meaninglessly):
    unparsable lines, duplicate definitions, references to undriven
    signals, missing primary outputs, combinational cycles (with one
    concrete cycle path printed).
``warning``
    Legal but suspicious: duplicate OUTPUT declarations, gates and
    inputs that drive nothing, flip-flops latching their own output
    directly, logic cones no primary output can observe.
``info``
    Structure worth knowing about: constant nets (declared or derived),
    fanout and depth outliers, SCOAP hard-to-test extremes, and the
    structurally-untestable fault count.

Unlike :func:`repro.circuit.bench.parse_bench`, the lint front end parses
leniently: a broken line becomes an error diagnostic, not an exception,
so one run reports every defect in a bad netlist.  Graph checks run on a
uniform intermediate form shared by both entry points
(:func:`lint_bench_text` for source text, :func:`lint_circuit` for built
circuits); deeper semantic checks (observability, constants, SCOAP) run
only once the circuit actually builds.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyze.scoap import INF, scoap
from repro.analyze.untestable import (
    constant_values,
    observable_gates,
    prune_untestable,
)
from repro.circuit.bench import _ASSIGN_RE, _DECL_RE, _GATE_KEYWORDS
from repro.circuit.netlist import Circuit, NetlistError
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import X

#: Severity tiers, most severe first.
SEVERITIES = ("error", "warning", "info")

#: Fanout is an outlier above ``max(_FANOUT_FLOOR, _FANOUT_RATIO * mean)``.
_FANOUT_FLOOR = 16
_FANOUT_RATIO = 8.0
#: Depth is an outlier above ``mean + _DEPTH_SIGMA * stdev`` (and the floor).
_DEPTH_FLOOR = 24
_DEPTH_SIGMA = 4.0


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    ``line`` is 1-based; 0 means the finding has no single source line
    (whole-circuit problems, built synthetic circuits).
    """

    severity: str
    code: str
    message: str
    file: str = ""
    line: int = 0

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}" if self.line else self.file

    def format(self) -> str:
        return f"{self.location}: {self.severity}: {self.message} [{self.code}]"


def severity_rank(severity: str) -> int:
    """0 for error, 1 for warning, 2 for info (smaller = worse)."""
    return SEVERITIES.index(severity)


def worst_severity(diagnostics: Sequence[Diagnostic]) -> Optional[str]:
    """The most severe tier present, or ``None`` for a clean run."""
    if not diagnostics:
        return None
    return min((d.severity for d in diagnostics), key=severity_rank)


def has_findings(diagnostics: Sequence[Diagnostic], fail_on: str = "error") -> bool:
    """Whether any diagnostic is at least as severe as *fail_on*."""
    threshold = severity_rank(fail_on)
    return any(severity_rank(d.severity) <= threshold for d in diagnostics)


# ---------------------------------------------------------------------------
# lenient intermediate form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Node:
    name: str
    gtype: Optional[GateType]  # None for unknown keywords
    fanin: Tuple[str, ...]
    line: int


@dataclass
class _Ir:
    """What both lint entry points reduce a circuit to."""

    name: str
    nodes: List[_Node]
    index: Dict[str, int]  # first definition wins
    outputs: List[Tuple[str, int]]  # (signal, declaration line)


def _parse_lenient(text: str, name: str) -> Tuple[_Ir, List[Diagnostic]]:
    """Parse ``.bench`` text, turning every defect into a diagnostic."""
    ir = _Ir(name=name, nodes=[], index={}, outputs=[])
    diagnostics: List[Diagnostic] = []
    seen_outputs: Dict[str, int] = {}

    def error(code: str, message: str, line: int) -> None:
        diagnostics.append(Diagnostic("error", code, message, name, line))

    def define(node: _Node) -> None:
        first = ir.index.get(node.name)
        if first is not None:
            error(
                "duplicate-definition",
                f"signal {node.name!r} defined twice "
                f"(first defined at line {ir.nodes[first].line})",
                node.line,
            )
            return
        ir.index[node.name] = len(ir.nodes)
        ir.nodes.append(node)

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue

        declaration = _DECL_RE.match(line)
        if declaration:
            kind = declaration.group("kind").upper()
            signal = declaration.group("name")
            if kind == "INPUT":
                define(_Node(signal, GateType.INPUT, (), line_number))
            else:
                first = seen_outputs.get(signal)
                if first is not None:
                    diagnostics.append(
                        Diagnostic(
                            "warning",
                            "duplicate-output",
                            f"output {signal!r} declared twice "
                            f"(first declared at line {first})",
                            name,
                            line_number,
                        )
                    )
                else:
                    seen_outputs[signal] = line_number
                    ir.outputs.append((signal, line_number))
            continue

        assignment = _ASSIGN_RE.match(line)
        if assignment is None:
            error("parse", f"cannot parse line: {line!r}", line_number)
            continue

        signal = assignment.group("name")
        keyword = assignment.group("kind").upper()
        args = tuple(
            token.strip()
            for token in assignment.group("args").split(",")
            if token.strip()
        )
        gtype = _GATE_KEYWORDS.get(keyword)
        if gtype is None:
            error("unknown-keyword", f"unknown gate keyword {keyword!r}", line_number)
            define(_Node(signal, None, args, line_number))
            continue
        if gtype is GateType.DFF and len(args) != 1:
            error(
                "bad-arity",
                f"DFF {signal!r} must have exactly one fanin, has {len(args)}",
                line_number,
            )
        elif gtype in (GateType.BUF, GateType.NOT) and len(args) != 1:
            error(
                "bad-arity",
                f"{keyword} gate {signal!r} must have exactly one fanin, "
                f"has {len(args)}",
                line_number,
            )
        elif gtype in (GateType.CONST0, GateType.CONST1) and args:
            error(
                "bad-arity", f"constant gate {signal!r} must have no fanin", line_number
            )
        elif not args and gtype not in (GateType.CONST0, GateType.CONST1):
            error("bad-arity", f"gate {signal!r} has no fanin", line_number)
        define(_Node(signal, gtype, args, line_number))

    return ir, diagnostics


def _ir_from_circuit(circuit: Circuit) -> _Ir:
    gates = circuit.gates
    nodes = [
        _Node(
            gate.name,
            gate.gtype,
            tuple(gates[s].name for s in gate.fanin),
            gate.line,
        )
        for gate in gates
    ]
    return _Ir(
        name=circuit.name,
        nodes=nodes,
        index={gate.name: gate.index for gate in gates},
        outputs=[(gates[i].name, gates[i].line) for i in circuit.outputs],
    )


# ---------------------------------------------------------------------------
# graph checks (run on the IR — work even when the circuit cannot build)
# ---------------------------------------------------------------------------


def _graph_diagnostics(ir: _Ir) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    file = ir.name
    output_names = {name for name, _ in ir.outputs}

    # Undriven references.
    for node in ir.nodes:
        for source in node.fanin:
            if source not in ir.index:
                diagnostics.append(
                    Diagnostic(
                        "error",
                        "undriven-net",
                        f"gate {node.name!r} references undriven signal {source!r}",
                        file,
                        node.line,
                    )
                )

    # Output declarations.
    if not ir.outputs:
        diagnostics.append(
            Diagnostic(
                "error", "no-outputs", "circuit declares no primary outputs", file
            )
        )
    for name, line in ir.outputs:
        if name not in ir.index:
            diagnostics.append(
                Diagnostic(
                    "error",
                    "undefined-output",
                    f"output {name!r} is not a defined signal",
                    file,
                    line,
                )
            )

    # Fanout census over defined signals.
    sink_count: Dict[str, int] = {node.name: 0 for node in ir.nodes}
    for node in ir.nodes:
        for source in node.fanin:
            if source in sink_count:
                sink_count[source] += 1
    for node in ir.nodes:
        if sink_count[node.name] or node.name in output_names:
            continue
        if node.gtype is GateType.INPUT:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    "unused-input",
                    f"primary input {node.name!r} drives nothing",
                    file,
                    node.line,
                )
            )
        else:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    "dangling-net",
                    f"gate {node.name!r} drives nothing and is not an output",
                    file,
                    node.line,
                )
            )

    # Flip-flop direct self-loops.
    for node in ir.nodes:
        if node.gtype is GateType.DFF and node.fanin and node.fanin[0] == node.name:
            diagnostics.append(
                Diagnostic(
                    "warning",
                    "dff-self-loop",
                    f"flip-flop {node.name!r} latches its own output",
                    file,
                    node.line,
                )
            )

    diagnostics.extend(_cycle_diagnostics(ir))
    diagnostics.extend(_shape_diagnostics(ir, sink_count))
    return diagnostics


def _is_comb(node: _Node) -> bool:
    return node.gtype is not None and node.gtype not in (
        GateType.INPUT,
        GateType.DFF,
    )


def _cycle_diagnostics(ir: _Ir) -> List[Diagnostic]:
    """Kahn's algorithm over the combinational subgraph; on leftovers, a
    DFS pins down one concrete cycle to print."""
    comb = [i for i, node in enumerate(ir.nodes) if _is_comb(node)]
    comb_set = set(comb)
    pending = {i: 0 for i in comb}
    sinks: Dict[int, List[int]] = {i: [] for i in comb}
    for i in comb:
        for source in ir.nodes[i].fanin:
            j = ir.index.get(source)
            if j in comb_set:
                pending[i] += 1
                sinks[j].append(i)
    ready = [i for i in comb if pending[i] == 0]
    settled = 0
    while ready:
        settled += 1
        for sink in sinks[ready.pop()]:
            pending[sink] -= 1
            if pending[sink] == 0:
                ready.append(sink)
    if settled == len(comb):
        return []

    stuck = [i for i in comb if pending[i] > 0]
    path = _find_cycle_path(ir, stuck)
    names = " -> ".join(ir.nodes[i].name for i in path)
    first = min(stuck, key=lambda i: ir.nodes[i].line)
    return [
        Diagnostic(
            "error",
            "combinational-cycle",
            f"combinational cycle through {len(stuck)} gate(s); cycle: {names}",
            ir.name,
            ir.nodes[first].line,
        )
    ]


def _find_cycle_path(ir: _Ir, stuck: List[int]) -> List[int]:
    candidates = set(stuck)
    color = {i: 0 for i in candidates}  # 0 white, 1 on stack, 2 done
    for start in stuck:
        if color[start] != 0:
            continue
        color[start] = 1
        path = [start]
        stack = [(start, iter(ir.nodes[start].fanin))]
        while stack:
            node, fanin_iter = stack[-1]
            advanced = False
            for source in fanin_iter:
                j = ir.index.get(source)
                if j not in candidates:
                    continue
                if color[j] == 1:
                    return path[path.index(j):] + [j]
                if color[j] == 0:
                    color[j] = 1
                    path.append(j)
                    stack.append((j, iter(ir.nodes[j].fanin)))
                    advanced = True
                    break
            if not advanced:
                color[node] = 2
                path.pop()
                stack.pop()
    return stuck[:1] + stuck[:1]  # unreachable fallback: self-loop shape


def _shape_diagnostics(ir: _Ir, sink_count: Dict[str, int]) -> List[Diagnostic]:
    """Fanout and depth outliers (info tier); skipped on cyclic input."""
    diagnostics: List[Diagnostic] = []
    file = ir.name
    counts = [count for count in sink_count.values()]
    if len(counts) >= 8:
        mean = sum(counts) / len(counts)
        threshold = max(_FANOUT_FLOOR, _FANOUT_RATIO * mean)
        for node in ir.nodes:
            fanout = sink_count[node.name]
            if fanout > threshold:
                diagnostics.append(
                    Diagnostic(
                        "info",
                        "fanout-outlier",
                        f"signal {node.name!r} fans out to {fanout} sinks "
                        f"(mean {mean:.1f})",
                        file,
                        node.line,
                    )
                )

    levels = _levels(ir)
    if levels:
        values = list(levels.values())
        mean = sum(values) / len(values)
        spread = statistics.pstdev(values) if len(values) > 1 else 0.0
        threshold = max(_DEPTH_FLOOR, mean + _DEPTH_SIGMA * spread)
        for i, level in levels.items():
            if level > threshold:
                node = ir.nodes[i]
                diagnostics.append(
                    Diagnostic(
                        "info",
                        "depth-outlier",
                        f"gate {node.name!r} sits at logic depth {level} "
                        f"(mean {mean:.1f})",
                        file,
                        node.line,
                    )
                )
    return diagnostics


def _levels(ir: _Ir) -> Dict[int, int]:
    """Combinational depth per IR node; empty when the graph is cyclic."""
    levels: Dict[int, int] = {}
    remaining = [i for i, node in enumerate(ir.nodes) if _is_comb(node)]
    for i, node in enumerate(ir.nodes):
        if node.gtype in (GateType.INPUT, GateType.DFF):
            levels[i] = 0
    # Repeated relaxation in definition order; bounded by depth passes.
    for _ in range(len(remaining) + 1):
        progressed = False
        still = []
        for i in remaining:
            deps = [ir.index.get(s) for s in ir.nodes[i].fanin]
            if all(d is not None and d in levels for d in deps):
                levels[i] = 1 + max((levels[d] for d in deps), default=0)
                progressed = True
            else:
                still.append(i)
        remaining = still
        if not remaining or not progressed:
            break
    if remaining:
        return {}
    return {i: lvl for i, lvl in levels.items() if _is_comb(ir.nodes[i])}


# ---------------------------------------------------------------------------
# semantic checks (need a built circuit)
# ---------------------------------------------------------------------------


def _semantic_diagnostics(circuit: Circuit) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    file = circuit.name
    gates = circuit.gates

    observable = observable_gates(circuit)
    dangling = {
        gate.index
        for gate in gates
        if not gate.fanout and not gate.is_output
    }
    for gate in gates:
        if gate.index in observable or gate.index in dangling:
            continue
        diagnostics.append(
            Diagnostic(
                "warning",
                "unobservable-cone",
                f"no primary output can observe gate {gate.name!r}",
                file,
                gate.line,
            )
        )

    constants = constant_values(circuit)
    for gate in gates:
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            diagnostics.append(
                Diagnostic(
                    "info",
                    "constant-net",
                    f"signal {gate.name!r} is a declared constant",
                    file,
                    gate.line,
                )
            )
        elif constants[gate.index] != X and gate.gtype not in (
            GateType.INPUT,
            GateType.DFF,
        ):
            diagnostics.append(
                Diagnostic(
                    "info",
                    "constant-net",
                    f"signal {gate.name!r} is provably constant "
                    f"{constants[gate.index]}",
                    file,
                    gate.line,
                )
            )

    scores = scoap(circuit)
    finite_co = [
        (scores.co[g.index], g) for g in gates if scores.co[g.index] < INF
    ]
    if finite_co:
        worst_cost, worst_gate = max(finite_co, key=lambda pair: pair[0])
        if worst_cost > 0:
            diagnostics.append(
                Diagnostic(
                    "info",
                    "scoap-extreme",
                    f"hardest-to-observe line is {worst_gate.name!r} "
                    f"(SCOAP CO {worst_cost})",
                    file,
                    worst_gate.line,
                )
            )
    finite_cc = [
        (max(scores.cc0[g.index], scores.cc1[g.index]), g)
        for g in gates
        if scores.cc0[g.index] < INF and scores.cc1[g.index] < INF
    ]
    if finite_cc:
        worst_cost, worst_gate = max(finite_cc, key=lambda pair: pair[0])
        if worst_cost > 1:
            diagnostics.append(
                Diagnostic(
                    "info",
                    "scoap-extreme",
                    f"hardest-to-control line is {worst_gate.name!r} "
                    f"(SCOAP CC {worst_cost})",
                    file,
                    worst_gate.line,
                )
            )

    report = prune_untestable(circuit, stuck_at_universe(circuit))
    if report.pruned:
        diagnostics.append(
            Diagnostic(
                "info",
                "untestable-faults",
                f"{len(report.pruned)} of {report.total} collapsed stuck-at "
                f"faults are structurally untestable",
                file,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def _sorted(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(
        diagnostics,
        key=lambda d: (d.line, severity_rank(d.severity), d.code, d.message),
    )


def lint_bench_text(text: str, name: str = "bench") -> List[Diagnostic]:
    """Lint ``.bench`` source text; never raises on malformed input."""
    from repro.circuit.bench import parse_bench

    ir, diagnostics = _parse_lenient(text, name)
    diagnostics.extend(_graph_diagnostics(ir))
    if not any(d.severity == "error" for d in diagnostics):
        try:
            circuit = parse_bench(text, name)
        except NetlistError as exc:
            diagnostics.append(Diagnostic("error", "build", str(exc), name))
        else:
            diagnostics.extend(_semantic_diagnostics(circuit))
    return _sorted(diagnostics)


def lint_path(path: str) -> List[Diagnostic]:
    """Lint a ``.bench`` file on disk."""
    with open(path) as handle:
        text = handle.read()
    stem = path.rsplit("/", 1)[-1]
    if stem.endswith(".bench"):
        stem = stem[: -len(".bench")]
    return lint_bench_text(text, name=stem)


def lint_circuit(circuit: Circuit) -> List[Diagnostic]:
    """Lint an already-built circuit (library and synthetic circuits)."""
    ir = _ir_from_circuit(circuit)
    return _sorted(_graph_diagnostics(ir) + _semantic_diagnostics(circuit))
