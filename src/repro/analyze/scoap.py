"""SCOAP testability measures for synchronous sequential circuits.

Classic Goldstein SCOAP: ``CC0``/``CC1`` estimate how many line
assignments it takes to set a line to 0/1, ``CO`` how many to propagate a
value from the line to a primary output.  Primary inputs cost 1; every
gate traversal adds 1; crossing a flip-flop adds 1 per clock cycle.

Instead of per-type formulas the computation enumerates each gate's
binary input assignments against the reference evaluator
(:func:`repro.circuit.netlist.evaluate_gate`), which makes it exact for
every primitive type *and* for table-driven macro gates with no extra
code; gates wider than :data:`ENUMERATION_CAP` keep ``INF``
(uncomputed), which downstream consumers treat as "unknown", never as
"untestable" — structural untestability is decided by
:mod:`repro.analyze.untestable`, not by these scores.

Sequential circuits make the measures cyclic (a flip-flop's
controllability depends on logic that depends on flip-flops), so the
computation relaxes to the least fixpoint: costs start at ``INF`` and
only ever decrease, hence termination.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import List, Tuple

from repro.circuit.netlist import Circuit, Gate, evaluate_gate
from repro.logic.values import ONE, ZERO

#: Cost representing "not achievable / not computed".
INF = 10**9

#: Widest gate whose truth table is enumerated (2**cap assignments).
ENUMERATION_CAP = 10


@dataclass(frozen=True)
class ScoapResult:
    """Per-gate testability scores, indexed by gate index.

    ``INF`` entries mean the measure is unattainable (structurally
    uncontrollable/unobservable) or was not computed (too-wide gate).
    """

    cc0: Tuple[int, ...]
    cc1: Tuple[int, ...]
    co: Tuple[int, ...]

    def controllability(self, index: int, value: int) -> int:
        return self.cc0[index] if value == ZERO else self.cc1[index]


def _add(*costs: int) -> int:
    total = 0
    for cost in costs:
        if cost >= INF:
            return INF
        total += cost
    return min(total, INF)


def _gate_controllability(
    gate: Gate, cc0: List[int], cc1: List[int]
) -> Tuple[int, int]:
    """(CC0, CC1) of one combinational gate by truth-table enumeration."""
    arity = gate.arity
    if arity > ENUMERATION_CAP:
        return INF, INF
    best = {ZERO: INF, ONE: INF}
    for assignment in product((ZERO, ONE), repeat=arity):
        output = evaluate_gate(gate, assignment)
        if output not in best:
            continue
        cost = 1
        for pin, value in enumerate(assignment):
            source = gate.fanin[pin]
            cost = _add(cost, cc0[source] if value == ZERO else cc1[source])
        if cost < best[output]:
            best[output] = cost
    return best[ZERO], best[ONE]


def _pin_sensitization(gate: Gate, pin: int, cc0: List[int], cc1: List[int]) -> int:
    """Cheapest side-input assignment making the output sensitive to *pin*."""
    arity = gate.arity
    if arity > ENUMERATION_CAP:
        return INF
    others = [p for p in range(arity) if p != pin]
    best = INF
    for assignment in product((ZERO, ONE), repeat=len(others)):
        inputs = [ZERO] * arity
        for position, value in zip(others, assignment):
            inputs[position] = value
        inputs[pin] = ZERO
        low = evaluate_gate(gate, inputs)
        inputs[pin] = ONE
        high = evaluate_gate(gate, inputs)
        if low == high:
            continue
        cost = 0
        for position, value in zip(others, assignment):
            source = gate.fanin[position]
            cost = _add(cost, cc0[source] if value == ZERO else cc1[source])
        if cost < best:
            best = cost
    return best


def scoap(circuit: Circuit) -> ScoapResult:
    """Compute SCOAP controllabilities and observabilities for *circuit*."""
    count = len(circuit.gates)
    cc0 = [INF] * count
    cc1 = [INF] * count
    for pi in circuit.inputs:
        cc0[pi] = cc1[pi] = 1

    # Least fixpoint over the flip-flop cycles: combinational gates settle
    # in one level-ordered sweep given source costs, flip-flops then relax
    # from their D drivers (+1 for the clock cycle), repeat until stable.
    changed = True
    while changed:
        changed = False
        for index in circuit.order:
            gate = circuit.gates[index]
            new0, new1 = _gate_controllability(gate, cc0, cc1)
            if new0 < cc0[index]:
                cc0[index] = new0
                changed = True
            if new1 < cc1[index]:
                cc1[index] = new1
                changed = True
        for ff in circuit.dffs:
            source = circuit.gates[ff].fanin[0]
            new0 = _add(cc0[source], 1)
            new1 = _add(cc1[source], 1)
            if new0 < cc0[ff]:
                cc0[ff] = new0
                changed = True
            if new1 < cc1[ff]:
                cc1[ff] = new1
                changed = True

    co = [INF] * count
    for po in circuit.outputs:
        co[po] = 0
    changed = True
    while changed:
        changed = False
        for index in reversed(circuit.order):
            gate = circuit.gates[index]
            if co[index] >= INF:
                continue
            for pin in range(gate.arity):
                source = gate.fanin[pin]
                candidate = _add(co[index], _pin_sensitization(gate, pin, cc0, cc1), 1)
                if candidate < co[source]:
                    co[source] = candidate
                    changed = True
        for ff in circuit.dffs:
            source = circuit.gates[ff].fanin[0]
            candidate = _add(co[ff], 1)
            if candidate < co[source]:
                co[source] = candidate
                changed = True

    return ScoapResult(cc0=tuple(cc0), cc1=tuple(cc1), co=tuple(co))
