"""Fault-list sanitizer: an ASan-style invariant checker for the engines.

The concurrent engine's correctness rests on structural invariants of its
fault lists that no single phase re-checks: elements carry legal values,
the visible/invisible split mirrors the good machine exactly, descriptors
and elements agree on identity and site, and the detected set is mirrored
between descriptors and the result maps.  A corruption — a bug, a bad
restore, a chaos injection — that breaks one of them does not crash; it
silently miscounts detections many cycles later.

``FaultListSanitizer`` validates the full invariant set at every phase
boundary of a cycle (pre-cycle, post-settle, post-detect, post-clock) and
raises :class:`SanitizerError` at the *first* boundary after the
corruption, naming the gate, fault id and invariant.  It is opt-in
(``SimOptions.sanitize`` / ``--sanitize``) because a full scan per
boundary costs O(gates + elements); see README for measured overhead.

Checked invariants
------------------
* value domains: every good value and element value is in ``{0, 1, X}``;
* container presence: every gate keeps its visible and invisible list
  containers for the whole run (the dict analogue of the paper's
  terminal elements, which guarantee a list is never truly empty);
* split consistency: a fault id appears on at most one of a gate's two
  lists; visible elements differ from the good value, invisible elements
  equal it;
* reference agreement: element fault ids are in range,
  ``descriptors[fid].fid == fid``, and every local fault's descriptor
  sites it at that gate;
* list ordering: per-gate local fault lists are strictly ascending by
  fault id, and the descriptor array is sorted by fault key — the
  orderings deterministic fault ids rely on;
* counter agreement: the live-element counter equals the element
  population;
* detection agreement: descriptor ``detected``/``detect_cycle`` state and
  the simulator's ``detected`` map tell the same story.

The checker is duck-typed against :class:`ConcurrentFaultSimulator`'s
attributes and imports nothing from ``repro.concurrent``, so the engine
can import it without a cycle.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.faults.model import Fault
from repro.logic.values import VALUES


class SanitizerError(RuntimeError):
    """A fault-list invariant does not hold at a phase boundary."""


class FaultListSanitizer:
    """Phase-boundary invariant checker for one simulator instance.

    Construct once per engine (the constructor snapshots the immutable
    expectations: gate count, descriptor array, fault-to-descriptor map)
    and call :meth:`check` at each boundary.
    """

    def __init__(self, simulator: Any) -> None:
        self._sim = simulator
        self._num_gates = len(simulator.circuit.gates)
        self._by_fault: Dict[Fault, Any] = {
            descriptor.fault: descriptor for descriptor in simulator.descriptors
        }
        self.checks = 0

    def _fail(self, phase: str, message: str) -> None:
        raise SanitizerError(
            f"fault-list sanitizer: {message} "
            f"[cycle {self._sim.cycle}, {phase} boundary]"
        )

    def check(self, phase: str) -> None:
        """Validate every invariant; raise :class:`SanitizerError` on the
        first violation, naming the phase boundary it surfaced at."""
        self.checks += 1
        sim = self._sim
        count = self._num_gates
        descriptors = sim.descriptors
        num_faults = len(descriptors)
        good = sim.good
        vis = sim.vis
        invis = sim.invis

        # Container presence (terminal elements): one visible and one
        # invisible list per gate, alive for the whole run.
        if len(good) != count or len(vis) != count or len(invis) != count:
            self._fail(
                phase,
                f"state arrays sized {len(good)}/{len(vis)}/{len(invis)} "
                f"for {count} gates",
            )

        # Descriptor identity and global ordering.
        previous_key = None
        for fid, descriptor in enumerate(descriptors):
            if descriptor.fid != fid:
                self._fail(
                    phase,
                    f"descriptor at position {fid} carries fid {descriptor.fid}",
                )
            key = descriptor.fault._sort_key()
            if previous_key is not None and key < previous_key:
                self._fail(
                    phase,
                    f"descriptor array not sorted by fault key at fid {fid}",
                )
            previous_key = key

        # Per-gate local fault lists: strictly ascending, sited here.
        for gate_index, fids in sim.local_faults.items():
            previous = -1
            for fid in fids:
                if not 0 <= fid < num_faults:
                    self._fail(
                        phase,
                        f"local fault list of gate {gate_index} holds "
                        f"out-of-range fid {fid}",
                    )
                if fid <= previous:
                    self._fail(
                        phase,
                        f"local fault list of gate {gate_index} not strictly "
                        f"ascending at fid {fid}",
                    )
                previous = fid
                site = descriptors[fid].site_gate
                if site != gate_index:
                    self._fail(
                        phase,
                        f"fid {fid} on local list of gate {gate_index} but "
                        f"sited at gate {site}",
                    )

        # Element lists: domains, split consistency, reference agreement.
        live = 0
        for gate_index in range(count):
            good_value = good[gate_index]
            if good_value not in VALUES:
                self._fail(
                    phase, f"good value {good_value!r} at gate {gate_index}"
                )
            vis_bucket = vis[gate_index]
            invis_bucket = invis[gate_index]
            live += len(vis_bucket) + len(invis_bucket)
            for fid, value in vis_bucket.items():
                if not 0 <= fid < num_faults:
                    self._fail(
                        phase,
                        f"visible element with out-of-range fid {fid} at "
                        f"gate {gate_index}",
                    )
                if value not in VALUES:
                    self._fail(
                        phase,
                        f"visible element fid {fid} at gate {gate_index} "
                        f"holds illegal value {value!r}",
                    )
                if value == good_value:
                    self._fail(
                        phase,
                        f"visible element fid {fid} at gate {gate_index} "
                        f"equals the good value {good_value!r}",
                    )
                if fid in invis_bucket:
                    self._fail(
                        phase,
                        f"fid {fid} on both lists of gate {gate_index}",
                    )
            for fid, value in invis_bucket.items():
                if not 0 <= fid < num_faults:
                    self._fail(
                        phase,
                        f"invisible element with out-of-range fid {fid} at "
                        f"gate {gate_index}",
                    )
                if value not in VALUES:
                    self._fail(
                        phase,
                        f"invisible element fid {fid} at gate {gate_index} "
                        f"holds illegal value {value!r}",
                    )
                if value != good_value:
                    self._fail(
                        phase,
                        f"invisible element fid {fid} at gate {gate_index} "
                        f"differs from the good value {good_value!r}",
                    )

        if live != sim._live_elements:
            self._fail(
                phase,
                f"live-element counter {sim._live_elements} but "
                f"{live} elements on the lists",
            )

        # Detection agreement, both directions.
        for descriptor in descriptors:
            if descriptor.detected:
                if descriptor.detect_cycle is None:
                    self._fail(
                        phase,
                        f"fid {descriptor.fid} detected with no detect_cycle",
                    )
                recorded = sim.detected.get(descriptor.fault)
                if recorded != descriptor.detect_cycle:
                    self._fail(
                        phase,
                        f"fid {descriptor.fid} detected at cycle "
                        f"{descriptor.detect_cycle} but the result map says "
                        f"{recorded!r}",
                    )
        for fault, cycle in sim.detected.items():
            descriptor = self._by_fault.get(fault)
            if descriptor is None:
                self._fail(phase, f"detected map holds unknown fault {fault}")
            elif not descriptor.detected:
                self._fail(
                    phase,
                    f"fault {fault} in the detected map but fid "
                    f"{descriptor.fid} is not marked detected",
                )
            elif descriptor.detect_cycle != cycle:
                self._fail(
                    phase,
                    f"fault {fault} detected at cycle {cycle} in the map but "
                    f"fid {descriptor.fid} says {descriptor.detect_cycle}",
                )
