"""The concurrent fault simulator — the paper's primary contribution.

:class:`ConcurrentFaultSimulator` implements zero-delay concurrent stuck-at
fault simulation for synchronous sequential circuits with the paper's three
improvements selectable through :class:`SimOptions`:

* event-driven fault dropping,
* visible/invisible fault-list splitting (the ``-V`` variants),
* macro extraction with functional-fault translation (the ``-M`` variants).

:class:`TransitionFaultSimulator` extends the engine to the paper's
transition-fault model (Section 3) with the two-pass per-vector scheme, and
:class:`ConcurrentEventFaultSimulator` to arbitrary gate delays (the
generality the paper claims over pattern-parallel methods).
"""

from repro.concurrent.options import SimOptions, CSIM, CSIM_V, CSIM_M, CSIM_MV
from repro.concurrent.elements import Behavior, FaultDescriptor
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.concurrent.event_engine import ConcurrentEventFaultSimulator

__all__ = [
    "SimOptions",
    "CSIM",
    "CSIM_V",
    "CSIM_M",
    "CSIM_MV",
    "Behavior",
    "FaultDescriptor",
    "ConcurrentFaultSimulator",
    "TransitionFaultSimulator",
    "ConcurrentEventFaultSimulator",
]
