"""Zero-delay concurrent fault simulation for synchronous sequential circuits.

This is the paper's simulator.  One good machine and many faulty machines
are simulated together; a faulty machine is explicit only where it differs
from the good machine, as *fault elements* on per-gate lists.  The paper's
structural choices are all here:

* **Deductive-style lists** (Section 2.1): an element is ``fault id ->
  faulty output value`` on the gate's list; everything global about a fault
  lives in its shared :class:`FaultDescriptor`.  A faulty machine's input
  values are read from the fanin gates' lists ("multi-list traversal"),
  falling back to the good value where the fault is not explicit — exactly
  the rule of the paper's Figure 1.
* **Zero-delay levelized scheduling** (Section 2.1): only gate identifiers
  are scheduled, into a per-level queue, whenever *any* machine has an
  event on a fanin; gates evaluate in level order so one sweep settles the
  network.  The first vector schedules every gate (initialization).
* **Divergence/convergence** by comparing the evaluated faulty state with
  the good state: output differs -> visible element; only inputs differ ->
  invisible element; identical -> the element is removed.
* **Event-driven fault dropping** (Section 2.2): detected faults' elements
  are removed while the lists holding them are traversed, never by a
  circuit-wide sweep.  (The paper's terminal-element trick — a sentinel
  whose descriptor is never dropped, removing the end-of-list test — is a
  linked-list micro-optimization; Python dictionaries subsume it.)
* **Visible/invisible list splitting** (Section 2.2, the ``-V`` variants):
  with ``split_lists`` on, propagation and detection scan only visible
  elements; with it off, the single conceptual list is scanned whole,
  reproducing the extra work the paper ablates.
* **Macro extraction** (Section 2.2, the ``-M`` variants): the engine runs
  on the macro-transformed circuit and faults inside macros evaluate
  through private faulty lookup tables (functional faults).

Flip-flops carry their own fault lists: a latched fault effect is an
element on the DFF gate, which is how fault effects persist across clock
cycles.  Flip-flops update two-phase at the cycle boundary from settled D
values, and their events seed the next cycle's queue.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.circuit.macro import extract_macros
from repro.circuit.netlist import Circuit
from repro.concurrent.elements import Behavior, FaultDescriptor
from repro.concurrent.options import SimOptions
from repro.faults.model import OUTPUT_PIN, Fault, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import (
    GateType,
    MAX_TABLE_ARITY,
    evaluate,
    pack_inputs,
    packed_table,
    unpack_inputs,
)
from repro.logic.values import X
from repro.obs.tracer import Tracer
from repro.result import Failure, FaultSimResult, MemoryStats, WorkCounters

#: Shared per-circuit evaluation tables.  Every engine instance over the
#: same working circuit uses byte-identical tables, so they are built once
#: and shared (the tables are immutable tuples).  Keyed weakly: dropping
#: the circuit drops its cache entry.  This matters for campaigns that
#: construct many engines over one circuit — ablation sweeps, the engine
#: ladder, and especially the parallel runner's one-engine-per-shard
#: workers, where the tables would otherwise be rebuilt K times.
_EVAL_TABLE_CACHE: "WeakKeyDictionary[Circuit, Tuple]" = WeakKeyDictionary()

#: Shared macro transforms, keyed weakly by flat circuit then by the macro
#: input cap.  ``extract_macros`` is deterministic and its result is
#: read-only at simulation time, so instances can share one transform —
#: which also makes their *working* circuits the same object, letting the
#: evaluation-table cache above hit across csim-M/-MV instances.
_MACRO_CACHE: "WeakKeyDictionary[Circuit, Dict[int, object]]" = WeakKeyDictionary()


def shared_eval_tables(circuit: Circuit) -> Tuple[Optional[Tuple[int, ...]], ...]:
    """Per-gate packed-input lookup tables for *circuit*, memoized.

    ``None`` entries (sources and too-wide gates) take the list-based
    fallback in :meth:`ConcurrentFaultSimulator._evaluate`.
    """
    tables = _EVAL_TABLE_CACHE.get(circuit)
    if tables is None:
        built: List[Optional[Tuple[int, ...]]] = []
        for gate in circuit.gates:
            if gate.gtype in (GateType.INPUT, GateType.DFF):
                built.append(None)
            elif gate.gtype is GateType.MACRO:
                built.append(gate.table)
            elif gate.arity <= MAX_TABLE_ARITY:
                built.append(packed_table(gate.gtype, gate.arity))
            else:
                built.append(None)
        tables = tuple(built)
        _EVAL_TABLE_CACHE[circuit] = tables
    return tables


def shared_macro_transform(circuit: Circuit, macro_max_inputs: int):
    """The macro transform of *circuit*, memoized per input cap."""
    by_width = _MACRO_CACHE.get(circuit)
    if by_width is None:
        by_width = {}
        _MACRO_CACHE[circuit] = by_width
    transform = by_width.get(macro_max_inputs)
    if transform is None:
        transform = extract_macros(circuit, macro_max_inputs)
        by_width[macro_max_inputs] = transform
    return transform


class ConcurrentFaultSimulator:
    """Concurrent stuck-at fault simulator (csim / -V / -M / -MV).

    Parameters
    ----------
    circuit:
        The flat circuit under test.  With ``options.use_macros`` the
        engine internally runs on the macro-transformed circuit; faults
        and detections are always reported against *circuit*.
    faults:
        Stuck-at faults to simulate; defaults to the collapsed universe.
    options:
        Variant selection, see :class:`repro.concurrent.options.SimOptions`.
    tracer:
        Optional :class:`repro.obs.Tracer`.  ``None`` (the default) means
        no tracing: every hook site is a single local None-check, so an
        untraced run does no instrumentation work at all.
    record_responses:
        Dictionary-building mode: fault dropping is disabled (the
        requested options are kept otherwise) and every binary output
        mismatch is recorded per fault as a ``(cycle, po_position)``
        failure, surfaced on ``result.responses``.  Detection cycles stay
        identical to a dropping run (first detection is still what
        ``detected`` reports).
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Iterable[StuckAtFault]] = None,
        options: SimOptions = SimOptions(),
        macro=None,
        tracer: Optional[Tracer] = None,
        record_responses: bool = False,
    ) -> None:
        self.original_circuit = circuit
        self.record_responses = record_responses
        if record_responses and options.drop_detected:
            options = options.with_(drop_detected=False)
        self.options = options
        self.tracer = tracer
        universe = self._default_universe(circuit) if faults is None else faults
        #: Sorted for deterministic fault ids (and so detection order never
        #: depends on how the caller built the list).
        self.faults: List[StuckAtFault] = sorted(universe)
        if macro is not None:
            # Caller-supplied macro transform (e.g. built along hierarchy
            # boundaries via extract_macros(..., preassigned=...)).
            if macro.flat is not circuit:
                raise ValueError("macro transform was built for a different circuit")
            self.macro = macro
            self.circuit = macro.circuit
        elif options.use_macros:
            self.macro = shared_macro_transform(circuit, options.macro_max_inputs)
            self.circuit = self.macro.circuit
        else:
            self.macro = None
            self.circuit = circuit
        self._build_eval_tables()
        self._build_descriptors()
        self.reset()
        if options.sanitize:
            from repro.analyze.sanitize import FaultListSanitizer

            self._sanitizer: Optional[FaultListSanitizer] = FaultListSanitizer(self)
        else:
            self._sanitizer = None

    def _build_eval_tables(self) -> None:
        """Attach the (shared, memoized) per-gate lookup tables."""
        self._eval_tables = shared_eval_tables(self.circuit)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _default_universe(self, circuit: Circuit) -> List[StuckAtFault]:
        return stuck_at_universe(circuit)

    def _build_descriptors(self) -> None:
        circuit = self.circuit
        self.descriptors: List[FaultDescriptor] = []
        self.local_faults: Dict[int, List[int]] = {
            gate.index: [] for gate in circuit.gates
        }
        for fid, fault in enumerate(self.faults):
            descriptor = self._make_descriptor(fid, fault)
            self.descriptors.append(descriptor)
            if not self._is_inert(descriptor):
                self.local_faults[descriptor.site_gate].append(fid)

    def _make_descriptor(self, fid: int, fault: StuckAtFault) -> FaultDescriptor:
        if self.macro is not None:
            site, behavior, pin, value, table = self.macro.translate_stuck_at(fault)
            return FaultDescriptor(
                fid=fid,
                fault=fault,
                site_gate=site,
                behavior=Behavior(behavior),
                pin=pin,
                value=value,
                table=table,
            )
        if fault.pin == OUTPUT_PIN:
            behavior = Behavior.FORCE_OUTPUT
        else:
            behavior = Behavior.FORCE_INPUT
        return FaultDescriptor(
            fid=fid,
            fault=fault,
            site_gate=fault.gate,
            behavior=behavior,
            pin=fault.pin,
            value=fault.value,
        )

    def _is_inert(self, descriptor: FaultDescriptor) -> bool:
        """A functional fault whose table equals the good table never
        diverges; it stays in the universe (denominator) but is skipped."""
        if descriptor.behavior is not Behavior.TABLE:
            return False
        gate = self.circuit.gates[descriptor.site_gate]
        return descriptor.table == gate.table

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Return to the all-X power-up state with no fault explicit."""
        circuit = self.circuit
        count = len(circuit.gates)
        self.good: List[int] = [X] * count
        self.vis: List[Dict[int, int]] = [dict() for _ in range(count)]
        self.invis: List[Dict[int, int]] = [dict() for _ in range(count)]
        self.cycle = 0
        self.detected: Dict[Fault, int] = {}
        self.potentially_detected: Dict[Fault, int] = {}
        #: fid -> recorded failures, populated only in record_responses mode.
        self._responses: Dict[int, List[Failure]] = {}
        self.counters = WorkCounters()
        self.memory = MemoryStats(
            num_descriptors=len(self.descriptors),
            element_bytes=self.options.element_bytes,
            descriptor_bytes=self.options.descriptor_bytes,
        )
        self._live_elements = 0
        self._next_cycle_gates: Set[int] = set()
        self._dirty_ffs: Set[int] = set(circuit.dffs)
        self._queue: List[List[int]] = [[] for _ in range(circuit.num_levels + 1)]
        self._in_queue: List[bool] = [False] * count
        # When not None, _evaluate records every gate it touches here (the
        # transition engine uses this to seed its second pass).
        self._record_evaluated: Optional[Set[int]] = None
        # Reusable scratch for _candidates/_compute_ff_updates: one dict and
        # one purge list serve every gate evaluation instead of fresh
        # allocations per call.  Transient — never snapshotted.
        self._scratch_candidates: Dict[int, bool] = {}
        self._scratch_purge: List[Tuple[int, int]] = []
        for descriptor in self.descriptors:
            descriptor.detected = False
            descriptor.detect_cycle = None
            descriptor.prev_site_value = X

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the full simulation state (for search/compaction loops).

        The returned object is opaque; pass it back to :meth:`restore`.
        Counters and memory statistics are included so a restored run is
        bit-identical to never having simulated the rolled-back vectors.
        """
        import copy

        return {
            "good": list(self.good),
            "vis": [dict(bucket) for bucket in self.vis],
            "invis": [dict(bucket) for bucket in self.invis],
            "cycle": self.cycle,
            "detected": dict(self.detected),
            "potential": dict(self.potentially_detected),
            "descriptor_state": [
                (d.detected, d.detect_cycle, d.prev_site_value)
                for d in self.descriptors
            ],
            "live": self._live_elements,
            "next_gates": set(self._next_cycle_gates),
            "dirty_ffs": set(self._dirty_ffs),
            "counters": copy.copy(self.counters),
            "memory": copy.copy(self.memory),
            "responses": {fid: list(f) for fid, f in self._responses.items()},
        }

    def restore(self, state: dict) -> None:
        """Roll the simulator back to a :meth:`snapshot`."""
        self.good = list(state["good"])
        self.vis = [dict(bucket) for bucket in state["vis"]]
        self.invis = [dict(bucket) for bucket in state["invis"]]
        self.cycle = state["cycle"]
        self.detected = dict(state["detected"])
        self.potentially_detected = dict(state["potential"])
        for descriptor, (det, det_cycle, prev) in zip(
            self.descriptors, state["descriptor_state"]
        ):
            descriptor.detected = det
            descriptor.detect_cycle = det_cycle
            descriptor.prev_site_value = prev
        self._live_elements = state["live"]
        self._next_cycle_gates = set(state["next_gates"])
        self._dirty_ffs = set(state["dirty_ffs"])
        self._responses = {
            fid: [tuple(f) for f in failures]
            for fid, failures in state.get("responses", {}).items()
        }
        import copy

        self.counters = copy.copy(state["counters"])
        self.memory = copy.copy(state["memory"])

    # -- element bookkeeping ----------------------------------------------

    def _store(self, lists: List[Dict[int, int]], gate: int, fid: int, value: int) -> None:
        bucket = lists[gate]
        if fid not in bucket:
            self._live_elements += 1
            trace = self.tracer
            if trace is not None:
                trace.diverge(gate, fid, lists is self.vis)
        bucket[fid] = value

    def _remove(self, gate: int, fid: int) -> None:
        removed = False
        if self.vis[gate].pop(fid, None) is not None:
            self._live_elements -= 1
            removed = True
        if self.invis[gate].pop(fid, None) is not None:
            self._live_elements -= 1
            removed = True
        if removed:
            trace = self.tracer
            if trace is not None:
                trace.converge(gate, fid)

    def _schedule(self, gate_index: int) -> None:
        if not self._in_queue[gate_index]:
            self._in_queue[gate_index] = True
            level = self.circuit.gates[gate_index].level
            self._queue[level].append(gate_index)
            self.counters.gates_scheduled += 1
            trace = self.tracer
            if trace is not None:
                trace.scheduled(gate_index, level)

    def _emit_event(self, gate_index: int) -> None:
        """An event on *gate_index*: schedule combinational fanouts now,
        mark flip-flop fanouts for the boundary update."""
        self.counters.events += 1
        trace = self.tracer
        if trace is not None:
            trace.event(gate_index)
        gates = self.circuit.gates
        for sink in gates[gate_index].fanout:
            if gates[sink].gtype is GateType.DFF:
                self._dirty_ffs.add(sink)
            else:
                self._schedule(sink)

    # ------------------------------------------------------------------
    # per-cycle simulation
    # ------------------------------------------------------------------

    def step(self, vector: Sequence[int]) -> List[Fault]:
        """Simulate one clock cycle; returns faults first detected in it."""
        circuit = self.circuit
        if len(vector) != len(circuit.inputs):
            raise ValueError(
                f"vector has {len(vector)} values for {len(circuit.inputs)} inputs"
            )
        sanitizer = self._sanitizer
        if sanitizer is not None:
            # Checking *before* the cycle starts pins a corruption seeded
            # between steps (a bad restore, a chaos injection) to this
            # boundary instead of letting it crash mid-settle.
            sanitizer.check("pre-cycle")
        self.cycle += 1
        self.counters.cycles += 1
        trace = self.tracer
        if trace is not None:
            trace.cycle_start(self.cycle)

        if self.cycle == 1:
            # Initialization: evaluate the whole network once so every
            # local fault gets the chance to diverge from the X state, and
            # make output-stuck flip-flop faults explicit from power-up
            # (they force Q before the first clock edge ever fires).
            for gate_index in circuit.order:
                self._schedule(gate_index)
            self._dirty_ffs.update(circuit.dffs)
            for ff_index in circuit.dffs:
                for fid in self.local_faults[ff_index]:
                    descriptor = self.descriptors[fid]
                    if descriptor.behavior is Behavior.FORCE_OUTPUT:
                        self._store(self.vis, ff_index, fid, descriptor.value)
        else:
            for gate_index in self._next_cycle_gates:
                self._schedule(gate_index)
        self._next_cycle_gates = set()

        if trace is None:
            for position, pi_index in enumerate(circuit.inputs):
                self._apply_source(pi_index, vector[position])
            self._settle()
            if sanitizer is not None:
                sanitizer.check("settle")
            self.memory.note_elements(self._live_elements)
            newly_detected = self._detect()
            if sanitizer is not None:
                sanitizer.check("detect")
            self._clock()
            if sanitizer is not None:
                sanitizer.check("clock")
            self.memory.note_elements(self._live_elements)
            return newly_detected

        # Traced path: identical work, wrapped in per-phase timers.
        t0 = time.perf_counter()
        for position, pi_index in enumerate(circuit.inputs):
            self._apply_source(pi_index, vector[position])
        t1 = time.perf_counter()
        trace.phase_time("apply", t1 - t0)
        self._settle()
        if sanitizer is not None:
            sanitizer.check("settle")
        t2 = time.perf_counter()
        trace.phase_time("settle", t2 - t1)
        self.memory.note_elements(self._live_elements)
        newly_detected = self._detect()
        if sanitizer is not None:
            sanitizer.check("detect")
        t3 = time.perf_counter()
        trace.phase_time("detect", t3 - t2)
        self._clock()
        if sanitizer is not None:
            sanitizer.check("clock")
        trace.phase_time("clock", time.perf_counter() - t3)
        self.memory.note_elements(self._live_elements)
        if trace.enabled:
            visible = sum(map(len, self.vis))
            invisible = sum(map(len, self.invis))
        else:
            visible = invisible = 0
        trace.cycle_end(
            self.cycle,
            live=self._live_elements,
            visible=visible,
            invisible=invisible,
        )
        return newly_detected

    def run(
        self,
        vectors: Iterable[Sequence[int]],
        stop_at_coverage: Optional[float] = None,
        budget=None,
    ) -> FaultSimResult:
        """Simulate a whole sequence and package the result.

        ``stop_at_coverage`` (fraction) ends the run early once reached —
        useful for test-generation loops.  A ``budget``
        (:class:`repro.robust.budget.Budget`) is checked at every cycle
        boundary; on a breach the run stops cleanly and the result comes
        back with ``truncated=True`` and the breach as its reason.
        """
        trace = self.tracer
        if trace is not None:
            trace.run_start(self.options.variant_name, self.original_circuit.name)
        clock = budget.start() if budget else None
        start = time.perf_counter()
        applied = 0
        truncation_reason = None
        for vector in vectors:
            if clock is not None:
                breach = clock.check(self.counters.cycles, self.memory.peak_bytes)
                if breach is not None:
                    truncation_reason = breach.describe()
                    if trace is not None:
                        trace.budget_breach(breach.kind, breach.limit, breach.actual)
                    break
            self.step(vector)
            applied += 1
            if (
                stop_at_coverage is not None
                and self.faults
                and len(self.detected) / len(self.faults) >= stop_at_coverage
            ):
                break
        elapsed = time.perf_counter() - start
        result = FaultSimResult(
            engine=self.options.variant_name,
            circuit_name=self.original_circuit.name,
            num_faults=len(self.faults),
            num_vectors=applied,
            detected=dict(self.detected),
            potentially_detected=dict(self.potentially_detected),
            counters=self.counters,
            memory=self.memory,
            wall_seconds=elapsed,
            truncated=truncation_reason is not None,
            truncation_reason=truncation_reason,
            responses=(
                self.responses_by_fault() if self.record_responses else None
            ),
        )
        if trace is not None:
            trace.run_end(elapsed)
            result.telemetry = trace.telemetry()
        return result

    def responses_by_fault(self) -> Dict[Fault, Tuple[Failure, ...]]:
        """The recorded responses keyed by fault, in deterministic fid order.

        Every simulated fault gets a key — an empty tuple means the fault
        never produced a binary output mismatch over the applied vectors.
        """
        return {
            descriptor.fault: tuple(self._responses.get(descriptor.fid, ()))
            for descriptor in self.descriptors
        }

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------

    def _apply_source(self, pi_index: int, value: int) -> None:
        """Drive one primary input and its local (output-stuck) faults."""
        old_good = self.good[pi_index]
        self.good[pi_index] = value
        vis = self.vis[pi_index]
        event = value != old_good
        drop = self.options.drop_detected
        evals = 0
        for fid in self.local_faults[pi_index]:
            descriptor = self.descriptors[fid]
            if descriptor.detected and drop:
                self._remove(pi_index, fid)
                continue
            forced = descriptor.value
            self.counters.fault_evaluations += 1
            evals += 1
            before = vis.get(fid, old_good)
            if forced != value:
                self._store(self.vis, pi_index, fid, forced)
            else:
                self._remove(pi_index, fid)
            if before != forced:
                event = True
        if evals:
            trace = self.tracer
            if trace is not None:
                trace.fault_evals(pi_index, evals)
        if event:
            self._emit_event(pi_index)

    def _settle(self) -> None:
        """Evaluate scheduled gates level by level (the zero-delay 'second
        phase' of Section 2.1)."""
        queue = self._queue
        in_queue = self._in_queue
        for level in range(1, len(queue)):
            bucket = queue[level]
            if not bucket:
                continue
            for gate_index in bucket:
                in_queue[gate_index] = False
                self._evaluate(gate_index)
            bucket.clear()

    def _good_output(self, gate, inputs: List[int]) -> int:
        if gate.gtype is GateType.MACRO:
            return gate.table[pack_inputs(inputs)]
        return evaluate(gate.gtype, inputs)

    def _scan_bucket(
        self,
        source: int,
        bucket: Dict[int, int],
        candidates: Dict[int, bool],
        purge: List[Tuple[int, int]],
        drop: bool,
    ) -> None:
        """Collect one element list into *candidates* (detected -> *purge*)."""
        self.counters.element_visits += len(bucket)
        trace = self.tracer
        if trace is not None:
            trace.element_visits(source, len(bucket))
        if drop:
            descriptors = self.descriptors
            for fid in bucket:
                if descriptors[fid].detected:
                    purge.append((source, fid))
                else:
                    candidates[fid] = True
        else:
            for fid in bucket:
                candidates[fid] = True

    def _candidates(self, gate_index: int, fanin: Tuple[int, ...]) -> Dict[int, bool]:
        """Assemble the fault set to evaluate at this gate.

        Faults explicit on a fanin's visible list (plus, without list
        splitting, its invisible list — the scan the ``-V`` variants
        avoid), the gate's own lists (for convergence), and the faults
        whose site is this gate.  Detected faults are dropped from the
        lists as they are encountered (event-driven dropping).

        The returned dict is the engine's reusable scratch: it is valid
        until the next ``_candidates`` call, which is exactly the lifetime
        every caller needs (iterate once, then move to the next gate).
        """
        descriptors = self.descriptors
        drop = self.options.drop_detected
        split = self.options.split_lists
        vis = self.vis
        invis = self.invis
        candidates = self._scratch_candidates
        candidates.clear()
        purge = self._scratch_purge
        purge.clear()

        for source in fanin:
            bucket = vis[source]
            if bucket:
                self._scan_bucket(source, bucket, candidates, purge, drop)
            if not split:
                bucket = invis[source]
                if bucket:
                    self._scan_bucket(source, bucket, candidates, purge, drop)
        bucket = vis[gate_index]
        if bucket:
            self._scan_bucket(gate_index, bucket, candidates, purge, drop)
        bucket = invis[gate_index]
        if bucket:
            self._scan_bucket(gate_index, bucket, candidates, purge, drop)
        for fid in self.local_faults[gate_index]:
            if drop and descriptors[fid].detected:
                continue
            candidates[fid] = True
        for source, fid in purge:
            self._remove(source, fid)
        return candidates

    def _faulty_output(
        self,
        descriptor: FaultDescriptor,
        gate,
        gate_index: int,
        inputs: List[int],
    ) -> int:
        """Evaluate one faulty machine at one gate (inputs already faulty).

        ``inputs`` is mutated in place for input-forcing faults; callers
        pass a fresh list per fault.
        """
        if descriptor.site_gate == gate_index:
            behavior = descriptor.behavior
            if behavior is Behavior.FORCE_OUTPUT:
                return descriptor.value
            if behavior is Behavior.FORCE_INPUT:
                inputs[descriptor.pin] = descriptor.value
                return self._good_output(gate, inputs)
            if behavior is Behavior.TABLE:
                return descriptor.table[pack_inputs(inputs)]
            if behavior is Behavior.TRANSITION:
                return self._transition_output(descriptor, gate, inputs)
        return self._good_output(gate, inputs)

    def _transition_output(self, descriptor, gate, inputs):  # pragma: no cover
        raise NotImplementedError(
            "transition faults require TransitionFaultSimulator"
        )

    def _ff_transition_latch(self, descriptor, q_fault):  # pragma: no cover
        raise NotImplementedError(
            "transition faults require TransitionFaultSimulator"
        )

    def _evaluate(self, gate_index: int) -> None:
        """Re-evaluate the good machine and every candidate faulty machine
        at one gate, diverging/converging elements and emitting events.

        The hot path works on packed state words — the paper's "the state
        of a gate is packed into a word so that the output can be
        efficiently evaluated by table look up": inputs pack 2 bits per
        pin while being gathered, evaluation is one table index, and the
        divergence test is a single word comparison against the good
        machine's packed state.  Gates wider than the table bound fall
        back to list-based evaluation.
        """
        circuit = self.circuit
        gate = circuit.gates[gate_index]
        if self._record_evaluated is not None:
            self._record_evaluated.add(gate_index)
        fanin = gate.fanin
        good = self.good
        old_good = good[gate_index]
        table = self._eval_tables[gate_index]
        self.counters.good_evaluations += 1
        trace = self.tracer
        if trace is not None:
            trace.good_evals(gate_index)

        vis = self.vis
        invis_here = self.invis[gate_index]
        vis_here = vis[gate_index]
        counters = self.counters
        descriptors = self.descriptors
        fault_event = False

        if table is not None:
            good_packed = 0
            shift = 0
            for source in fanin:
                good_packed |= good[source] << shift
                shift += 2
            new_good = table[good_packed]
            good[gate_index] = new_good

            candidates = self._candidates(gate_index, fanin)
            if trace is not None and candidates:
                trace.fault_evals(gate_index, len(candidates))
            for fid in candidates:
                counters.fault_evaluations += 1
                packed = 0
                shift = 0
                for source in fanin:
                    value = vis[source].get(fid)
                    if value is None:
                        value = good[source]
                    packed |= value << shift
                    shift += 2
                descriptor = descriptors[fid]
                if descriptor.site_gate != gate_index:
                    out = table[packed]
                else:
                    behavior = descriptor.behavior
                    if behavior is Behavior.FORCE_OUTPUT:
                        out = descriptor.value
                    elif behavior is Behavior.FORCE_INPUT:
                        position = 2 * descriptor.pin
                        packed = (packed & ~(0b11 << position)) | (
                            descriptor.value << position
                        )
                        out = table[packed]
                    elif behavior is Behavior.TABLE:
                        out = descriptor.table[packed]
                    else:  # TRANSITION: rare site path, via the list hook
                        inputs = list(unpack_inputs(packed, len(fanin)))
                        out = self._transition_output(descriptor, gate, inputs)
                        packed = pack_inputs(inputs)
                before = vis_here.get(fid, old_good)
                if out != new_good:
                    if invis_here.pop(fid, None) is not None:
                        self._live_elements -= 1
                    self._store(vis, gate_index, fid, out)
                elif packed != good_packed:
                    # Same output, different state: invisible element.
                    if vis_here.pop(fid, None) is not None:
                        self._live_elements -= 1
                    self._store(self.invis, gate_index, fid, out)
                else:
                    self._remove(gate_index, fid)
                if before != out:
                    fault_event = True
        else:
            good_inputs = [good[source] for source in fanin]
            new_good = self._good_output(gate, good_inputs)
            good[gate_index] = new_good
            candidates = self._candidates(gate_index, fanin)
            if trace is not None and candidates:
                trace.fault_evals(gate_index, len(candidates))
            for fid in candidates:
                descriptor = descriptors[fid]
                inputs = [vis[source].get(fid, good[source]) for source in fanin]
                counters.fault_evaluations += 1
                out = self._faulty_output(descriptor, gate, gate_index, inputs)
                before = vis_here.get(fid, old_good)
                if out != new_good:
                    if invis_here.pop(fid, None) is not None:
                        self._live_elements -= 1
                    self._store(vis, gate_index, fid, out)
                elif inputs != good_inputs:
                    if vis_here.pop(fid, None) is not None:
                        self._live_elements -= 1
                    self._store(self.invis, gate_index, fid, out)
                else:
                    self._remove(gate_index, fid)
                if before != out:
                    fault_event = True

        if new_good != old_good or fault_event:
            self._emit_event(gate_index)

    def _detect(self) -> List[Fault]:
        """Scan primary-output fault lists for detections.

        A fault is detected when both machines carry known, differing
        values at an observed line.  Without list splitting the invisible
        list is scanned too (and yields nothing) — the cost the paper's
        ``-V`` variants remove.
        """
        newly: List[Fault] = []
        drop = self.options.drop_detected
        counters = self.counters
        trace = self.tracer
        hard_now: List[int] = []
        potential_now: List[int] = []
        for po_index in self.circuit.outputs:
            good_value = self.good[po_index]
            vis = self.vis[po_index]
            if trace is not None and vis:
                trace.element_visits(po_index, len(vis))
            purge: List[int] = []
            for fid, value in vis.items():
                counters.element_visits += 1
                descriptor = self.descriptors[fid]
                if descriptor.detected:
                    if drop:
                        purge.append(fid)
                    continue
                if good_value == X:
                    continue
                if value != X:
                    hard_now.append(fid)
                else:
                    potential_now.append(fid)
            for fid in purge:
                self._remove(po_index, fid)
            if not self.options.split_lists:
                invis_length = len(self.invis[po_index])
                counters.element_visits += invis_length
                if trace is not None and invis_length:
                    trace.element_visits(po_index, invis_length)
        # Hard and potential detections are judged on the full output
        # vector of the cycle; marking happens after the scan so that a
        # hard detection at one output doesn't hide the same cycle's
        # observations at another (the serial oracle sees all outputs at
        # once, and the engines must agree to the cycle).
        for fid in potential_now:
            fault = self.descriptors[fid].fault
            if fault not in self.potentially_detected:
                self.potentially_detected[fault] = self.cycle
                if trace is not None:
                    trace.detect(fid, self.cycle, potential=True)
        for fid in hard_now:
            descriptor = self.descriptors[fid]
            if descriptor.detected:
                continue  # listed at several outputs this cycle
            descriptor.mark_detected(self.cycle)
            self.detected[descriptor.fault] = self.cycle
            newly.append(descriptor.fault)
            if trace is not None:
                trace.detect(fid, self.cycle)
                if drop:
                    trace.drop(fid, self.cycle)
        if self.record_responses:
            self._record_cycle_responses()
        return newly

    def _record_cycle_responses(self) -> None:
        """Append this cycle's binary output mismatches to the responses.

        A pure observation pass over the visible PO lists — it touches no
        counters and fires no tracer hooks, so the counter/hook
        reconciliation contract is unchanged by recording.
        """
        responses = self._responses
        for po_position, po_index in enumerate(self.circuit.outputs):
            good_value = self.good[po_index]
            if good_value == X:
                continue
            for fid, value in self.vis[po_index].items():
                if value == X or value == good_value:
                    continue
                failures = responses.get(fid)
                if failures is None:
                    failures = responses[fid] = []
                failures.append((self.cycle, po_position))

    def _clock(self) -> None:
        """Two-phase flip-flop update from settled D values.

        Computes every dirty flip-flop's next good and faulty values from
        the pre-commit state, then commits all at once; events seed the
        next cycle's queue.
        """
        pending = self._compute_ff_updates()
        self._dirty_ffs = set()
        self._commit_ff_updates(pending)

    def _compute_ff_updates(
        self,
    ) -> List[Tuple[int, int, List[Tuple[int, int, bool]], bool]]:
        """Latch phase: next good/faulty values per dirty flip-flop, from
        the current settled (pre-commit) network values."""
        circuit = self.circuit
        descriptors = self.descriptors
        drop = self.options.drop_detected
        split = self.options.split_lists
        good = self.good
        trace = self.tracer
        pending: List[Tuple[int, int, List[Tuple[int, int, bool]], bool]] = []

        for ff_index in self._dirty_ffs:
            gate = circuit.gates[ff_index]
            d_source = gate.fanin[0]
            old_q = good[ff_index]
            new_q = good[d_source]
            vis_here = self.vis[ff_index]
            candidates = self._scratch_candidates
            candidates.clear()
            purge = self._scratch_purge
            purge.clear()

            bucket = self.vis[d_source]
            if bucket:
                self._scan_bucket(d_source, bucket, candidates, purge, drop)
            if not split:
                bucket = self.invis[d_source]
                if bucket:
                    self._scan_bucket(d_source, bucket, candidates, purge, drop)
            if vis_here:
                self._scan_bucket(ff_index, vis_here, candidates, purge, drop)
            for fid in self.local_faults[ff_index]:
                if drop and descriptors[fid].detected:
                    continue
                candidates[fid] = True
            for source, fid in purge:
                self._remove(source, fid)

            updates: List[Tuple[int, int, bool]] = []
            event = new_q != old_q
            if trace is not None and candidates:
                trace.fault_evals(ff_index, len(candidates))
            for fid in candidates:
                descriptor = descriptors[fid]
                q_fault = self.vis[d_source].get(fid, new_q)
                self.counters.fault_evaluations += 1
                if descriptor.site_gate == ff_index:
                    if descriptor.behavior is Behavior.FORCE_OUTPUT:
                        q_fault = descriptor.value
                    elif descriptor.behavior is Behavior.FORCE_INPUT:
                        # A stuck D pin latches the forced value.
                        q_fault = descriptor.value
                    elif descriptor.behavior is Behavior.TRANSITION:
                        # A slow D transition latches the stale value.
                        q_fault = self._ff_transition_latch(descriptor, q_fault)
                before = vis_here.get(fid, old_q)
                updates.append((fid, q_fault, q_fault != new_q))
                if before != q_fault:
                    event = True
            pending.append((ff_index, new_q, updates, event))
        return pending

    def _commit_ff_updates(
        self, pending: List[Tuple[int, int, List[Tuple[int, int, bool]], bool]]
    ) -> None:
        """Commit phase: assign the latched values and seed the next cycle.

        Flip-flop events schedule combinational fanouts for the next
        cycle's queue and mark downstream flip-flops dirty for the next
        boundary.
        """
        circuit = self.circuit
        good = self.good
        for ff_index, new_q, updates, event in pending:
            good[ff_index] = new_q
            for fid, q_fault, differs in updates:
                if differs:
                    self._store(self.vis, ff_index, fid, q_fault)
                else:
                    self._remove(ff_index, fid)
            if event:
                self.counters.events += 1
                trace = self.tracer
                if trace is not None:
                    trace.event(ff_index)
                for sink in circuit.gates[ff_index].fanout:
                    if circuit.gates[sink].gtype is GateType.DFF:
                        self._dirty_ffs.add(sink)
                    else:
                        self._next_cycle_gates.add(sink)
