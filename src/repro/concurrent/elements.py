"""Fault descriptors and the behaviour abstraction of the concurrent engine.

The paper's data structure (Figure 2) separates per-location *fault
elements* (fault id + local state, kept on per-gate lists) from one global
*fault descriptor* per fault ("information central to the fault ... for
example, how to evaluate the faulty machine, or whether the fault has
already been detected").  This module is the descriptor side; the per-gate
element lists live inside the engine as dictionaries keyed by fault id.

A descriptor's :class:`Behavior` says how to evaluate the faulty machine at
its site gate:

``FORCE_OUTPUT``  the gate's output line is forced to a value (output
                  stuck-at faults, including on PIs and flip-flops);
``FORCE_INPUT``   one input pin is forced (input stuck-at faults);
``TABLE``         the gate evaluates through a private faulty lookup table —
                  the *functional faults* that macro extraction produces
                  ("stuck at faults may be translated into functional faults
                  which can be represented by look up table entries");
``TRANSITION``    one pin's value is delayed per the transition-fault rule
                  during the sampling pass (Section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.faults.model import Fault, FaultKind
from repro.logic.values import X


class Behavior(enum.Enum):
    FORCE_OUTPUT = "force_output"
    FORCE_INPUT = "force_input"
    TABLE = "table"
    TRANSITION = "transition"


@dataclass(slots=True)
class FaultDescriptor:
    """Global per-fault record shared by all of a fault's elements.

    ``fault`` is the user-facing fault definition on the *original* (flat)
    circuit; ``site_gate``/``pin`` locate the fault in the engine's working
    circuit, which differs from the original when macro extraction is on.

    Slotted: a campaign holds one descriptor per fault for its whole
    lifetime (tens of thousands on the larger circuits, per shard under
    the parallel runner), so the per-instance ``__dict__`` is pure
    overhead and attribute loads off slots are faster on the hot path.
    """

    fid: int
    fault: Fault
    site_gate: int
    behavior: Behavior
    pin: int = -1
    value: int = X
    table: Optional[Tuple[int, ...]] = None
    kind: Optional[FaultKind] = None
    detected: bool = False
    detect_cycle: Optional[int] = None
    # Transition faults: the site line's value in this fault's machine at
    # the end of the previous cycle (PV of Table 1).
    prev_site_value: int = X

    def mark_detected(self, cycle: int) -> None:
        if not self.detected:
            self.detected = True
            self.detect_cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = f"detected@{self.detect_cycle}" if self.detected else "live"
        return f"FaultDescriptor({self.fid}, {self.fault}, {status})"
