"""Concurrent fault simulation under arbitrary gate delays.

The flexibility argument of the paper's Section 2: concurrent simulation
is not tied to zero-delay synchronous operation — "the circuit gates may
have arbitrary but known propagation delays".  The paper sketches exactly
this engine: a two-phase timing queue where "events are posted for all
changing elements after gate evaluation", list events carry a collection
of faulty-machine values maturing together, and "in the first phase of
fault simulation, the matured events are fetched to assign logic values to
gate outputs" while the second phase evaluates the activated gates.

This module implements that general engine for stuck-at faults:

* every machine (good or faulty) propagates its own events through the
  timing wheel; a fault element exists at a gate exactly while the faulty
  machine's output differs from the good machine's *current* output;
* one gate evaluation serves all machines that changed: the good event and
  the accompanying faulty events post together after the gate's delay (the
  paper's "list event" for unit/constant gate delays);
* machines explicit nowhere around a gate share the good machine's inputs
  at all times, hence its output trajectory — they are never stored or
  evaluated, which is the whole point of concurrent simulation;
* within one time step, good events mature before faulty events so
  convergence is judged against the fresh good value;
* primary outputs are strobed once per clock period; flip-flops latch the
  settled (possibly stale — short periods are simulated honestly) values
  at the period boundary, carrying fault effects across cycles.

The serial oracle for this engine is
:class:`repro.sim.eventsim.EventSimulator` with a single injected fault;
the cross-validation tests run both over random delay assignments.
"""

from __future__ import annotations

import time as time_module
import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit, evaluate_gate
from repro.concurrent.elements import Behavior, FaultDescriptor
from repro.concurrent.options import SimOptions
from repro.faults.model import Fault, OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import X
from repro.obs.tracer import Tracer
from repro.result import FaultSimResult, MemoryStats, WorkCounters
from repro.sim.delays import DelayModel, unit_delays

#: Machine id of the fault-free machine in event records.
GOOD = -1


class ConcurrentEventFaultSimulator:
    """Concurrent stuck-at fault simulation on a transport-delay model."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Iterable[StuckAtFault]] = None,
        delays: Optional[DelayModel] = None,
        options: SimOptions = SimOptions(),
        tracer: Optional[Tracer] = None,
    ) -> None:
        if options.use_macros:
            raise ValueError(
                "macro extraction is a zero-delay optimization; the timed "
                "engine runs on the flat circuit"
            )
        self.circuit = circuit
        self.tracer = tracer
        self.delays = delays or unit_delays(circuit)
        self.options = options
        universe = stuck_at_universe(circuit) if faults is None else faults
        self.faults: List[StuckAtFault] = sorted(universe)
        self.descriptors: List[FaultDescriptor] = []
        self.local_faults: Dict[int, List[int]] = {
            gate.index: [] for gate in circuit.gates
        }
        for fid, fault in enumerate(self.faults):
            behavior = (
                Behavior.FORCE_OUTPUT if fault.pin == OUTPUT_PIN else Behavior.FORCE_INPUT
            )
            descriptor = FaultDescriptor(
                fid=fid,
                fault=fault,
                site_gate=fault.gate,
                behavior=behavior,
                pin=fault.pin,
                value=fault.value,
            )
            self.descriptors.append(descriptor)
            self.local_faults[fault.gate].append(fid)
        #: Per-gate frozen view of the site-anchored fault ids: their
        #: elements survive good-side convergence sweeps (the forcing
        #: persists regardless of the good value).
        self._local_sets: Dict[int, frozenset] = {
            gate_index: frozenset(fids) for gate_index, fids in self.local_faults.items()
        }
        self.reset()

    def reset(self) -> None:
        circuit = self.circuit
        count = len(circuit.gates)
        self.good: List[int] = [X] * count
        self.vis: List[Dict[int, int]] = [dict() for _ in range(count)]
        self.time = 0
        self.cycle = 0
        self.detected: Dict[Fault, int] = {}
        self.potentially_detected: Dict[Fault, int] = {}
        self.counters = WorkCounters()
        self.memory = MemoryStats(
            num_descriptors=len(self.descriptors),
            element_bytes=self.options.element_bytes,
            descriptor_bytes=self.options.descriptor_bytes,
        )
        self._live = 0
        # Timing wheel: per-time bucket of (gate, machine, value).
        self._bucket: Dict[int, List[Tuple[int, int, int]]] = {}
        self._times: List[int] = []
        self._last_posted: Dict[int, int] = {}
        self._powered_up = False
        for descriptor in self.descriptors:
            descriptor.detected = False
            descriptor.detect_cycle = None

    # -- checkpointing -----------------------------------------------------

    def snapshot(self) -> dict:
        """Capture the full simulation state, timing wheel included.

        The returned object is opaque; pass it back to :meth:`restore`.
        Counters and memory statistics are included so a restored run is
        bit-identical to one that was never interrupted.
        """
        import copy

        return {
            "good": list(self.good),
            "vis": [dict(bucket) for bucket in self.vis],
            "time": self.time,
            "cycle": self.cycle,
            "detected": dict(self.detected),
            "potential": dict(self.potentially_detected),
            "counters": copy.copy(self.counters),
            "memory": copy.copy(self.memory),
            "live": self._live,
            "bucket": {at: list(events) for at, events in self._bucket.items()},
            "times": list(self._times),
            "last_posted": dict(self._last_posted),
            "powered_up": self._powered_up,
            "descriptor_state": [
                (d.detected, d.detect_cycle) for d in self.descriptors
            ],
        }

    def restore(self, state: dict) -> None:
        """Roll the simulator back to a :meth:`snapshot`."""
        import copy

        self.good = list(state["good"])
        self.vis = [dict(bucket) for bucket in state["vis"]]
        self.time = state["time"]
        self.cycle = state["cycle"]
        self.detected = dict(state["detected"])
        self.potentially_detected = dict(state["potential"])
        self.counters = copy.copy(state["counters"])
        self.memory = copy.copy(state["memory"])
        self._live = state["live"]
        self._bucket = {at: list(events) for at, events in state["bucket"].items()}
        # A copied heap list keeps the heap property; no re-heapify needed.
        self._times = list(state["times"])
        self._last_posted = dict(state["last_posted"])
        self._powered_up = state["powered_up"]
        for descriptor, (det, det_cycle) in zip(
            self.descriptors, state["descriptor_state"]
        ):
            descriptor.detected = det
            descriptor.detect_cycle = det_cycle

    # ------------------------------------------------------------------
    # timing wheel
    # ------------------------------------------------------------------

    def _post(self, at_time: int, gate_index: int, machine: int, value: int) -> None:
        # Only the good machine's posts can be deduplicated: its trajectory
        # is self-contained, so "same value as last posted" means no change.
        # A faulty machine's *effective* value also depends on the good
        # value (absent element = follows good) and on element removals by
        # in-flight good events, so an apparently redundant fault post may
        # be exactly the one that re-creates a needed element.  Fault
        # events always enqueue; maturing to a no-op is cheap and final.
        if machine == GOOD:
            if self._last_posted.get(gate_index) == value:
                return
            self._last_posted[gate_index] = value
        bucket = self._bucket.get(at_time)
        if bucket is None:
            bucket = []
            self._bucket[at_time] = bucket
            heapq.heappush(self._times, at_time)
        bucket.append((gate_index, machine, value))

    # ------------------------------------------------------------------
    # evaluation (phase 2)
    # ------------------------------------------------------------------

    def _candidates(self, gate_index: int, fanin) -> Dict[int, bool]:
        descriptors = self.descriptors
        drop = self.options.drop_detected
        counters = self.counters
        trace = self.tracer
        candidates: Dict[int, bool] = {}
        purge: List[Tuple[int, int]] = []
        for source in list(fanin) + [gate_index]:
            if trace is not None and self.vis[source]:
                trace.element_visits(source, len(self.vis[source]))
            for fid in self.vis[source]:
                counters.element_visits += 1
                if drop and descriptors[fid].detected:
                    purge.append((source, fid))
                    continue
                candidates[fid] = True
        for fid in self.local_faults[gate_index]:
            if drop and descriptors[fid].detected:
                continue
            candidates[fid] = True
        for source, fid in purge:
            if self.vis[source].pop(fid, None) is not None:
                self._live -= 1
                if trace is not None:
                    trace.converge(source, fid)
        return candidates

    def _evaluate_machine(self, descriptor, gate, gate_index: int) -> int:
        vis = self.vis
        good = self.good
        inputs = [
            vis[source].get(descriptor.fid, good[source]) for source in gate.fanin
        ]
        if descriptor.site_gate == gate_index:
            if descriptor.behavior is Behavior.FORCE_OUTPUT:
                return descriptor.value
            inputs[descriptor.pin] = descriptor.value
        return evaluate_gate(gate, inputs)

    def _evaluate(self, gate_index: int, machines: Set[int]) -> None:
        """Evaluate the activated machines at a gate, posting the
        resulting events after the gate's delay.

        ``GOOD`` in *machines* means a good-side activation: the good
        machine plus every machine currently explicit around the gate
        re-evaluates (their implicit inputs just changed with the good
        value).  Machines named explicitly are evaluated regardless — an
        activation can name a machine whose element just converged away,
        in which case the per-gate lists no longer reveal it.
        """
        gate = self.circuit.gates[gate_index]
        due = self.time + self.delays.delay(gate_index)
        trace = self.tracer
        if GOOD in machines:
            self.counters.good_evaluations += 1
            if trace is not None:
                trace.good_evals(gate_index)
            good_inputs = [self.good[source] for source in gate.fanin]
            new_good = evaluate_gate(gate, good_inputs)
            self._post(due, gate_index, GOOD, new_good)
            fault_ids = self._candidates(gate_index, gate.fanin)
        else:
            fault_ids = {}
        for fid in machines:
            if fid != GOOD and not (
                self.options.drop_detected and self.descriptors[fid].detected
            ):
                fault_ids[fid] = True
        if trace is not None and fault_ids:
            trace.fault_evals(gate_index, len(fault_ids))
        for fid in fault_ids:
            descriptor = self.descriptors[fid]
            self.counters.fault_evaluations += 1
            value = self._evaluate_machine(descriptor, gate, gate_index)
            self._post(due, gate_index, fid, value)

    # ------------------------------------------------------------------
    # maturity (phase 1) + main loop
    # ------------------------------------------------------------------

    def _run(self, until: int) -> None:
        circuit = self.circuit
        gates = circuit.gates
        drop = self.options.drop_detected
        trace = self.tracer
        while self._times and self._times[0] <= until:
            now = heapq.heappop(self._times)
            events = self._bucket.pop(now)
            self.time = now

            # Good events first: convergence is judged against the fresh
            # good value within the same time step.
            activated: Dict[int, Set[int]] = {}

            def activate(gate_index: int, machine: int) -> None:
                for sink in gates[gate_index].fanout:
                    if gates[sink].gtype in (GateType.INPUT, GateType.DFF):
                        continue
                    if sink in activated:
                        activated[sink].add(machine)
                    else:
                        activated[sink] = {machine}

            for gate_index, machine, value in events:
                if machine != GOOD:
                    continue
                self.counters.events += 1
                if trace is not None:
                    trace.event(gate_index)
                if self.good[gate_index] == value:
                    continue
                self.good[gate_index] = value
                # Elements equal to the new good value converge silently:
                # their machines' outputs did not change.  Site-anchored
                # elements are exempt — their forcing outlives any
                # momentary equality with the good value, and the event
                # dedup rightly suppresses re-posting the constant.
                bucket = self.vis[gate_index]
                local = self._local_sets[gate_index]
                for fid in [
                    f for f, v in bucket.items() if v == value and f not in local
                ]:
                    del bucket[fid]
                    self._live -= 1
                    if trace is not None:
                        trace.converge(gate_index, fid)
                activate(gate_index, GOOD)

            for gate_index, machine, value in events:
                if machine == GOOD:
                    continue
                self.counters.events += 1
                if trace is not None:
                    trace.event(gate_index)
                descriptor = self.descriptors[machine]
                if drop and descriptor.detected:
                    if self.vis[gate_index].pop(machine, None) is not None:
                        self._live -= 1
                        if trace is not None:
                            trace.converge(gate_index, machine)
                    continue
                bucket = self.vis[gate_index]
                before = bucket.get(machine, self.good[gate_index])
                if (
                    value == self.good[gate_index]
                    and machine not in self._local_sets[gate_index]
                ):
                    if bucket.pop(machine, None) is not None:
                        self._live -= 1
                        if trace is not None:
                            trace.converge(gate_index, machine)
                else:
                    # Stored even when equal to good for site-anchored
                    # machines: the forcing persists and the dedup will
                    # (correctly) never re-post the constant value.
                    if machine not in bucket:
                        self._live += 1
                        if trace is not None:
                            trace.diverge(gate_index, machine)
                    bucket[machine] = value
                if before != value:
                    activate(gate_index, machine)

            for gate_index, machines in activated.items():
                self.counters.gates_scheduled += 1
                if trace is not None:
                    trace.scheduled(gate_index, gates[gate_index].level)
                self._evaluate(gate_index, machines)
        self.time = until

    # ------------------------------------------------------------------
    # synchronous wrapper
    # ------------------------------------------------------------------

    def _power_up(self) -> None:
        """First-cycle initialization: every gate evaluates once (local
        faults get their chance to diverge from the X state) and forced
        source outputs become explicit."""
        if self._powered_up:
            return
        self._powered_up = True
        for gate_index in self.circuit.order:
            self._evaluate(gate_index, {GOOD})
        for source in self.circuit.inputs + self.circuit.dffs:
            for fid in self.local_faults[source]:
                descriptor = self.descriptors[fid]
                if descriptor.behavior is Behavior.FORCE_OUTPUT:
                    self._post(self.time, source, fid, descriptor.value)

    def _apply_vector(self, vector: Sequence[int]) -> None:
        for position, pi_index in enumerate(self.circuit.inputs):
            value = vector[position]
            self._post(self.time, pi_index, GOOD, value)
            for fid in self.local_faults[pi_index]:
                descriptor = self.descriptors[fid]
                if self.options.drop_detected and descriptor.detected:
                    continue
                if descriptor.behavior is Behavior.FORCE_OUTPUT:
                    self._post(self.time, pi_index, fid, descriptor.value)

    def _strobe(self) -> List[Fault]:
        """Sample the primary outputs: hard and potential detections."""
        newly: List[Fault] = []
        hard: List[int] = []
        trace = self.tracer
        for po_index in self.circuit.outputs:
            good_value = self.good[po_index]
            if good_value == X:
                continue
            if trace is not None and self.vis[po_index]:
                trace.element_visits(po_index, len(self.vis[po_index]))
            for fid, value in self.vis[po_index].items():
                self.counters.element_visits += 1
                if value == good_value:
                    continue  # invisible (site-anchored, currently equal)
                descriptor = self.descriptors[fid]
                if descriptor.detected:
                    continue
                if value == X:
                    if descriptor.fault not in self.potentially_detected:
                        self.potentially_detected[descriptor.fault] = self.cycle
                        if trace is not None:
                            trace.detect(fid, self.cycle, potential=True)
                else:
                    hard.append(fid)
        for fid in hard:
            descriptor = self.descriptors[fid]
            if descriptor.detected:
                continue
            descriptor.mark_detected(self.cycle)
            self.detected[descriptor.fault] = self.cycle
            newly.append(descriptor.fault)
            if trace is not None:
                trace.detect(fid, self.cycle)
                if self.options.drop_detected:
                    trace.drop(fid, self.cycle)
        return newly

    def _latch(self) -> None:
        """Latch every flip-flop from the settled D values (good and
        faulty), posting the Q changes as zero-delay events at the
        boundary."""
        circuit = self.circuit
        drop = self.options.drop_detected
        trace = self.tracer
        posts: List[Tuple[int, int, int]] = []
        for ff_index in circuit.dffs:
            gate = circuit.gates[ff_index]
            d_source = gate.fanin[0]
            new_q = self.good[d_source]
            posts.append((ff_index, GOOD, new_q))
            candidates: Dict[int, bool] = {}
            for fid in self.vis[d_source]:
                candidates[fid] = True
            for fid in self.vis[ff_index]:
                candidates[fid] = True
            for fid in self.local_faults[ff_index]:
                candidates[fid] = True
            evals = 0
            for fid in candidates:
                descriptor = self.descriptors[fid]
                if drop and descriptor.detected:
                    continue
                self.counters.fault_evaluations += 1
                evals += 1
                q_fault = self.vis[d_source].get(fid, new_q)
                if descriptor.site_gate == ff_index:
                    q_fault = descriptor.value
                posts.append((ff_index, fid, q_fault))
            if trace is not None and evals:
                trace.fault_evals(ff_index, evals)
        for ff_index, machine, value in posts:
            self._post(self.time, ff_index, machine, value)

    def run_cycle(self, vector: Sequence[int], period: int) -> List[Fault]:
        """One clock period: apply, settle for *period*, strobe, latch."""
        circuit = self.circuit
        if len(vector) != len(circuit.inputs):
            raise ValueError("vector width mismatch")
        self.cycle += 1
        self.counters.cycles += 1
        trace = self.tracer
        if trace is None:
            self._power_up()
            self._apply_vector(vector)
            self._run(until=self.time + period)
            self.memory.note_elements(self._live)
            newly = self._strobe()
            self._latch()
            return newly

        trace.cycle_start(self.cycle)
        t0 = time_module.perf_counter()
        self._power_up()
        self._apply_vector(vector)
        t1 = time_module.perf_counter()
        trace.phase_time("apply", t1 - t0)
        self._run(until=self.time + period)
        t2 = time_module.perf_counter()
        trace.phase_time("settle", t2 - t1)
        self.memory.note_elements(self._live)
        newly = self._strobe()
        t3 = time_module.perf_counter()
        trace.phase_time("strobe", t3 - t2)
        self._latch()
        trace.phase_time("latch", time_module.perf_counter() - t3)
        visible = sum(map(len, self.vis)) if trace.enabled else 0
        trace.cycle_end(self.cycle, live=self._live, visible=visible, invisible=0)
        return newly

    def run(
        self, vectors: Sequence[Sequence[int]], period: int, budget=None
    ) -> FaultSimResult:
        trace = self.tracer
        if trace is not None:
            trace.run_start("csim-AD", self.circuit.name)
        clock = budget.start() if budget else None
        start = time_module.perf_counter()
        applied = 0
        truncation_reason = None
        for vector in vectors:
            if clock is not None:
                breach = clock.check(self.counters.cycles, self.memory.peak_bytes)
                if breach is not None:
                    truncation_reason = breach.describe()
                    if trace is not None:
                        trace.budget_breach(breach.kind, breach.limit, breach.actual)
                    break
            self.run_cycle(vector, period)
            applied += 1
        elapsed = time_module.perf_counter() - start
        result = FaultSimResult(
            engine="csim-AD",
            circuit_name=self.circuit.name,
            num_faults=len(self.faults),
            num_vectors=applied,
            detected=dict(self.detected),
            potentially_detected=dict(self.potentially_detected),
            counters=self.counters,
            memory=self.memory,
            wall_seconds=elapsed,
            truncated=truncation_reason is not None,
            truncation_reason=truncation_reason,
        )
        if trace is not None:
            trace.run_end(elapsed)
            result.telemetry = trace.telemetry()
        return result
