"""Configuration of the concurrent engine's variants.

The paper names its simulators by the improvements enabled: ``csim`` (base),
``csim-V`` (split visible/invisible lists), ``csim-M`` (macro extraction)
and ``csim-MV`` (both).  The module-level constants mirror those names; the
benchmark tables iterate over them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimOptions:
    """Knobs of :class:`repro.concurrent.engine.ConcurrentFaultSimulator`.

    ``split_lists``
        Keep visible and invisible fault elements on separate per-gate
        lists so propagation and detection only scan visible elements
        (Section 2.2, second improvement).
    ``use_macros``
        Collapse fanout-free regions into table-driven macro gates and
        translate internal stuck-at faults into functional faults
        (Section 2.2, third improvement).
    ``macro_max_inputs``
        Input cap for a macro (lookup tables grow as ``4**k``).
    ``drop_detected``
        Event-driven fault dropping (Section 2.2, first improvement).
        Disabling it exists only for the ablation benchmark — every
        practical run wants it on.
    ``element_bytes`` / ``descriptor_bytes``
        Memory model used to report megabyte figures comparable in shape
        to the paper's tables.
    ``sanitize``
        Run the fault-list sanitizer
        (:class:`repro.analyze.sanitize.FaultListSanitizer`) at every
        phase boundary.  Opt-in debugging aid; does not change results or
        the variant name, only adds invariant scans.
    """

    split_lists: bool = False
    use_macros: bool = False
    macro_max_inputs: int = 4
    drop_detected: bool = True
    element_bytes: int = 12
    descriptor_bytes: int = 20
    sanitize: bool = False

    @property
    def variant_name(self) -> str:
        """The paper's name for this configuration."""
        suffix = ""
        if self.use_macros:
            suffix += "M"
        if self.split_lists:
            suffix += "V"
        name = "csim" if not suffix else f"csim-{suffix}"
        if not self.drop_detected:
            name += " (no drop)"
        return name

    def with_(self, **changes) -> "SimOptions":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The four configurations evaluated in the paper's Tables 3-5.
CSIM = SimOptions()
CSIM_V = SimOptions(split_lists=True)
CSIM_M = SimOptions(use_macros=True)
CSIM_MV = SimOptions(split_lists=True, use_macros=True)
