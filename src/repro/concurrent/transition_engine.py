"""Concurrent transition-fault simulation (Section 3 of the paper).

"The concurrent fault simulation method as proposed is ideal to simulate
the transition faults because all previous input values of all the gates
are available.  To simulate the transition faults, the combinational part
of the synchronous sequential circuit is simulated twice."

Per clock cycle:

1. **Sampling pass** — every faulty transition is assumed *not to fire*:
   at a fault's site the delayed value of Table 1 (see
   :func:`repro.faults.transition.delayed_value`) replaces the settled
   value.  The primary outputs are observed (detections) and the flip-flop
   masters latch from these values.
2. **Firing pass** — the network is re-simulated with all transitions
   fired (no forcing), so each faulty machine's combinational part settles
   to the values implied by its own flip-flop state, as the real circuit
   does after the delayed transitions complete.  Then the masters commit
   to the slaves, carrying the sampled (possibly wrong) values forward.

The per-fault "previous value" (PV) each delayed-value computation needs is
held in the fault's descriptor and refreshed after the firing pass: the
delay defect is smaller than one cycle, so every line finishes the cycle at
its fired value.

The engine reuses the stuck-at machinery — fault lists, divergence and
convergence, event-driven dropping, optional visible/invisible splitting —
and only overrides site evaluation and the per-cycle flow.  Macro
extraction is not supported for transition faults (a delayed internal line
cannot be represented by a static functional table); the paper likewise
reports transition results without macros.
"""

from __future__ import annotations

import time
from typing import Iterable, List, Optional, Sequence, Set

from repro.circuit.netlist import Circuit
from repro.concurrent.elements import Behavior, FaultDescriptor
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.faults.model import Fault, OUTPUT_PIN
from repro.faults.transition import TransitionFault, all_transition_faults, delayed_value


class TransitionFaultSimulator(ConcurrentFaultSimulator):
    """Two-pass concurrent simulator for the transition-fault model."""

    def __init__(
        self,
        circuit: Circuit,
        faults: Optional[Iterable[TransitionFault]] = None,
        options: SimOptions = SimOptions(),
        tracer=None,
    ) -> None:
        if options.use_macros:
            raise ValueError(
                "macro extraction is not supported for transition faults; "
                "use a flat-circuit SimOptions"
            )
        self._firing = False
        super().__init__(circuit, faults, options, tracer=tracer)

    # -- universe / descriptors -------------------------------------------

    def _default_universe(self, circuit: Circuit) -> List[TransitionFault]:
        return all_transition_faults(circuit)

    def _make_descriptor(self, fid: int, fault: TransitionFault) -> FaultDescriptor:
        return FaultDescriptor(
            fid=fid,
            fault=fault,
            site_gate=fault.gate,
            behavior=Behavior.TRANSITION,
            pin=fault.pin,
            kind=fault.kind,
        )

    def _is_inert(self, descriptor: FaultDescriptor) -> bool:
        return False

    # -- site evaluation ----------------------------------------------------

    def _transition_output(self, descriptor, gate, inputs):
        """Evaluate the site gate with the transition delayed (sampling
        pass) or completed (firing pass)."""
        if self._firing:
            return self._good_output(gate, inputs)
        if descriptor.pin == OUTPUT_PIN:
            settled = self._good_output(gate, inputs)
            return delayed_value(descriptor.prev_site_value, settled, descriptor.kind)
        current = inputs[descriptor.pin]
        inputs[descriptor.pin] = delayed_value(
            descriptor.prev_site_value, current, descriptor.kind
        )
        return self._good_output(gate, inputs)

    def _ff_transition_latch(self, descriptor, q_fault):
        """A slow transition on a D pin latches the line's previous value
        when the transition fired this cycle (the flip-flop samples before
        the delayed edge arrives)."""
        return delayed_value(descriptor.prev_site_value, q_fault, descriptor.kind)

    def _apply_source(self, pi_index: int, value: int) -> None:
        """Primary inputs with output transition faults (only present when
        the universe was built with ``include_outputs``) delay at the pin
        itself during the sampling pass."""
        old_good = self.good[pi_index]
        self.good[pi_index] = value
        vis = self.vis[pi_index]
        event = value != old_good
        drop = self.options.drop_detected
        evals = 0
        for fid in self.local_faults[pi_index]:
            descriptor = self.descriptors[fid]
            if descriptor.detected and drop:
                self._remove(pi_index, fid)
                continue
            self.counters.fault_evaluations += 1
            evals += 1
            forced = delayed_value(descriptor.prev_site_value, value, descriptor.kind)
            before = vis.get(fid, old_good)
            if forced != value:
                self._store(self.vis, pi_index, fid, forced)
            else:
                self._remove(pi_index, fid)
            if before != forced:
                event = True
        if evals:
            trace = self.tracer
            if trace is not None:
                trace.fault_evals(pi_index, evals)
        if event:
            self._emit_event(pi_index)

    # -- per-cycle flow -------------------------------------------------------

    def step(self, vector: Sequence[int]) -> List[Fault]:
        circuit = self.circuit
        if len(vector) != len(circuit.inputs):
            raise ValueError(
                f"vector has {len(vector)} values for {len(circuit.inputs)} inputs"
            )
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.check("pre-cycle")
        self.cycle += 1
        self.counters.cycles += 1
        trace = self.tracer
        if trace is not None:
            trace.cycle_start(self.cycle)
            t0 = time.perf_counter()

        if self.cycle == 1:
            for gate_index in circuit.order:
                self._schedule(gate_index)
            self._dirty_ffs.update(circuit.dffs)
        else:
            for gate_index in self._next_cycle_gates:
                self._schedule(gate_index)
        self._next_cycle_gates = set()

        # Sampling pass: transitions held back at every fault site.
        self._firing = False
        evaluated: Set[int] = set()
        self._record_evaluated = evaluated
        for position, pi_index in enumerate(circuit.inputs):
            self._apply_source(pi_index, vector[position])
        self._settle()
        self._record_evaluated = None
        if sanitizer is not None:
            sanitizer.check("sample")
        self.memory.note_elements(self._live_elements)
        if trace is not None:
            t1 = time.perf_counter()
            trace.phase_time("sample", t1 - t0)

        newly_detected = self._detect()
        if sanitizer is not None:
            sanitizer.check("detect")
        if trace is not None:
            t2 = time.perf_counter()
            trace.phase_time("detect", t2 - t1)
        # Masters latch from sampled values; slaves commit after pass 2.
        # A flip-flop with a live D-pin transition fault must recompute its
        # latch every boundary: the delayed value depends on the line's
        # previous value, so the outcome can change one cycle after the
        # line last moved, with no event to flag it.
        for ff_index in circuit.dffs:
            if any(
                not self.descriptors[fid].detected
                for fid in self.local_faults[ff_index]
            ):
                self._dirty_ffs.add(ff_index)
        pending = self._compute_ff_updates()
        self._dirty_ffs = set()
        if trace is not None:
            t3 = time.perf_counter()
            trace.phase_time("latch", t3 - t2)

        # Firing pass: remove all forcing and let each machine settle to
        # the values its own state implies.
        self._firing = True
        self._release_pi_forcing()
        for gate_index in evaluated:
            self._schedule(gate_index)
        self._settle()
        if trace is not None:
            trace.phase_time("fire", time.perf_counter() - t3)

        # PV for the next cycle is read *before* the flip-flops commit: a
        # line fed by a flip-flop transitions at the coming clock edge, so
        # its value during this cycle — the old Q — is what a delayed
        # transition holds into the next sampling window.
        self._refresh_previous_values()
        self._commit_ff_updates(pending)
        if sanitizer is not None:
            sanitizer.check("commit")
        self.memory.note_elements(self._live_elements)
        if trace is not None:
            if trace.enabled:
                visible = sum(map(len, self.vis))
                invisible = sum(map(len, self.invis))
            else:
                visible = invisible = 0
            trace.cycle_end(
                self.cycle,
                live=self._live_elements,
                visible=visible,
                invisible=invisible,
            )
        return newly_detected

    def _release_pi_forcing(self) -> None:
        """Drop sampling-pass elements at primary inputs (fired = good)."""
        for pi_index in self.circuit.inputs:
            if not self.local_faults[pi_index]:
                continue
            event = False
            for fid in list(self.vis[pi_index]):
                self._remove(pi_index, fid)
                event = True
            if event:
                self._emit_event(pi_index)

    def _refresh_previous_values(self) -> None:
        """After the firing pass every line holds its completed value; that
        value is next cycle's PV at each fault's site, read in the fault's
        own machine (latched errors make it differ from the good value)."""
        circuit = self.circuit
        good = self.good
        vis = self.vis
        for descriptor in self.descriptors:
            if descriptor.detected:
                continue
            if descriptor.pin == OUTPUT_PIN:
                line = descriptor.site_gate
            else:
                line = circuit.gates[descriptor.site_gate].fanin[descriptor.pin]
            descriptor.prev_site_value = vis[line].get(descriptor.fid, good[line])

    def run(self, vectors: Iterable[Sequence[int]], stop_at_coverage=None, budget=None):
        result = super().run(vectors, stop_at_coverage, budget=budget)
        result.engine = f"csim-T{'' if not self.options.split_lists else 'V'}"
        if result.telemetry is not None:
            result.telemetry.engine = result.engine
        return result
