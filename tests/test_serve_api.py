"""HTTP end-to-end tests for the serve REST API.

Each test boots a real :class:`ServeHTTPServer` on a loopback port and
talks to it with ``urllib`` — the same client path the CI e2e script and
the README curl walkthrough exercise.  The headline assertions mirror the
subsystem's contract: results fetched over HTTP are bit-identical to
direct in-process runs, duplicates are served from the cache, and a full
queue answers 429 with a Retry-After header.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuit.library import load
from repro.harness.runner import run_stuck_at
from repro.patterns.random_gen import random_sequence
from repro.serve import FaultSimService, ServeConfig, make_server, serialize_result


class Client:
    """A minimal JSON client over urllib."""

    def __init__(self, port):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method, path, payload=None):
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, payload=None):
        return self.request("POST", path, payload)

    def post_raw(self, path, body):
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=body.encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def get_json(self, path):
        status, _, body = self.get(path)
        return status, json.loads(body)

    def post_json(self, path, payload=None):
        status, _, body = self.post(path, payload)
        return status, json.loads(body)

    def wait_done(self, job_id, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, record = self.get_json(f"/jobs/{job_id}")
            assert status == 200
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture
def serving(tmp_path):
    """A service with one background worker behind a live HTTP server."""
    service = FaultSimService(
        ServeConfig(state_dir=str(tmp_path / "state"), workers=1)
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    yield service, Client(server.server_address[1])
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture
def backlogged(tmp_path):
    """A tiny-queue service with NO workers, so the queue stays full."""
    service = FaultSimService(
        ServeConfig(state_dir=str(tmp_path / "state"), workers=0, queue_limit=2)
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield service, Client(server.server_address[1])
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


JOB = {"circuit": "s27", "random_patterns": 32, "seed": 11}


class TestLifecycle:
    def test_submit_poll_fetch_bit_identical(self, serving):
        _, client = serving
        status, record = client.post_json("/jobs", dict(JOB))
        assert status == 201
        assert record["state"] in ("queued", "running", "done")
        finished = client.wait_done(record["job_id"])
        assert finished["state"] == "done"

        status, headers, blob = client.get(f"/jobs/{record['job_id']}/result")
        assert status == 200
        assert headers["Content-Type"] == "application/json"

        circuit = load("s27")
        direct = run_stuck_at(circuit, random_sequence(circuit, 32, seed=11), "csim-MV")
        assert blob == serialize_result(direct, circuit)

    def test_duplicate_submission_hits_cache(self, serving, tmp_path):
        service, client = serving
        status, first = client.post_json("/jobs", dict(JOB))
        assert status == 201
        client.wait_done(first["job_id"])

        status, duplicate = client.post_json("/jobs", dict(JOB))
        assert status == 201
        assert duplicate["state"] == "done"  # finished at submit time
        assert duplicate["cache_hit"]

        _, _, blob_a = client.get(f"/jobs/{first['job_id']}/result")
        _, _, blob_b = client.get(f"/jobs/{duplicate['job_id']}/result")
        assert blob_a == blob_b
        status, metrics = client.get_json("/metrics")
        assert metrics["jobs"]["simulated"] == 1
        assert metrics["cache"]["hits"] == 1

    def test_idempotency_key_returns_200_existing(self, serving):
        _, client = serving
        status, first = client.post_json("/jobs", dict(JOB, idempotency_key="k1"))
        assert status == 201
        status, again = client.post_json("/jobs", dict(JOB, idempotency_key="k1"))
        assert status == 200
        assert again["job_id"] == first["job_id"]

    def test_result_409_until_done_then_200(self, backlogged):
        service, client = backlogged
        status, record = client.post_json("/jobs", dict(JOB))
        assert status == 201
        status, headers, _ = client.get(f"/jobs/{record['job_id']}/result")
        assert status == 409
        assert "Retry-After" in headers
        service.drain()
        status, _, _ = client.get(f"/jobs/{record['job_id']}/result")
        assert status == 200

    def test_cancel_endpoint(self, backlogged):
        _, client = backlogged
        status, record = client.post_json("/jobs", dict(JOB))
        status, cancelled = client.post_json(f"/jobs/{record['job_id']}/cancel")
        assert status == 200
        assert cancelled["state"] == "cancelled"
        # A second cancel is refused: the job is already terminal.
        status, _ = client.post_json(f"/jobs/{record['job_id']}/cancel")
        assert status == 409


class TestBackpressure:
    def test_429_with_retry_after_when_queue_full(self, backlogged):
        _, client = backlogged
        for seed in (1, 2):
            status, _ = client.post_json("/jobs", dict(JOB, seed=seed))
            assert status == 201
        status, headers, body = client.post("/jobs", dict(JOB, seed=3))
        assert status == 429
        assert headers["Retry-After"] == "1"
        assert "full" in json.loads(body)["error"]
        status, metrics = client.get_json("/metrics")
        assert metrics["jobs"]["rejected"] == 1
        assert metrics["queue"]["depth"] == 2

    def test_429_clears_after_drain(self, backlogged):
        service, client = backlogged
        for seed in (1, 2):
            client.post_json("/jobs", dict(JOB, seed=seed))
        status, _ = client.post_json("/jobs", dict(JOB, seed=3))
        assert status == 429
        service.drain()
        status, _ = client.post_json("/jobs", dict(JOB, seed=3))
        assert status == 201


class TestErrors:
    def test_bad_payload_400(self, serving):
        _, client = serving
        for payload in ({}, {"circuit": "s27", "engine": "bogus"}, {"nope": 1}):
            status, document = client.post_json("/jobs", payload)
            assert status == 400
            assert "error" in document

    def test_malformed_json_400(self, serving):
        _, client = serving
        status, _, body = client.post_raw("/jobs", "{not json")
        assert status == 400
        assert "bad JSON" in json.loads(body)["error"]

    def test_unknown_job_404(self, serving):
        _, client = serving
        for path in ("/jobs/job-999999", "/jobs/job-999999/result"):
            status, _ = client.get_json(path)
            assert status == 404
        status, _ = client.post_json("/jobs/job-999999/cancel")
        assert status == 404

    def test_unknown_route_404(self, serving):
        _, client = serving
        status, _ = client.get_json("/nope")
        assert status == 404


class TestIntrospection:
    def test_healthz(self, serving):
        _, client = serving
        status, health = client.get_json("/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers_alive"] == 1
        assert health["queue_capacity"] == 256

    def test_jobs_listing(self, serving):
        _, client = serving
        status, first = client.post_json("/jobs", dict(JOB))
        client.wait_done(first["job_id"])
        status, listing = client.get_json("/jobs")
        assert status == 200
        ids = [record["job_id"] for record in listing["jobs"]]
        assert first["job_id"] in ids

    def test_metrics_shape(self, serving):
        _, client = serving
        status, record = client.post_json("/jobs", dict(JOB))
        client.wait_done(record["job_id"])
        status, metrics = client.get_json("/metrics")
        assert status == 200
        for section in ("jobs", "queue", "cache", "batch", "latency", "counters"):
            assert section in metrics
        assert metrics["latency"]["simulate"]["count"] == 1
        assert metrics["counters"]["cycles"] > 0
        assert "resilience" in metrics
        assert "leases" in metrics
        assert metrics["queue"]["saturation"] == 0.0


class TestResiliencePlane:
    def test_retry_endpoint_resurrects_dead_job(self, backlogged):
        from repro.concurrent.engine import ConcurrentFaultSimulator
        from repro.robust.chaos import step_bomb

        service, client = backlogged
        status, record = client.post_json("/jobs", {**JOB, "max_attempts": 1})
        assert status == 201
        with step_bomb(ConcurrentFaultSimulator, after_steps=0, exception=OSError):
            service.drain()
        status, dead = client.get_json(f"/jobs/{record['job_id']}")
        assert dead["state"] == "dead"
        assert dead["error_history"]

        status, reborn = client.post_json(f"/jobs/{record['job_id']}/retry")
        assert status == 200
        assert reborn["state"] == "queued"
        assert reborn["attempts"] == 0
        service.drain()
        status, _, _ = client.get(f"/jobs/{record['job_id']}/result")
        assert status == 200

    def test_retry_endpoint_refuses_live_jobs(self, backlogged):
        _, client = backlogged
        status, record = client.post_json("/jobs", dict(JOB))
        status, document = client.post_json(f"/jobs/{record['job_id']}/retry")
        assert status == 409
        assert "queued" in document["error"]
        status, _ = client.post_json("/jobs/job-999999/retry")
        assert status == 404

    def test_draining_submit_gets_503_with_retry_after(self, backlogged):
        service, client = backlogged
        service.begin_drain()
        status, headers, body = client.post("/jobs", dict(JOB))
        assert status == 503
        assert "Retry-After" in headers
        assert "draining" in json.loads(body)["error"]
        status, health = client.get_json("/healthz")
        assert health["status"] == "draining"
        assert health["draining"] is True

    def test_cancel_race_gets_410_not_500(self, backlogged, monkeypatch):
        """A record deleted between cancel and re-read answers 410."""
        service, client = backlogged
        status, record = client.post_json("/jobs", dict(JOB))
        original = service.cancel

        def cancel_then_vanish(job_id):
            outcome = original(job_id)
            service.store.delete(job_id)
            return outcome

        monkeypatch.setattr(service, "cancel", cancel_then_vanish)
        status, document = client.post_json(f"/jobs/{record['job_id']}/cancel")
        assert status == 410
        assert "removed" in document["error"]


DIAGNOSE = {
    "circuit": "s27",
    "random_patterns": 32,
    "seed": 11,
    "failures": [[5, 0]],
}


class TestDiagnoseEndpoint:
    def test_miss_builds_then_hit_serves_over_http(self, serving):
        _, client = serving
        status, headers, body = client.post("/diagnose", dict(DIAGNOSE))
        assert status == 202
        assert headers.get("Retry-After") == "1"
        document = json.loads(body)
        assert document["status"] == "building"
        record = client.wait_done(document["job"])
        assert record["state"] == "done"
        status, _, body = client.post("/diagnose", dict(DIAGNOSE))
        assert status == 200
        report = json.loads(body)
        assert report["schema"] == "repro-diagnosis/1"
        assert report["candidates"]
        # The raw body is the canonical serializer's output, verbatim.
        assert body.endswith(b"\n")

    def test_bad_queries_get_400(self, serving):
        _, client = serving
        for payload in (
            {"circuit": "s27"},
            dict(DIAGNOSE, failures=[[5]]),
            dict(DIAGNOSE, top=0),
            dict(DIAGNOSE, dictionary="tiny"),
        ):
            status, _, body = client.post("/diagnose", payload)
            assert status == 400
            assert "error" in json.loads(body)

    def test_queue_full_gets_429(self, backlogged):
        _, client = backlogged
        for index in range(2):
            status, _, _ = client.post(
                "/jobs", {"circuit": "s27", "random_patterns": 4, "seed": index}
            )
            assert status == 201
        status, headers, _ = client.post("/diagnose", dict(DIAGNOSE))
        assert status == 429
        assert headers.get("Retry-After") == "1"
