"""Fault model, universe enumeration, and equivalence collapsing."""

import random

import pytest

from repro.baselines.serial import simulate_serial
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.faults.collapse import collapse_stuck_at, equivalence_classes
from repro.faults.model import OUTPUT_PIN, FaultKind, StuckAtFault, fault_name
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.logic.tables import GateType
from repro.patterns.random_gen import random_sequence


class TestModel:
    def test_make_and_value(self):
        fault = StuckAtFault.make(3, 1, 0)
        assert fault.kind is FaultKind.STUCK_AT_0
        assert fault.value == 0
        assert not fault.on_output

    def test_output_fault(self):
        fault = StuckAtFault.make(3, OUTPUT_PIN, 1)
        assert fault.on_output
        assert fault.site == (3, OUTPUT_PIN)

    def test_ordering_deterministic(self):
        faults = [
            StuckAtFault.make(1, 0, 1),
            StuckAtFault.make(0, OUTPUT_PIN, 0),
            StuckAtFault.make(1, 0, 0),
        ]
        ordered = sorted(faults)
        assert ordered[0].gate == 0
        assert ordered[1].kind is FaultKind.STUCK_AT_0

    def test_fault_name(self):
        circuit = load("s27")
        g9 = circuit.index_of("G9")
        assert fault_name(circuit, StuckAtFault.make(g9, 1, 0)) == "G9/IN1:SA0"
        assert fault_name(circuit, StuckAtFault.make(g9, OUTPUT_PIN, 1)) == "G9:SA1"

    def test_hashable_and_frozen(self):
        fault = StuckAtFault.make(1, 2, 0)
        assert fault in {fault}
        with pytest.raises(Exception):
            fault.gate = 5  # type: ignore[misc]


class TestUniverse:
    def test_full_universe_counts(self):
        circuit = load("s27")
        faults = all_stuck_at_faults(circuit)
        pins = sum(
            gate.arity for gate in circuit.gates if gate.gtype is not GateType.INPUT
        )
        assert len(faults) == 2 * (len(circuit.gates) + pins)

    def test_universe_is_deterministic(self):
        circuit = load("s27")
        assert all_stuck_at_faults(circuit) == all_stuck_at_faults(circuit)

    def test_collapsed_is_subset(self):
        circuit = load("s27")
        full = set(all_stuck_at_faults(circuit))
        collapsed = stuck_at_universe(circuit)
        assert set(collapsed) <= full
        assert len(collapsed) < len(full)

    def test_no_collapse_option(self):
        circuit = load("s27")
        assert len(stuck_at_universe(circuit, collapse=False)) == len(
            all_stuck_at_faults(circuit)
        )


class TestCollapse:
    def test_not_gate_rule(self):
        # NOT: input s-a-0 == output s-a-1.
        from repro.circuit.netlist import CircuitBuilder

        builder = CircuitBuilder("inv")
        builder.add_input("a")
        builder.add_gate("g", GateType.NOT, ["a"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        classes = equivalence_classes(circuit, all_stuck_at_faults(circuit))
        grouped = {
            frozenset(members) for members in classes.values() if len(members) > 1
        }
        assert any(
            StuckAtFault.make(g, 0, 0) in group
            and StuckAtFault.make(g, OUTPUT_PIN, 1) in group
            for group in grouped
        )

    def test_and_gate_rule_collapses_all_input_sa0(self):
        from repro.circuit.netlist import CircuitBuilder

        builder = CircuitBuilder("and3")
        for name in "abc":
            builder.add_input(name)
        builder.add_gate("g", GateType.AND, ["a", "b", "c"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        classes = equivalence_classes(circuit, all_stuck_at_faults(circuit))
        for members in classes.values():
            if StuckAtFault.make(g, OUTPUT_PIN, 0) in members:
                for pin in range(3):
                    assert StuckAtFault.make(g, pin, 0) in members

    def test_equivalence_classes_partition(self):
        circuit = load("s27")
        faults = all_stuck_at_faults(circuit)
        classes = equivalence_classes(circuit, faults)
        members = [fault for group in classes.values() for fault in group]
        assert sorted(members) == sorted(faults)
        for representative, group in classes.items():
            assert representative == min(group)

    @pytest.mark.parametrize("seed", range(4))
    def test_collapsed_classes_are_truly_equivalent(self, seed):
        """Faults collapsed together must have identical detection profiles."""
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_inputs=3, num_gates=10, num_dffs=1)
        faults = all_stuck_at_faults(circuit)
        classes = equivalence_classes(circuit, faults)
        tests = random_sequence(circuit, 30, seed=seed + 100)
        result = simulate_serial(circuit, tests.vectors, faults, drop_detected=False)
        for group in classes.values():
            cycles = {result.detected.get(fault) for fault in group}
            assert len(cycles) == 1, f"class {group} split into {cycles}"

    def test_stem_branch_not_collapsed_across_dff(self):
        from repro.circuit.netlist import CircuitBuilder

        builder = CircuitBuilder("ffb")
        builder.add_input("a")
        builder.add_gate("g", GateType.NOT, ["a"])
        builder.add_dff("q", "g")
        builder.set_output("q")
        circuit = builder.build()
        g = circuit.index_of("g")
        q = circuit.index_of("q")
        collapsed = set(collapse_stuck_at(circuit, all_stuck_at_faults(circuit)))
        # g's output faults and q's D-pin faults both survive or map to
        # different representatives (never merged).
        classes = equivalence_classes(circuit, all_stuck_at_faults(circuit))
        rep_of = {}
        for representative, group in classes.items():
            for fault in group:
                rep_of[fault] = representative
        assert rep_of[StuckAtFault.make(g, OUTPUT_PIN, 0)] != rep_of[
            StuckAtFault.make(q, 0, 0)
        ]
        assert collapsed  # sanity
