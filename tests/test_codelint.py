"""The AST determinism lint: rules, suppression, and the clean tree."""

import subprocess
import sys

from repro.analyze.codelint import (
    HOT_PATH_PACKAGES,
    ORDERED_MERGE_PACKAGES,
    SUPPRESS_MARKER,
    lint_paths,
    lint_source,
)

HOT = f"src/repro/{HOT_PATH_PACKAGES[0]}/engine.py"
MERGE = f"src/repro/{ORDERED_MERGE_PACKAGES[0]}/merge.py"
NEUTRAL = "src/repro/harness/runner.py"


def rules(findings):
    return [finding.rule for finding in findings]


class TestUnseededRandom:
    def test_global_random_flagged(self):
        findings = lint_source("import random\nx = random.random()\n", NEUTRAL)
        assert rules(findings) == ["unseeded-random"]
        assert findings[0].line == 2

    def test_seeded_generator_clean(self):
        source = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert lint_source(source, NEUTRAL) == []

    def test_suppression_marker_waives(self):
        source = f"import random\nx = random.uniform(0, 1)  {SUPPRESS_MARKER}\n"
        assert lint_source(source, NEUTRAL) == []


class TestWallClock:
    def test_time_time_flagged_in_hot_path(self):
        source = "import time\nt = time.time()\n"
        assert rules(lint_source(source, HOT)) == ["wall-clock"]

    def test_perf_counter_allowed_in_hot_path(self):
        source = "import time\nt = time.perf_counter()\n"
        assert lint_source(source, HOT) == []

    def test_time_time_allowed_outside_hot_path(self):
        source = "import time\nt = time.time()\n"
        assert lint_source(source, NEUTRAL) == []

    def test_datetime_now_flagged_in_hot_path(self):
        source = "import datetime\nt = datetime.datetime.now()\n"
        assert rules(lint_source(source, HOT)) == ["wall-clock"]


class TestUnorderedMerge:
    def test_set_iteration_flagged_in_merge_layer(self):
        source = "for item in {3, 1, 2}:\n    print(item)\n"
        assert rules(lint_source(source, MERGE)) == ["unordered-merge"]

    def test_set_call_iteration_flagged(self):
        source = "for item in set(items):\n    print(item)\n"
        assert rules(lint_source(source, MERGE)) == ["unordered-merge"]

    def test_set_union_comprehension_flagged(self):
        source = "out = [x for x in set(a) | set(b)]\n"
        assert rules(lint_source(source, MERGE)) == ["unordered-merge"]

    def test_sorted_set_iteration_clean(self):
        source = "for item in sorted(set(items)):\n    print(item)\n"
        assert lint_source(source, MERGE) == []

    def test_set_iteration_allowed_outside_merge_layers(self):
        source = "for item in set(items):\n    print(item)\n"
        assert lint_source(source, NEUTRAL) == []


class TestTree:
    def test_src_tree_is_clean(self):
        assert lint_paths(["src/repro"]) == []

    def test_module_entry_point_exit_status(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.choice([1, 2])\n")
        process = subprocess.run(
            [sys.executable, "-m", "repro.analyze.codelint", str(bad)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert process.returncode == 1
        assert "unseeded-random" in process.stdout

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n", NEUTRAL)
        assert rules(findings) == ["syntax-error"]
