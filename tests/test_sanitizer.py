"""Fault-list sanitizer: silent on honest engines, loud on every corruption."""

import pytest

from repro.analyze import FaultListSanitizer, SanitizerError
from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.harness.runner import run_stuck_at, run_transition
from repro.patterns.random_gen import random_sequence
from repro.robust.chaos import FaultListChaos

VARIANTS = (
    SimOptions(),
    SimOptions(split_lists=True),
    SimOptions(use_macros=True),
    SimOptions(split_lists=True, use_macros=True),
    SimOptions(drop_detected=False),
)


class TestCleanRuns:
    @pytest.mark.parametrize("options", VARIANTS, ids=lambda o: o.variant_name)
    def test_sanitized_run_matches_plain_run(self, options):
        circuit = load("s27")
        tests = random_sequence(circuit, 40, seed=3)
        plain = ConcurrentFaultSimulator(circuit, options=options).run(tests)
        sanitized_sim = ConcurrentFaultSimulator(
            circuit, options=options.with_(sanitize=True)
        )
        sanitized = sanitized_sim.run(tests)
        assert sanitized.detected == plain.detected
        assert sanitized.potentially_detected == plain.potentially_detected
        assert sanitized_sim._sanitizer.checks > 0

    def test_transition_engine_clean(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 40, seed=5)
        plain = run_transition(circuit, tests)
        sanitized = run_transition(circuit, tests, sanitize=True)
        assert sanitized.detected == plain.detected

    def test_transition_boundaries_checked_per_cycle(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=5)
        sim = TransitionFaultSimulator(
            circuit, options=SimOptions(split_lists=True, sanitize=True)
        )
        sim.run(tests)
        # pre-cycle + sample + detect + commit at every one of 10 cycles.
        assert sim._sanitizer.checks == 4 * len(tests)

    def test_option_is_off_by_default_and_name_neutral(self):
        options = SimOptions(split_lists=True)
        assert not options.sanitize
        assert options.with_(sanitize=True).variant_name == options.variant_name
        circuit = load("s27")
        sim = ConcurrentFaultSimulator(circuit, options=options)
        assert sim._sanitizer is None

    def test_serial_transition_rejects_sanitize(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 5, seed=1)
        with pytest.raises(ValueError, match="serial"):
            run_transition(circuit, tests, serial=True, sanitize=True)

    def test_harness_run_stuck_at_with_sanitizing_options(self):
        from repro.harness.runner import engine_options

        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=9)
        options = engine_options("csim-MV").with_(sanitize=True)
        plain = run_stuck_at(circuit, tests, "csim-MV")
        sanitized = run_stuck_at(circuit, tests, "csim-MV", options=options)
        assert sanitized.detected == plain.detected


class TestCorruptionDetection:
    """Every chaos corruption class must be flagged at the next boundary."""

    @pytest.mark.parametrize("corruption", FaultListChaos.CORRUPTIONS)
    @pytest.mark.parametrize("split", (False, True), ids=("flat", "split"))
    def test_corruption_raises_sanitizer_error(self, corruption, split):
        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=7)
        sim = FaultListChaos(
            circuit,
            options=SimOptions(split_lists=split, sanitize=True),
            corruption=corruption,
            corrupt_at_cycle=2,
        )
        with pytest.raises(SanitizerError) as excinfo:
            sim.run(tests)
        assert sim.applied
        assert "fault-list sanitizer" in str(excinfo.value)
        assert "boundary" in str(excinfo.value)

    def test_corruption_is_silent_without_the_sanitizer(self):
        # The point of the checker: an unsanitized engine swallows the
        # same corruption without raising.
        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=7)
        sim = FaultListChaos(
            circuit,
            options=SimOptions(),
            corruption="counter-drift",
            corrupt_at_cycle=2,
        )
        sim.run(tests)  # must not raise
        assert sim.applied

    def test_unknown_corruption_rejected(self):
        circuit = load("s27")
        with pytest.raises(ValueError, match="unknown corruption"):
            FaultListChaos(circuit, corruption="frobnicate")

    def test_error_names_cycle_and_phase(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 30, seed=7)
        sim = FaultListChaos(
            circuit,
            options=SimOptions(sanitize=True),
            corruption="illegal-value",
            corrupt_at_cycle=3,
        )
        with pytest.raises(SanitizerError, match=r"cycle 3, pre-cycle boundary"):
            sim.run(tests)


class TestStandaloneChecker:
    def test_manual_check_on_healthy_simulator(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=2)
        sim = ConcurrentFaultSimulator(circuit)
        sim.run(tests)
        sanitizer = FaultListSanitizer(sim)
        sanitizer.check("post-run")  # must not raise
        assert sanitizer.checks == 1

    def test_manual_check_flags_poisoned_state(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=2)
        sim = ConcurrentFaultSimulator(circuit)
        sim.run(tests)
        sim._live_elements += 5
        with pytest.raises(SanitizerError, match="live-element counter"):
            FaultListSanitizer(sim).check("post-run")
