"""The transition-fault model: Table 1 semantics and universe shape."""

import itertools

import pytest

from repro.circuit.library import load
from repro.faults.model import OUTPUT_PIN, FaultKind
from repro.faults.transition import (
    TransitionFault,
    all_transition_faults,
    delayed_value,
)
from repro.logic.tables import GateType
from repro.logic.values import ONE, VALUES, X, ZERO

STR = FaultKind.SLOW_TO_RISE
STF = FaultKind.SLOW_TO_FALL


class TestDelayedValue:
    @pytest.mark.parametrize(
        "previous,current,expected",
        [
            (ZERO, ONE, ZERO),   # the faulty rise: held at previous value
            (ZERO, ZERO, ZERO),  # no transition
            (ZERO, X, ZERO),     # from 0, nothing can have risen yet
            (ONE, ZERO, ZERO),   # falls are unaffected
            (ONE, ONE, ONE),
            (ONE, X, X),
            (X, ZERO, ZERO),     # settles low either way
            (X, ONE, X),         # may have been a delayed rise
            (X, X, X),
        ],
    )
    def test_slow_to_rise(self, previous, current, expected):
        assert delayed_value(previous, current, STR) == expected

    @pytest.mark.parametrize(
        "previous,current,expected",
        [
            (ONE, ZERO, ONE),    # the faulty fall: held at previous value
            (ONE, ONE, ONE),
            (ONE, X, ONE),
            (ZERO, ONE, ONE),    # rises are unaffected
            (ZERO, ZERO, ZERO),
            (ZERO, X, X),
            (X, ONE, ONE),
            (X, ZERO, X),
            (X, X, X),
        ],
    )
    def test_slow_to_fall(self, previous, current, expected):
        assert delayed_value(previous, current, STF) == expected

    def test_mirror_symmetry(self):
        flip = {ZERO: ONE, ONE: ZERO, X: X}
        for previous, current in itertools.product(VALUES, repeat=2):
            assert delayed_value(previous, current, STR) == flip[
                delayed_value(flip[previous], flip[current], STF)
            ]

    def test_no_transition_is_transparent(self):
        for value in VALUES:
            for kind in (STR, STF):
                assert delayed_value(value, value, kind) == value

    def test_rejects_stuck_at_kind(self):
        with pytest.raises(ValueError):
            delayed_value(ZERO, ONE, FaultKind.STUCK_AT_0)


class TestTransitionUniverse:
    def test_two_faults_per_input_pin(self):
        circuit = load("s27")
        faults = all_transition_faults(circuit)
        pins = sum(
            gate.arity for gate in circuit.gates if gate.gtype is not GateType.INPUT
        )
        assert len(faults) == 2 * pins

    def test_include_outputs_excludes_dffs(self):
        circuit = load("s27")
        faults = all_transition_faults(circuit, include_outputs=True)
        dff_output_faults = [
            fault
            for fault in faults
            if fault.pin == OUTPUT_PIN
            and circuit.gates[fault.gate].gtype is GateType.DFF
        ]
        assert not dff_output_faults
        pi_output_faults = [
            fault
            for fault in faults
            if fault.pin == OUTPUT_PIN
            and circuit.gates[fault.gate].gtype is GateType.INPUT
        ]
        assert len(pi_output_faults) == 2 * len(circuit.inputs)

    def test_make_helper(self):
        fault = TransitionFault.make(3, 1, rise=True)
        assert fault.slow_to_rise
        assert not TransitionFault.make(3, 1, rise=False).slow_to_rise
