"""The reference cycle simulator: known behaviours and fault injection."""

import pytest

from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.sim.logicsim import LogicSimulator


def shift_register():
    """a -> q1 -> q2, observed at q2."""
    builder = CircuitBuilder("shift")
    builder.add_input("a")
    builder.add_gate("buf", GateType.BUF, ["a"])
    builder.add_dff("q1", "buf")
    builder.add_gate("mid", GateType.BUF, ["q1"])
    builder.add_dff("q2", "mid")
    builder.set_output("q2")
    return builder.build()


class TestGoodMachine:
    def test_power_up_is_all_x(self):
        circuit = load("s27")
        sim = LogicSimulator(circuit)
        assert all(value == X for value in sim.values)

    def test_shift_register_latency(self):
        circuit = shift_register()
        sim = LogicSimulator(circuit)
        outputs = [sim.step((v,))[0] for v in (ONE, ZERO, ZERO, ONE)]
        # q2 shows the input delayed by two cycles; first two cycles X.
        assert outputs == [X, X, ONE, ZERO]

    def test_reset(self):
        circuit = shift_register()
        sim = LogicSimulator(circuit)
        sim.run([(ONE,), (ONE,)])
        sim.reset()
        assert all(value == X for value in sim.values)
        assert sim.cycle == 0

    def test_vector_width_checked(self):
        sim = LogicSimulator(load("s27"))
        with pytest.raises(ValueError):
            sim.step((ONE,))

    def test_settle_is_idempotent(self):
        circuit = load("s27")
        sim = LogicSimulator(circuit)
        sim.settle((ONE, ZERO, ONE, ZERO))
        first = list(sim.values)
        sim.settle((ONE, ZERO, ONE, ZERO))
        assert sim.values == first

    def test_s27_initializes_under_random_stimulus(self):
        # s27's PO is G17 = NOT(G11); varied stimulus must pull the state
        # out of X and produce binary outputs.
        from repro.patterns.random_gen import random_sequence

        circuit = load("s27")
        sim = LogicSimulator(circuit)
        outputs = [sim.step(vector)[0] for vector in random_sequence(circuit, 20, seed=3)]
        assert any(value in (ZERO, ONE) for value in outputs)


class TestFaultInjection:
    def test_pi_output_stuck(self):
        circuit = shift_register()
        pi = circuit.index_of("a")
        sim = LogicSimulator(circuit, StuckAtFault.make(pi, OUTPUT_PIN, 0))
        outputs = [sim.step((ONE,))[0] for _ in range(3)]
        assert outputs[2] == ZERO  # the stuck 0 reaches q2 two cycles later

    def test_gate_input_stuck(self):
        builder = CircuitBuilder("and2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.AND, ["a", "b"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        sim = LogicSimulator(circuit, StuckAtFault.make(g, 1, 0))
        assert sim.step((ONE, ONE))[0] == ZERO

    def test_gate_output_stuck(self):
        circuit = shift_register()
        buf = circuit.index_of("buf")
        sim = LogicSimulator(circuit, StuckAtFault.make(buf, OUTPUT_PIN, 1))
        outputs = [sim.step((ZERO,))[0] for _ in range(3)]
        assert outputs[2] == ONE

    def test_dff_output_stuck_forces_from_power_up(self):
        circuit = shift_register()
        q1 = circuit.index_of("q1")
        sim = LogicSimulator(circuit, StuckAtFault.make(q1, OUTPUT_PIN, 1))
        # q2 latches the forced 1 at the end of cycle 1 already.
        outputs = [sim.step((ZERO,))[0] for _ in range(2)]
        assert outputs[1] == ONE

    def test_dff_input_stuck_latches_forced_value(self):
        circuit = shift_register()
        q1 = circuit.index_of("q1")
        sim = LogicSimulator(circuit, StuckAtFault.make(q1, 0, 1))
        outputs = [sim.step((ZERO,))[0] for _ in range(3)]
        assert outputs[2] == ONE
