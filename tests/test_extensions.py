"""Dominance collapsing, test compaction post-processing, VCD export."""

import io
import random

import pytest

from repro.baselines.deductive import deductive_detects
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM_V
from repro.faults.collapse import collapse_stuck_at
from repro.faults.dominance import dominance_collapse
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, ZERO
from repro.patterns.postprocess import (
    compact_tests,
    remove_redundant_blocks,
    trim_to_coverage_prefix,
)
from repro.patterns.random_gen import random_sequence
from repro.sim.delays import DelayModel
from repro.sim.eventsim import EventSimulator
from repro.sim.vcd import write_vcd


class TestDominance:
    def test_and_gate_output_sa1_dropped(self):
        builder = CircuitBuilder("and2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.AND, ["a", "b"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        faults = all_stuck_at_faults(circuit)
        reduced = dominance_collapse(circuit, faults)
        from repro.faults.model import OUTPUT_PIN, StuckAtFault

        assert StuckAtFault.make(g, OUTPUT_PIN, 1) not in reduced
        assert StuckAtFault.make(g, 0, 1) in reduced

    def test_reduces_after_equivalence(self):
        circuit = load("s27")
        equivalent = collapse_stuck_at(circuit, all_stuck_at_faults(circuit))
        dominated = dominance_collapse(circuit, equivalent)
        assert len(dominated) < len(equivalent)

    @pytest.mark.parametrize("seed", range(5))
    def test_dominance_implication_combinational(self, seed):
        """Combinational contract: any vector detecting a kept fault of a
        dominance pair also detects the dropped dominator."""
        rng = random.Random(seed + 60)
        circuit = random_circuit(rng, num_gates=12, num_dffs=0, name=f"dom{seed}")
        full = all_stuck_at_faults(circuit)
        reduced = set(dominance_collapse(circuit, full))
        dropped = [fault for fault in full if fault not in reduced]
        from repro.faults.dominance import _DOMINANCE_RULES
        from repro.faults.model import OUTPUT_PIN, StuckAtFault

        for vector_seed in range(6):
            vector = tuple(
                rng.choice((ZERO, ONE)) for _ in circuit.inputs
            )
            detected = deductive_detects(circuit, vector, full)
            for dominator in dropped:
                gate = circuit.gates[dominator.gate]
                input_value, _ = _DOMINANCE_RULES[gate.gtype]
                dominated_detected = any(
                    StuckAtFault.make(gate.index, pin, input_value) in detected
                    for pin in range(gate.arity)
                )
                if dominated_detected:
                    assert dominator in detected


class TestPostprocess:
    @pytest.fixture(scope="class")
    def setup(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 120, seed=3)
        faults = stuck_at_universe(circuit)
        return circuit, tests, faults

    def _coverage(self, circuit, tests, faults):
        return ConcurrentFaultSimulator(circuit, faults, CSIM_V).run(tests).coverage

    def test_prefix_trim_preserves_coverage(self, setup):
        circuit, tests, faults = setup
        trimmed = trim_to_coverage_prefix(circuit, tests, faults)
        assert len(trimmed) <= len(tests)
        assert self._coverage(circuit, trimmed, faults) == self._coverage(
            circuit, tests, faults
        )

    def test_prefix_trim_is_tight(self, setup):
        circuit, tests, faults = setup
        trimmed = trim_to_coverage_prefix(circuit, tests, faults)
        if len(trimmed) > 1:
            shorter = trimmed.prefix(len(trimmed) - 1)
            assert self._coverage(circuit, shorter, faults) < self._coverage(
                circuit, trimmed, faults
            )

    def test_block_removal_preserves_coverage(self, setup):
        circuit, tests, faults = setup
        compacted, simulations = remove_redundant_blocks(
            circuit, tests, faults, block_length=16
        )
        assert simulations >= 1
        assert self._coverage(circuit, compacted, faults) >= self._coverage(
            circuit, tests, faults
        )

    def test_compact_pipeline(self, setup):
        circuit, tests, faults = setup
        compacted = compact_tests(circuit, tests, faults, block_length=16)
        assert len(compacted) <= len(tests)
        assert self._coverage(circuit, compacted, faults) == self._coverage(
            circuit, tests, faults
        )

    def test_undetecting_sequence_trims_to_nothing(self):
        circuit = load("s27")
        # One all-X vector detects nothing.
        from repro.logic.values import X
        from repro.patterns.vectors import TestSequence

        tests = TestSequence(4, [(X, X, X, X)])
        trimmed = trim_to_coverage_prefix(circuit, tests)
        assert len(trimmed) == 0


class TestVcd:
    def _hazard_sim(self):
        builder = CircuitBuilder("hazard")
        builder.add_input("a")
        builder.add_gate("n", GateType.NOT, ["a"])
        builder.add_gate("g", GateType.AND, ["a", "n"])
        builder.set_output("g")
        circuit = builder.build()
        delays = DelayModel(circuit, {circuit.index_of("n"): 5, circuit.index_of("g"): 1})
        sim = EventSimulator(circuit, delays, record=True)
        sim.set_input(0, ZERO, at_time=0)
        sim.run()
        sim.set_input(0, ONE, at_time=sim.time + 1)
        sim.run()
        return circuit, sim

    def test_requires_recording(self):
        circuit = load("s27")
        sim = EventSimulator(circuit)
        with pytest.raises(ValueError, match="record=True"):
            write_vcd(sim, io.StringIO())

    def test_header_and_changes(self):
        circuit, sim = self._hazard_sim()
        out = io.StringIO()
        changes = write_vcd(sim, out)
        text = out.getvalue()
        assert "$enddefinitions" in text
        assert "$var wire 1" in text
        assert changes == len(sim.trace)
        # The hazard pulse on g must appear: a 1 then a 0 on g's id.
        g_id = None
        for line in text.splitlines():
            if line.endswith(" g $end"):
                g_id = line.split()[3]
        assert g_id is not None
        assert f"1{g_id}" in text and f"0{g_id}" in text

    def test_signal_filter(self):
        circuit, sim = self._hazard_sim()
        out = io.StringIO()
        write_vcd(sim, out, signals=["g"])
        text = out.getvalue()
        assert " g $end" in text
        assert " n $end" not in text

    def test_time_markers_monotone(self):
        circuit, sim = self._hazard_sim()
        out = io.StringIO()
        write_vcd(sim, out)
        times = [
            int(line[1:])
            for line in out.getvalue().splitlines()
            if line.startswith("#")
        ]
        assert times == sorted(times)
