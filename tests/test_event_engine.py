"""Arbitrary-delay concurrent fault simulation vs the serial event oracle.

The generality claim of the paper's Section 2 under test: one concurrent
engine with a timing queue must reproduce, fault for fault and cycle for
cycle, what simulating each faulty machine alone on the event-driven
simulator produces — for random delay assignments, for clock periods both
ample and too short, and for X-bearing stimulus.
"""

import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.event_engine import ConcurrentEventFaultSimulator
from repro.concurrent.options import CSIM_MV, CSIM_V
from repro.faults.universe import stuck_at_universe
from repro.logic.values import X, is_binary
from repro.patterns.random_gen import random_sequence
from repro.sim.delays import random_delays, typed_delays, unit_delays
from repro.sim.eventsim import EventSimulator


def serial_event_reference(circuit, faults, vectors, period, delays):
    """One EventSimulator run per fault: the oracle."""
    good = EventSimulator(circuit, delays)
    good_outputs = good.run_sequence(vectors, period)
    detected, potential = {}, {}
    for fault in faults:
        machine = EventSimulator(circuit, delays, fault=fault)
        for cycle, vector in enumerate(vectors, start=1):
            outputs = machine.run_cycle(vector, period)
            good_now = good_outputs[cycle - 1]
            if (
                fault not in potential
                and fault not in detected
                and any(
                    is_binary(g) and f == X for g, f in zip(good_now, outputs)
                )
            ):
                potential[fault] = cycle
            if any(
                is_binary(g) and is_binary(f) and g != f
                for g, f in zip(good_now, outputs)
            ):
                detected[fault] = cycle
                break
    return detected, potential


def _instance(seed):
    rng = random.Random(seed + 7000)
    circuit = random_circuit(
        rng,
        num_inputs=rng.randint(2, 4),
        num_gates=rng.randint(5, 16),
        num_dffs=rng.randint(0, 3),
        num_outputs=rng.randint(1, 2),
        name=f"evx{seed}",
    )
    delays = (
        random_delays(circuit, seed=seed, lo=1, hi=5)
        if seed % 2
        else unit_delays(circuit)
    )
    ample = delays.max_delay * max(1, circuit.num_levels) + 3
    period = ample if seed % 3 else max(2, ample // 2)
    tests = random_sequence(
        circuit,
        rng.randint(3, 10),
        seed=seed * 11 + 5,
        x_probability=0.15 if seed % 4 == 0 else 0.0,
    )
    return circuit, delays, period, tests


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_serial_event_oracle(self, seed):
        circuit, delays, period, tests = _instance(seed)
        faults = stuck_at_universe(circuit)
        expected_detected, expected_potential = serial_event_reference(
            circuit, faults, tests.vectors, period, delays
        )
        result = ConcurrentEventFaultSimulator(circuit, faults, delays).run(
            tests.vectors, period
        )
        assert result.detected == expected_detected
        assert result.potentially_detected == expected_potential

    def test_ample_period_matches_zero_delay_engine(self):
        """With the clock slower than the critical path, delay simulation
        is functionally synchronous: detections must equal the zero-delay
        concurrent engine's."""
        circuit = load("s27")
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 40, seed=3)
        delays = typed_delays(circuit)
        period = delays.max_delay * circuit.num_levels + 5
        timed = ConcurrentEventFaultSimulator(circuit, faults, delays).run(
            tests.vectors, period
        )
        zero = ConcurrentFaultSimulator(circuit, faults, CSIM_V).run(tests)
        assert timed.detected == zero.detected

    def test_short_period_changes_detections_honestly(self):
        """An aggressive clock is simulated, not idealized: the oracle and
        the concurrent engine agree even when the period undercuts paths."""
        circuit, delays, _, tests = _instance(4)
        faults = stuck_at_universe(circuit)
        period = 2  # far below any realistic settle time
        expected, _ = serial_event_reference(
            circuit, faults, tests.vectors, period, delays
        )
        result = ConcurrentEventFaultSimulator(circuit, faults, delays).run(
            tests.vectors, period
        )
        assert result.detected == expected


class TestApi:
    def test_macros_rejected(self):
        circuit = load("s27")
        with pytest.raises(ValueError, match="zero-delay optimization"):
            ConcurrentEventFaultSimulator(circuit, options=CSIM_MV)

    def test_vector_width_checked(self):
        circuit = load("s27")
        simulator = ConcurrentEventFaultSimulator(circuit)
        with pytest.raises(ValueError):
            simulator.run_cycle((0,), period=10)

    def test_result_record(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=1)
        result = ConcurrentEventFaultSimulator(circuit).run(tests.vectors, period=40)
        assert result.engine == "csim-AD"
        assert result.num_vectors == 10
        assert result.memory.peak_elements > 0
        assert result.counters.events > 0

    def test_reset(self):
        circuit = load("s27")
        tests = random_sequence(circuit, 10, seed=1)
        simulator = ConcurrentEventFaultSimulator(circuit)
        first = simulator.run(tests.vectors, period=40)
        simulator.reset()
        second = simulator.run(tests.vectors, period=40)
        assert first.detected == second.detected


class TestEfficiency:
    def test_concurrent_evaluates_less_than_serial(self):
        """The point of the paradigm: one concurrent pass does far less
        gate evaluation than #faults separate event simulations."""
        circuit = load("s27")
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 25, seed=9)
        delays = typed_delays(circuit)
        period = delays.max_delay * circuit.num_levels + 5
        concurrent = ConcurrentEventFaultSimulator(circuit, faults, delays)
        concurrent.run(tests.vectors, period)
        serial_evaluations = 0
        for fault in faults:
            machine = EventSimulator(circuit, delays, fault=fault)
            machine.run_sequence(tests.vectors, period)
            serial_evaluations += machine.evaluations
        concurrent_work = (
            concurrent.counters.good_evaluations
            + concurrent.counters.fault_evaluations
        )
        assert concurrent_work < serial_evaluations
