"""Prometheus exposition: rendering, parsing, and HTTP content negotiation.

The contract: ``GET /metrics`` keeps returning the JSON snapshot by
default (byte-compatible with what pre-exposition clients parse), while
``Accept: text/plain`` returns the standard text exposition rendered
*from that same snapshot* — the two representations cannot drift because
one is derived from the other.
"""

import json
import threading
import urllib.request

import pytest

from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.serve import FaultSimService, ServeConfig, make_server
from repro.serve.metrics import service_version

SNAPSHOT = {
    "version": "1.2.3",
    "started_at": 1000.0,
    "uptime_seconds": 12.5,
    "jobs": {"submitted": 4, "completed": 3, "failed": 1},
    "queue": {"depth": 2, "capacity": 256},
    "cache": {"hits": 3, "misses": 1, "hit_rate": 0.75},
    "batch": {"size_counts": {"1": 2, "4": 1}},
    "latency": {
        "simulate": {
            "count": 3,
            "sum_seconds": 0.6,
            "buckets": {"0.1": 1, "1.0": 2, "+Inf": 0},
        }
    },
    "counters": {
        "cycles": 10,
        "good_evaluations": 100,
        "fault_evaluations": 500,
        "element_visits": 700,
        "events": 50,
        "gates_scheduled": 60,
    },
}


class TestRender:
    def test_round_trips_through_parser(self):
        metrics = parse_prometheus_text(render_prometheus(SNAPSHOT))
        assert metrics["repro_build_info"] == [({"version": "1.2.3"}, 1.0)]
        assert metrics["repro_uptime_seconds"] == [({}, 12.5)]
        assert ({"state": "completed"}, 3.0) in metrics["repro_jobs_total"]
        assert metrics["repro_queue_depth"] == [({}, 2.0)]
        assert ({"outcome": "hit"}, 3.0) in metrics["repro_cache_lookups_total"]
        assert metrics["repro_cache_hit_rate"] == [({}, 0.75)]
        kinds = {labels["kind"]: value for labels, value in
                 metrics["repro_engine_work_total"]}
        assert kinds["fault_evaluations"] == 500.0
        assert kinds["cycles"] == 10.0

    def test_histograms_are_cumulative_with_inf(self):
        metrics = parse_prometheus_text(render_prometheus(SNAPSHOT))
        batch = {labels["le"]: value for labels, value in
                 metrics["repro_batch_size_bucket"]}
        assert batch["1.0"] == 2.0
        assert batch["4.0"] == 3.0  # cumulative, not per-bucket
        assert batch["+Inf"] == 3.0
        assert metrics["repro_batch_size_count"] == [({}, 3.0)]
        assert metrics["repro_batch_size_sum"] == [({}, 6.0)]
        phase = {labels["le"]: value for labels, value in
                 metrics["repro_phase_seconds_bucket"]
                 if labels["phase"] == "simulate"}
        assert phase["0.1"] == 1.0
        assert phase["1.0"] == 3.0
        assert phase["+Inf"] == 3.0

    def test_empty_snapshot_still_valid(self):
        text = render_prometheus({})
        metrics = parse_prometheus_text(text)
        assert metrics["repro_build_info"] == [({}, 1.0)]

    def test_label_escaping(self):
        text = render_prometheus({"version": 'v"1\\x'})
        metrics = parse_prometheus_text(text)
        assert metrics["repro_build_info"] == [({"version": 'v"1\\x'}, 1.0)]


class TestParser:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus_text("this is not a metric line\n")

    def test_rejects_malformed_type(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus_text("# TYPE repro_x bogus\n")

    def test_inf_value(self):
        metrics = parse_prometheus_text('m_bucket{le="+Inf"} 3\n')
        assert metrics["m_bucket"] == [({"le": "+Inf"}, 3.0)]


@pytest.fixture
def serving(tmp_path):
    service = FaultSimService(
        ServeConfig(state_dir=str(tmp_path / "state"), workers=1)
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    yield service, server.server_address[1]
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def _get(port, path, accept=None):
    headers = {"Accept": accept} if accept else {}
    request = urllib.request.Request(f"http://127.0.0.1:{port}{path}",
                                     headers=headers)
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), response.read()


class TestHttpNegotiation:
    def test_default_is_json_snapshot(self, serving):
        service, port = serving
        status, headers, body = _get(port, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snapshot = json.loads(body)
        for section in ("jobs", "queue", "cache", "batch", "latency", "counters"):
            assert section in snapshot
        assert snapshot["version"] == service_version()
        assert snapshot["uptime_seconds"] >= 0.0
        assert snapshot["started_at"] == pytest.approx(
            service.metrics.started_at
        )

    def test_accept_text_plain_returns_exposition(self, serving):
        _, port = serving
        status, headers, body = _get(port, "/metrics", accept="text/plain")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        metrics = parse_prometheus_text(body.decode())  # valid exposition
        assert "repro_queue_depth" in metrics
        assert "repro_jobs_total" in metrics

    def test_text_form_tracks_executed_work(self, serving):
        _, port = serving
        payload = json.dumps(
            {"circuit": "s27", "random_patterns": 16, "seed": 3}
        ).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/jobs",
            data=payload,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            job_id = json.loads(response.read())["job_id"]
        import time

        deadline = time.time() + 30
        while time.time() < deadline:
            _, _, body = _get(port, f"/jobs/{job_id}")
            if json.loads(body)["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        _, _, text_body = _get(port, "/metrics", accept="text/plain")
        _, _, json_body = _get(port, "/metrics")
        metrics = parse_prometheus_text(text_body.decode())
        snapshot = json.loads(json_body)
        kinds = {labels["kind"]: value for labels, value in
                 metrics["repro_engine_work_total"]}
        assert kinds["cycles"] > 0
        # The text form is a rendering of the same snapshot.
        assert kinds["cycles"] == float(snapshot["counters"]["cycles"])
        states = {labels["state"]: value for labels, value in
                  metrics["repro_jobs_total"]}
        assert states.get("completed", 0) >= 1
