"""PROOFS-specific behaviour: bit-parallel algebra, activity filter, groups."""


import pytest

from repro.baselines.proofs import ProofsSimulator
from repro.circuit.library import load
from repro.circuit.macro import extract_macros
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.universe import stuck_at_universe
from repro.logic.values import ONE, ZERO
from repro.patterns.random_gen import random_sequence


class TestConstruction:
    def test_macro_circuits_rejected(self):
        macro = extract_macros(load("s27")).circuit
        with pytest.raises(ValueError, match="flat circuits"):
            ProofsSimulator(macro)

    def test_default_universe_collapsed(self, s27):
        sim = ProofsSimulator(s27)
        assert sim.faults == stuck_at_universe(s27)


class TestActivityFilter:
    def test_inactive_fault_skipped(self, s27):
        """A stuck value matching the good line value with no state diff
        means the machines coincide; PROOFS must not simulate it."""
        sim = ProofsSimulator(s27)
        vector = (ZERO, ZERO, ZERO, ZERO)
        sim.good.settle(vector)
        good_values = sim.good.values
        pi = s27.inputs[0]
        matching = StuckAtFault.make(pi, OUTPUT_PIN, 0)  # PI is 0, stuck 0
        opposing = StuckAtFault.make(pi, OUTPUT_PIN, 1)
        assert not sim._is_active(matching, good_values)
        assert sim._is_active(opposing, good_values)

    def test_state_diff_makes_fault_active(self, s27):
        sim = ProofsSimulator(s27)
        fault = sim.faults[0]
        sim.ff_diffs[fault][s27.dffs[0]] = ONE
        sim.good.settle((ZERO, ZERO, ZERO, ZERO))
        assert sim._is_active(fault, sim.good.values)


class TestGrouping:
    def test_many_groups_small_words(self, s27, s27_tests):
        small = ProofsSimulator(s27, word_size=2).run(s27_tests)
        large = ProofsSimulator(s27, word_size=128).run(s27_tests)
        assert small.detected == large.detected

    def test_memory_counts_state_diffs(self, s27, s27_tests):
        result = ProofsSimulator(s27).run(s27_tests)
        assert result.memory.peak_elements >= 0
        assert result.counters.cycles == len(s27_tests)

    def test_detected_faults_not_regrouped(self, s27):
        sim = ProofsSimulator(s27)
        tests = random_sequence(s27, 30, seed=3)
        for vector in tests:
            sim.step(vector)
        # Once detected, a fault's diffs are cleared and stay cleared.
        for fault, cycle in sim.detected.items():
            assert not sim.ff_diffs[fault]


class TestStep:
    def test_step_returns_new_detections_once(self, s27):
        sim = ProofsSimulator(s27)
        seen = set()
        for vector in random_sequence(s27, 40, seed=3):
            newly = sim.step(vector)
            assert not (set(newly) & seen)
            seen.update(newly)
        assert seen == set(sim.detected)

    def test_reset(self, s27, s27_tests):
        sim = ProofsSimulator(s27)
        first = sim.run(s27_tests)
        sim.reset()
        second = sim.run(s27_tests)
        assert first.detected == second.detected
