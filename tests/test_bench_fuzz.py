"""Property/fuzz tests for the ``.bench`` parser's error handling.

A corrupted netlist file must never surface a raw ``KeyError`` or
``IndexError`` from parser internals: every failure is a
:class:`NetlistError`, and failures attributable to a single line carry
``name:line:`` context.  The corruption operators below model realistic
damage — character-level noise, deleted/duplicated/spliced lines,
truncation — applied to the real s27 netlist under a seeded RNG, so the
suite is deterministic while covering a broad input space.
"""

import random

import pytest

from repro.circuit.bench import parse_bench
from repro.circuit.library import S27_BENCH
from repro.circuit.netlist import NetlistError


def _corrupt_chars(rng, lines):
    """Flip random characters on one random line."""
    index = rng.randrange(len(lines))
    line = list(lines[index])
    if not line:
        return lines
    for _ in range(rng.randint(1, 3)):
        position = rng.randrange(len(line))
        line[position] = rng.choice("()=,#GXZ@%$ 01")
    lines[index] = "".join(line)
    return lines


def _delete_line(rng, lines):
    del lines[rng.randrange(len(lines))]
    return lines


def _duplicate_line(rng, lines):
    index = rng.randrange(len(lines))
    lines.insert(index, lines[index])
    return lines


def _splice_lines(rng, lines):
    """Join two adjacent lines into one (a lost newline)."""
    if len(lines) < 2:
        return lines
    index = rng.randrange(len(lines) - 1)
    lines[index] = lines[index] + lines.pop(index + 1)
    return lines


def _truncate(rng, lines):
    if len(lines) < 2:
        return lines
    return lines[: rng.randrange(1, len(lines))]


def _rename_signal(rng, lines):
    """Dangling reference: rename one definition but not its uses."""
    index = rng.randrange(len(lines))
    lines[index] = lines[index].replace("G", "H", 1)
    return lines


_OPERATORS = (
    _corrupt_chars,
    _delete_line,
    _duplicate_line,
    _splice_lines,
    _truncate,
    _rename_signal,
)


def _corrupted_text(seed: int) -> str:
    rng = random.Random(seed)
    lines = [line for line in S27_BENCH.strip().splitlines()]
    for _ in range(rng.randint(1, 3)):
        if not lines:
            break
        lines = rng.choice(_OPERATORS)(rng, lines)
    return "\n".join(lines)


class TestBenchFuzz:
    @pytest.mark.parametrize("seed", range(200))
    def test_corruption_never_escapes_as_raw_exception(self, seed):
        text = _corrupted_text(seed)
        try:
            circuit = parse_bench(text, name="fuzzed")
        except NetlistError as exc:
            # Every NetlistError carries the file context; line-level
            # errors carry "fuzzed:<line>:".
            assert str(exc).startswith("fuzzed:")
        except (KeyError, IndexError) as exc:  # pragma: no cover
            pytest.fail(f"raw {type(exc).__name__} escaped the parser: {exc!r}")
        else:
            # Some corruptions still parse (comment damage, benign
            # renames); the result must at least be a sane circuit.
            assert len(circuit.gates) > 0
            assert circuit.outputs

    def test_unknown_keyword_has_line_context(self):
        with pytest.raises(NetlistError, match=r"bad:3: unknown gate keyword"):
            parse_bench("INPUT(a)\nOUTPUT(g)\ng = FROB(a)\n", name="bad")

    def test_unparsable_line_has_line_context(self):
        with pytest.raises(NetlistError, match=r"bad:2: cannot parse line"):
            parse_bench("INPUT(a)\n@@@garbage@@@\n", name="bad")

    def test_duplicate_definition_has_line_context(self):
        text = "INPUT(a)\nOUTPUT(g)\ng = NOT(a)\ng = BUF(a)\n"
        with pytest.raises(NetlistError, match=r"bad:4: .*defined twice"):
            parse_bench(text, name="bad")

    def test_dff_arity_has_line_context(self):
        with pytest.raises(NetlistError, match=r"bad:3: DFF must have exactly one"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n", name="bad")

    def test_undefined_signal_has_file_context(self):
        with pytest.raises(NetlistError, match=r"bad: .*undefined signal"):
            parse_bench("INPUT(a)\nOUTPUT(g)\ng = NOT(zz)\n", name="bad")

    def test_no_outputs_has_file_context(self):
        with pytest.raises(NetlistError, match=r"bad: .*no primary outputs"):
            parse_bench("INPUT(a)\ng = NOT(a)\n", name="bad")

    def test_combinational_cycle_is_a_netlist_error(self):
        text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = BUF(x)\n"
        with pytest.raises(NetlistError, match=r"bad: combinational cycle"):
            parse_bench(text, name="bad")

    def test_clean_s27_still_parses(self):
        circuit = parse_bench(S27_BENCH, name="s27")
        assert circuit.name == "s27"
        assert len(circuit.dffs) == 3
