"""Fault dictionaries and dictionary-based diagnosis."""

import random

import pytest

from repro.baselines.serial import simulate_serial
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.diagnosis import build_dictionary, diagnose
from repro.diagnosis.dictionary import FullResponseDictionary, PassFailDictionary
from repro.faults.universe import stuck_at_universe
from repro.logic.values import is_binary
from repro.patterns.random_gen import random_sequence
from repro.sim.logicsim import LogicSimulator


@pytest.fixture(scope="module")
def s27_setup():
    circuit = load("s27")
    tests = random_sequence(circuit, 40, seed=3)
    faults = stuck_at_universe(circuit)
    dictionary = build_dictionary(circuit, tests, faults)
    return circuit, tests, faults, dictionary


class TestBuild:
    def test_kind_validation(self, s27_setup):
        circuit, tests, faults, _ = s27_setup
        with pytest.raises(ValueError, match="unknown dictionary kind"):
            build_dictionary(circuit, tests, faults, kind="tiny")

    def test_full_dictionary_type(self, s27_setup):
        _, _, _, dictionary = s27_setup
        assert isinstance(dictionary, FullResponseDictionary)
        assert len(dictionary) > 0

    def test_signature_domain(self, s27_setup):
        circuit, tests, _, dictionary = s27_setup
        for fault, signature in dictionary.signatures.items():
            for cycle, po_position in signature:
                assert 1 <= cycle <= len(tests)
                assert 0 <= po_position < len(circuit.outputs)

    def test_detected_matches_first_detection_engine(self, s27_setup):
        """A fault has a non-empty signature iff the (dropping) simulator
        detects it, and its earliest failing cycle is the detection cycle."""
        circuit, tests, faults, dictionary = s27_setup
        oracle = simulate_serial(circuit, tests.vectors, faults)
        assert set(dictionary.detected_faults()) == set(oracle.detected)
        for fault, cycle in oracle.detected.items():
            earliest = min(c for c, _ in dictionary.signature(fault))
            assert earliest == cycle

    def test_signatures_match_serial_machine(self, s27_setup):
        """Spot-check full signatures against explicit serial simulation."""
        circuit, tests, faults, dictionary = s27_setup
        good = LogicSimulator(circuit)
        good_outputs = [good.step(v) for v in tests]
        rng = random.Random(1)
        for fault in rng.sample(list(faults), 8):
            machine = LogicSimulator(circuit, fault)
            expected = set()
            for cycle, vector in enumerate(tests, start=1):
                outputs = machine.step(vector)
                for position, (g, f) in enumerate(zip(good_outputs[cycle - 1], outputs)):
                    if is_binary(g) and is_binary(f) and g != f:
                        expected.add((cycle, position))
            assert dictionary.signature(fault) == frozenset(expected)

    def test_passfail_is_projection(self, s27_setup):
        circuit, tests, faults, full = s27_setup
        passfail = build_dictionary(circuit, tests, faults, kind="passfail")
        assert isinstance(passfail, PassFailDictionary)
        for fault in faults:
            assert passfail.signature(fault) == frozenset(
                cycle for cycle, _ in full.signature(fault)
            )

    def test_indistinguishable_groups_share_signatures(self, s27_setup):
        _, _, _, dictionary = s27_setup
        for group in dictionary.indistinguishable_groups():
            signatures = {dictionary.signature(fault) for fault in group}
            assert len(signatures) == 1
            assert len(group) > 1


class TestDiagnose:
    def test_injected_fault_is_found_exactly(self, s27_setup):
        """Simulate a defective device with a known fault; diagnosis must
        rank that fault (or its indistinguishable twins) first, exactly."""
        circuit, tests, faults, dictionary = s27_setup
        rng = random.Random(7)
        detected = dictionary.detected_faults()
        for fault in rng.sample(detected, 6):
            observation = dictionary.signature(fault)
            result = diagnose(dictionary, observation)
            assert result.best.exact
            assert fault in result.exact_candidates

    def test_noisy_observation_still_ranks_culprit_high(self, s27_setup):
        """Drop one failure from the observation (intermittent defect):
        the culprit should remain among the top candidates."""
        circuit, tests, faults, dictionary = s27_setup
        rng = random.Random(11)
        candidates_with_rich_signatures = [
            fault
            for fault in dictionary.detected_faults()
            if len(dictionary.signature(fault)) >= 3
        ]
        fault = rng.choice(candidates_with_rich_signatures)
        observation = set(dictionary.signature(fault))
        observation.discard(sorted(observation)[0])
        result = diagnose(dictionary, observation, top=10)
        assert fault in [candidate.fault for candidate in result.candidates]

    def test_empty_observation(self, s27_setup):
        _, _, _, dictionary = s27_setup
        result = diagnose(dictionary, [])
        assert not result.candidates
        assert result.summary() == "no candidates"

    def test_summary_mentions_exactness(self, s27_setup):
        _, _, _, dictionary = s27_setup
        fault = dictionary.detected_faults()[0]
        result = diagnose(dictionary, dictionary.signature(fault))
        assert "exact" in result.summary()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_circuits_roundtrip(self, seed):
        rng = random.Random(seed + 300)
        circuit = random_circuit(rng, num_gates=15, num_dffs=2, name=f"diag{seed}")
        tests = random_sequence(circuit, 25, seed=seed)
        dictionary = build_dictionary(circuit, tests)
        for fault in dictionary.detected_faults()[:5]:
            result = diagnose(dictionary, dictionary.signature(fault))
            assert fault in result.exact_candidates
