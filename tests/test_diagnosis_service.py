"""Diagnosis subsystem tests: sharded builds, artifacts, ``/diagnose``.

Covers the production promises of :mod:`repro.diagnosis`:

* ranking semantics of :func:`repro.diagnosis.locate.diagnose`;
* dictionary invariance — same signatures whatever the engine, the
  ``--jobs`` shard count, or collapsed-vs-full construction (seeded and
  hypothesis-driven);
* ``repro-dict/1`` artifact round-trips and content addressing;
* mid-build interruption: a budget-truncated build raises instead of
  returning a partial dictionary, and the resumed build is bit-identical
  to an uninterrupted one;
* the serve layer: lazy dictionary builds through the job queue,
  ``/diagnose`` over HTTP, and CLI/service byte-identity;
* causal explanations' divergence chains.
"""

import json
import os
import random
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.diagnosis import (
    DictionaryBuildTruncated,
    build_dictionary,
    build_responses,
    diagnose,
    explain_fault,
)
from repro.diagnosis.dictionary import FullResponseDictionary, PassFailDictionary
from repro.diagnosis.locate import Candidate
from repro.diagnosis.store import (
    DictionaryDecodeError,
    decode_dictionary,
    decode_responses,
    diagnosis_report,
    dictionary_fingerprint,
    encode_dictionary,
    parse_observed,
    read_dictionary,
    read_manifest,
    write_dictionary,
)
from repro.faults.model import StuckAtFault
from repro.faults.universe import all_stuck_at_faults
from repro.patterns.random_gen import random_sequence
from repro.robust.budget import Budget
from repro.serve import FaultSimService, ServeConfig, SpecError


@pytest.fixture(scope="module")
def s27():
    circuit = load("s27")
    tests = random_sequence(circuit, 40, seed=3)
    return circuit, tests


@pytest.fixture(scope="module")
def s27_dictionary(s27):
    circuit, tests = s27
    return build_dictionary(circuit, tests)


def make_service(tmp_path, **overrides):
    overrides.setdefault("workers", 0)
    config = ServeConfig(state_dir=str(tmp_path / "state"), **overrides)
    return FaultSimService(config)


DIAGNOSE_QUERY = {
    "circuit": "s27",
    "random_patterns": 40,
    "seed": 3,
    "failures": [[5, 0]],
}


class TestLocate:
    """Unit tests of the ranking math, on a hand-built dictionary."""

    def dictionary(self):
        f1 = StuckAtFault.make(1, -1, 0)
        f2 = StuckAtFault.make(2, -1, 1)
        f3 = StuckAtFault.make(3, 0, 0)
        undetected = StuckAtFault.make(4, -1, 1)
        return FullResponseDictionary(
            circuit_name="toy",
            num_vectors=8,
            signatures={
                f1: frozenset({(1, 0), (2, 0)}),
                f2: frozenset({(1, 0), (2, 0), (3, 1)}),
                f3: frozenset({(7, 1)}),
                undetected: frozenset(),
            },
        )

    def test_exact_match_ranks_first(self):
        result = diagnose(self.dictionary(), [(1, 0), (2, 0)])
        assert result.best.exact
        assert result.best.score == 1.0
        assert result.best.fault == StuckAtFault.make(1, -1, 0)
        assert result.exact_candidates == [StuckAtFault.make(1, -1, 0)]

    def test_partial_observation_tolerated(self):
        # One observed failure out of f2's three: still a candidate, with
        # the unobserved predictions counted as 'extra', not 'missed'.
        result = diagnose(self.dictionary(), [(3, 1)])
        assert result.best.fault == StuckAtFault.make(2, -1, 1)
        assert result.best.matched == 1
        assert result.best.missed == 0
        assert result.best.extra == 2
        assert result.best.score == pytest.approx(1 / 3)

    def test_missed_failures_penalized(self):
        # (9, 9) is observed but predicted by nobody: it lands in 'missed'
        # and drags every score below exact.
        result = diagnose(self.dictionary(), [(1, 0), (2, 0), (9, 9)])
        assert not result.best.exact
        assert result.best.fault == StuckAtFault.make(1, -1, 0)
        assert result.best.missed == 1
        assert result.best.score == pytest.approx(2 / 3)

    def test_disjoint_and_undetected_faults_excluded(self):
        result = diagnose(self.dictionary(), [(7, 1)])
        faults = [c.fault for c in result.candidates]
        assert faults == [StuckAtFault.make(3, 0, 0)]

    def test_top_limits_candidates(self):
        result = diagnose(self.dictionary(), [(1, 0)], top=1)
        assert len(result.candidates) == 1

    def test_ordering_is_score_then_fault(self):
        result = diagnose(self.dictionary(), [(1, 0), (2, 0), (3, 1)])
        scores = [c.score for c in result.candidates]
        assert scores == sorted(scores, reverse=True)
        assert result.best.fault == StuckAtFault.make(2, -1, 1)

    def test_no_candidates_summary(self):
        result = diagnose(self.dictionary(), [(42, 0)])
        assert result.candidates == ()
        assert result.summary() == "no candidates"
        with pytest.raises(ValueError):
            result.best

    def test_candidate_fields_frozen(self):
        candidate = Candidate(
            fault=StuckAtFault.make(1, -1, 0),
            score=1.0,
            exact=True,
            matched=1,
            missed=0,
            extra=0,
        )
        with pytest.raises(Exception):
            candidate.score = 0.5


class TestDictionaryInvariance:
    """Same dictionary bytes whatever built it (the acceptance criterion)."""

    @pytest.mark.parametrize("engine", ["csim", "PROOFS", "vsim", "serial"])
    def test_engine_invariant(self, s27, s27_dictionary, engine):
        circuit, tests = s27
        other = build_dictionary(circuit, tests, engine=engine)
        assert other.signatures == s27_dictionary.signatures

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_sharded_collapsed_equals_serial_full(self, s27, jobs, tmp_path):
        circuit, tests = s27
        universe = all_stuck_at_faults(circuit)
        serial_full = build_dictionary(
            circuit, tests, universe, engine="serial", collapse=None
        )
        sharded = build_dictionary(
            circuit,
            tests,
            universe,
            jobs=jobs,
            checkpoint_path=str(tmp_path / "build.ckpt"),
        )
        assert sharded.signatures == serial_full.signatures
        blob_a = encode_dictionary(
            circuit.name,
            len(tests),
            build_responses(circuit, tests, universe, collapse=None),
            collapse=None,
        )
        blob_b = encode_dictionary(
            circuit.name,
            len(tests),
            build_responses(circuit, tests, universe, jobs=jobs),
            collapse=None,
        )
        assert blob_a == blob_b

    def test_collapsed_default_covers_full_universe(self, s27, s27_dictionary):
        circuit, _tests = s27
        assert set(s27_dictionary.signatures) == set(all_stuck_at_faults(circuit))

    def test_passfail_folds_full(self, s27, s27_dictionary):
        circuit, tests = s27
        passfail = build_dictionary(circuit, tests, kind="passfail")
        assert isinstance(passfail, PassFailDictionary)
        for fault, signature in s27_dictionary.signatures.items():
            assert passfail.signature(fault) == frozenset(
                cycle for cycle, _ in signature
            )


SMALL = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestHypothesisInvariance:
    @SMALL
    @given(
        seed=st.integers(0, 2**16),
        engine=st.sampled_from(["csim", "csim-MV", "PROOFS", "vsim"]),
        kind=st.sampled_from(["full", "passfail"]),
    )
    def test_engine_and_collapse_invariant(self, seed, engine, kind):
        rng = random.Random(seed)
        circuit = random_circuit(
            rng, num_gates=12, num_dffs=2, name=f"dict{seed}"
        )
        tests = random_sequence(circuit, 12, seed=seed)
        reference = build_dictionary(circuit, tests, kind=kind)
        collapsed = build_dictionary(circuit, tests, kind=kind, engine=engine)
        full = build_dictionary(
            circuit,
            tests,
            all_stuck_at_faults(circuit),
            kind=kind,
            engine=engine,
            collapse=None,
        )
        assert collapsed.signatures == reference.signatures
        assert full.signatures == reference.signatures


class TestArtifacts:
    def test_round_trip(self, s27):
        circuit, tests = s27
        responses = build_responses(circuit, tests)
        blob = encode_dictionary(
            circuit.name, len(tests), responses, collapse="equivalence"
        )
        assert decode_responses(blob) == responses
        manifest = read_manifest(blob)
        assert manifest["circuit"] == "s27"
        assert manifest["kind"] == "full"
        assert manifest["collapse"] == "equivalence"
        assert manifest["num_faults"] == len(responses)
        decoded = decode_dictionary(blob)
        assert decoded.signatures == build_dictionary(circuit, tests).signatures

    def test_encoding_is_canonical(self, s27):
        circuit, tests = s27
        responses = build_responses(circuit, tests)
        shuffled = dict(reversed(list(responses.items())))
        assert encode_dictionary(
            circuit.name, len(tests), responses
        ) == encode_dictionary(circuit.name, len(tests), shuffled)

    def test_kind_override_on_decode(self, s27):
        circuit, tests = s27
        blob = encode_dictionary(
            circuit.name, len(tests), build_responses(circuit, tests)
        )
        passfail = decode_dictionary(blob, kind="passfail")
        assert passfail.kind == "passfail"
        assert passfail.signatures == build_dictionary(
            circuit, tests, kind="passfail"
        ).signatures

    def test_decode_rejects_garbage(self):
        with pytest.raises(DictionaryDecodeError):
            decode_dictionary(b"not json")
        with pytest.raises(DictionaryDecodeError):
            decode_dictionary(b'{"schema": "other/1"}\n')
        torn = json.dumps(
            {"schema": "repro-dict/1", "manifest": {}, "faults": [[1, -1, "SA0"]],
             "responses": []}
        ).encode()
        with pytest.raises(DictionaryDecodeError):
            decode_dictionary(torn)

    def test_write_read_atomic(self, s27, tmp_path):
        circuit, tests = s27
        blob = encode_dictionary(
            circuit.name, len(tests), build_responses(circuit, tests)
        )
        path = str(tmp_path / "artifacts" / "s27.dict")
        write_dictionary(path, blob)
        assert read_dictionary(path) == blob
        assert not [p for p in os.listdir(tmp_path / "artifacts") if ".tmp" in p]

    def test_fingerprint_sensitivity(self, s27):
        circuit, tests = s27
        universe = all_stuck_at_faults(circuit)
        base = dictionary_fingerprint(circuit, tests.vectors, universe)
        assert dictionary_fingerprint(circuit, tests.vectors, universe) == base
        assert (
            dictionary_fingerprint(circuit, tests.vectors, universe, kind="passfail")
            != base
        )
        assert (
            dictionary_fingerprint(circuit, tests.vectors[:-1], universe) != base
        )
        assert (
            dictionary_fingerprint(circuit, tests.vectors, universe[:-1]) != base
        )


class TestInterruptedBuild:
    def test_truncated_build_raises_then_resumes_bit_identical(
        self, s27, tmp_path
    ):
        circuit, tests = s27
        checkpoint = str(tmp_path / "dict.ckpt")
        with pytest.raises(DictionaryBuildTruncated):
            build_dictionary(
                circuit,
                tests,
                checkpoint_path=checkpoint,
                checkpoint_every=8,
                budget=Budget(max_cycles=20),
            )
        # The budget struck mid-build: durable shard progress must exist.
        assert [p for p in os.listdir(tmp_path) if p.startswith("dict.ckpt")]
        resumed = build_dictionary(
            circuit,
            tests,
            checkpoint_path=checkpoint,
            checkpoint_every=8,
            resume=True,
        )
        uninterrupted = build_dictionary(circuit, tests)
        assert resumed.signatures == uninterrupted.signatures

    def test_truncated_serial_build_raises(self, s27):
        circuit, tests = s27
        with pytest.raises(DictionaryBuildTruncated):
            build_dictionary(circuit, tests, budget=Budget(max_cycles=10))

    def test_rejects_dominance_collapse(self, s27):
        circuit, tests = s27
        with pytest.raises(ValueError, match="equivalence"):
            build_dictionary(circuit, tests, collapse="dominance")


class TestServeDiagnose:
    def test_miss_builds_then_hit_serves(self, tmp_path):
        service = make_service(tmp_path)
        status, document, raw = service.diagnose(dict(DIAGNOSE_QUERY))
        assert status == 202
        assert document["status"] == "building"
        assert raw is None
        assert service.drain() == 1
        record = service.status(document["job"])
        assert record.state == "done"
        assert record.summary.startswith("dictionary[full]")
        status, document, raw = service.diagnose(dict(DIAGNOSE_QUERY))
        assert status == 200
        report = json.loads(raw)
        assert report["schema"] == "repro-diagnosis/1"
        assert report["candidates"]
        snapshot = service.metrics_snapshot()["diagnosis"]
        assert snapshot == {
            "requests": 2,
            "dictionary_hits": 1,
            "dictionary_misses": 1,
            "dictionaries_built": 1,
        }

    def test_concurrent_misses_share_one_build(self, tmp_path):
        service = make_service(tmp_path)
        _, first, _ = service.diagnose(dict(DIAGNOSE_QUERY))
        _, second, _ = service.diagnose(dict(DIAGNOSE_QUERY, failures=[[9, 0]]))
        assert first["job"] == second["job"]
        assert second["created"] is False

    def test_rankings_match_direct_library_call(self, tmp_path, s27):
        circuit, tests = s27
        service = make_service(tmp_path)
        service.diagnose(dict(DIAGNOSE_QUERY))
        service.drain()
        _, _, raw = service.diagnose(dict(DIAGNOSE_QUERY))
        direct = diagnosis_report(
            circuit,
            tests,
            build_dictionary(circuit, tests),
            parse_observed("full", DIAGNOSE_QUERY["failures"]),
        )
        assert raw == direct

    def test_bad_queries_rejected(self, tmp_path):
        service = make_service(tmp_path)
        for payload in (
            {"circuit": "s27"},  # no failures
            dict(DIAGNOSE_QUERY, failures="5:0"),  # not a list
            dict(DIAGNOSE_QUERY, failures=[[5]]),  # not a pair
            dict(DIAGNOSE_QUERY, failures=[5]),  # full kind needs pairs
            dict(DIAGNOSE_QUERY, top=0),
            dict(DIAGNOSE_QUERY, explain="yes"),
            dict(DIAGNOSE_QUERY, dictionary="tiny"),
            dict(DIAGNOSE_QUERY, collapse="dominance"),
            dict(DIAGNOSE_QUERY, transition=True),
        ):
            with pytest.raises(SpecError):
                service.diagnose(payload)

    def test_dictionary_key_in_cache_key(self, tmp_path):
        # A dictionary build must never collide with a plain detection job
        # over the same inputs — they serialize different documents.
        service = make_service(tmp_path)
        spec = {"circuit": "s27", "random_patterns": 40, "seed": 3}
        record_plain, _ = service.submit(dict(spec))
        record_dict, _ = service.submit(dict(spec, dictionary="full"))
        assert record_plain.cache_key != record_dict.cache_key
        assert service.drain() == 2
        plain = json.loads(service.result_bytes(record_plain.job_id))
        built = json.loads(service.result_bytes(record_dict.job_id))
        assert "engine" in plain
        assert built["schema"] == "repro-dict/1"

    def test_truncated_dictionary_job_retries_then_dead_letters(self, tmp_path):
        service = make_service(
            tmp_path,
            max_attempts=2,
            retry_backoff_base=0.0,
            retry_jitter=0.0,
        )
        record, _ = service.submit(
            {
                "circuit": "s27",
                "random_patterns": 40,
                "seed": 3,
                "dictionary": "full",
                "max_cycles": 15,
            }
        )
        service.drain()
        first = service.status(record.job_id)
        assert first.state == "queued"  # transient: re-queued with backoff
        assert first.error_history
        service.reap()  # pushes the backoff retry
        service.drain()
        final = service.status(record.job_id)
        assert final.state == "dead"
        # The second attempt resumed from the first attempt's checkpoint.
        assert final.resumed_from_cycle is not None

    def test_passfail_dictionary_query(self, tmp_path):
        service = make_service(tmp_path)
        query = dict(DIAGNOSE_QUERY, dictionary="passfail", failures=[5, 11])
        status, document, _ = service.diagnose(dict(query))
        assert status == 202
        service.drain()
        status, _, raw = service.diagnose(dict(query))
        assert status == 200
        assert json.loads(raw)["kind"] == "passfail"


class TestEndToEndRoundTrip:
    def test_every_fault_diagnoses_to_itself(self, s27, s27_dictionary):
        """The acceptance round-trip: each fault's own simulated responses
        rank it at the top (exactly, up to equivalence resolution)."""
        for fault in s27_dictionary.detected_faults():
            result = diagnose(
                s27_dictionary,
                s27_dictionary.signature(fault),
                top=len(s27_dictionary),
            )
            assert result.best.exact
            assert result.best.score == 1.0
            assert fault in result.exact_candidates

    def test_cli_and_service_rankings_byte_identical(self, tmp_path):
        service = make_service(tmp_path)
        service.diagnose(dict(DIAGNOSE_QUERY))
        service.drain()
        status, _, service_bytes = service.diagnose(dict(DIAGNOSE_QUERY))
        assert status == 200
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "diagnose",
                "s27",
                "--random-patterns",
                "40",
                "--seed",
                "3",
                "--failures",
                "5:0",
            ],
            capture_output=True,
            env=env,
            check=True,
        )
        assert completed.stdout == service_bytes

    def test_cli_artifact_cache_round_trip(self, tmp_path):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        artifact = str(tmp_path / "s27.dict")
        build = subprocess.run(
            [
                sys.executable, "-m", "repro", "build-dictionary", "s27",
                "--random-patterns", "40", "--seed", "3", "-o", artifact,
            ],
            capture_output=True, env=env, check=True,
        )
        assert b"dictionary[full]" in build.stdout
        args = [
            sys.executable, "-m", "repro", "diagnose", "s27",
            "--random-patterns", "40", "--seed", "3", "--failures", "5:0",
        ]
        fresh = subprocess.run(args, capture_output=True, env=env, check=True)
        cached = subprocess.run(
            args + ["--dictionary", artifact],
            capture_output=True, env=env, check=True,
        )
        assert cached.stdout == fresh.stdout
        assert b"loaded from" in cached.stderr


class TestExplain:
    def test_chain_reaches_observed_outputs(self, s27, s27_dictionary):
        circuit, tests = s27
        fault = s27_dictionary.detected_faults()[0]
        explanation = explain_fault(circuit, tests, fault)
        assert explanation.fault == fault
        assert explanation.detected_cycle is not None
        assert explanation.steps
        # The chain's failing outputs are exactly the dictionary signature.
        assert frozenset(explanation.responses) == s27_dictionary.signature(
            fault
        )
        failing_cycles = {
            step.cycle for step in explanation.steps if step.failing_outputs
        }
        assert failing_cycles == {c for c, _ in explanation.responses}
        # Divergence precedes (or coincides with) first detection.
        first_active = explanation.steps[0].cycle
        assert first_active <= explanation.detected_cycle

    def test_payload_and_render(self, s27, s27_dictionary):
        circuit, tests = s27
        fault = s27_dictionary.detected_faults()[0]
        explanation = explain_fault(circuit, tests, fault)
        payload = explanation.to_payload()
        assert payload["fault"] == explanation.fault_label
        assert payload["text"] == explanation.render()
        assert "diverges at" in payload["text"]
        assert json.dumps(payload)  # JSON-ready

    def test_rejects_non_concurrent_engines(self, s27):
        circuit, tests = s27
        fault = StuckAtFault.make(5, -1, 1)
        for engine in ("serial", "PROOFS", "vsim"):
            with pytest.raises(ValueError, match="concurrent"):
                explain_fault(circuit, tests, fault, engine=engine)

    def test_explained_report_stays_canonical(self, s27, s27_dictionary):
        circuit, tests = s27
        fault = s27_dictionary.detected_faults()[0]
        observed = sorted(s27_dictionary.signature(fault))
        plain = diagnosis_report(circuit, tests, s27_dictionary, observed)
        explained = diagnosis_report(
            circuit, tests, s27_dictionary, observed, explain=True
        )
        plain_doc = json.loads(plain)
        explained_doc = json.loads(explained)
        assert "explain" not in plain_doc
        explained_doc.pop("explain")
        assert explained_doc == plain_doc
