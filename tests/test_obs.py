"""Observability layer: tracer parity, counter reconciliation, exporters.

Three invariants anchor the telemetry subsystem:

* attaching no tracer — or the no-op :class:`Tracer` — leaves an engine's
  detections and work counters byte-identical to the seed behaviour;
* a :class:`RecordingTracer`'s totals reconcile *exactly* with the
  :class:`repro.result.WorkCounters` the run reports, for every engine,
  because the hook vocabulary mirrors the counters increment for
  increment;
* the exporters (JSONL trace, JSON metrics, profile report) round-trip
  the recorded data without loss.
"""

import json

import pytest

from repro import (
    CSIM,
    CSIM_MV,
    ConcurrentEventFaultSimulator,
    ConcurrentFaultSimulator,
    load_circuit,
)
from repro.baselines.cpt import simulate_cpt
from repro.baselines.deductive import simulate_deductive
from repro.baselines.serial import simulate_serial
from repro.cli import main
from repro.concurrent.options import SimOptions
from repro.harness.runner import compare_engines, run_stuck_at, run_transition
from repro.harness.tables import table6
from repro.obs import (
    NULL_TRACER,
    RecordingTracer,
    Tracer,
    metrics_summary,
    profile_report,
    read_jsonl_trace,
    write_jsonl_trace,
    write_metrics_json,
)
from repro.patterns import random_sequence
from repro.sim.delays import typed_delays

CONCURRENT_VARIANTS = ("csim", "csim-V", "csim-M", "csim-MV")


@pytest.fixture(scope="module")
def s27():
    return load_circuit("s27")


@pytest.fixture(scope="module")
def s298():
    return load_circuit("s298", scale=0.25)


def _tests(circuit, length=60, seed=3):
    return random_sequence(circuit, length, seed=seed)


class TestNoOpParity:
    """No tracer, NULL_TRACER and the Tracer base class are all free."""

    @pytest.mark.parametrize("tracer", [None, NULL_TRACER, Tracer()])
    def test_csim_mv_unchanged(self, s27, tracer):
        tests = _tests(s27)
        baseline = ConcurrentFaultSimulator(s27, options=CSIM_MV).run(tests)
        traced = ConcurrentFaultSimulator(
            s27, options=CSIM_MV, tracer=tracer
        ).run(tests)
        assert traced.detected == baseline.detected
        assert traced.potentially_detected == baseline.potentially_detected
        assert traced.counters == baseline.counters

    def test_noop_run_has_no_telemetry(self, s27):
        result = ConcurrentFaultSimulator(s27, options=CSIM).run(_tests(s27))
        assert result.telemetry is None

    def test_base_tracer_telemetry_is_none(self):
        assert Tracer().telemetry() is None
        assert NULL_TRACER.enabled is False


class TestReconciliation:
    """RecordingTracer totals == the run's WorkCounters, exactly."""

    @pytest.mark.parametrize("engine", CONCURRENT_VARIANTS + ("PROOFS",))
    def test_stuck_at_engines(self, s27, engine):
        tests = _tests(s27)
        baseline = run_stuck_at(s27, tests, engine)
        tracer = RecordingTracer()
        result = run_stuck_at(s27, tests, engine, tracer=tracer)
        assert result.detected == baseline.detected
        assert result.counters == baseline.counters
        assert tracer.totals == result.counters
        assert result.telemetry is not None
        assert result.telemetry.totals == result.counters

    def test_transition_engine(self, s27):
        tests = _tests(s27)
        baseline = run_transition(s27, tests)
        tracer = RecordingTracer()
        result = run_transition(s27, tests, tracer=tracer)
        assert result.detected == baseline.detected
        assert result.counters == baseline.counters
        assert tracer.totals == result.counters
        assert result.telemetry.engine == result.engine

    def test_event_engine(self, s27):
        delays = typed_delays(s27)
        period = delays.max_delay * s27.num_levels + 5
        vectors = _tests(s27, 40).vectors
        baseline = ConcurrentEventFaultSimulator(s27, delays=delays).run(
            vectors, period
        )
        tracer = RecordingTracer()
        result = ConcurrentEventFaultSimulator(
            s27, delays=delays, tracer=tracer
        ).run(vectors, period)
        assert result.detected == baseline.detected
        assert result.counters == baseline.counters
        assert tracer.totals == result.counters

    def test_larger_circuit_with_options(self, s298):
        tests = _tests(s298, 40)
        tracer = RecordingTracer()
        result = run_stuck_at(
            s298, tests, options=SimOptions(split_lists=True), tracer=tracer
        )
        assert tracer.totals == result.counters

    def test_per_gate_churn_sums_to_counters(self, s27):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27), "csim-MV", tracer=tracer)
        # Every concurrent-engine evaluation is attributed to a gate.
        assert sum(tracer.gate_fault_evals.values()) == (
            result.counters.fault_evaluations
        )
        assert sum(tracer.gate_good_evals.values()) == (
            result.counters.good_evaluations
        )

    def test_per_cycle_rows_sum_to_totals(self, s27):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27), "csim-MV", tracer=tracer)
        telemetry = result.telemetry
        assert telemetry.num_cycles == result.counters.cycles
        for key in (
            "good_evaluations",
            "fault_evaluations",
            "element_visits",
            "events",
            "gates_scheduled",
        ):
            assert sum(telemetry.series(key)) == getattr(result.counters, key)

    def test_drop_timeline_matches_detections(self, s27):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27), "csim-MV", tracer=tracer)
        # Default options drop on detection: one drop per detected fault,
        # in exactly the cycle the detection recorded.
        assert sum(tracer.drop_cycles.values()) == len(result.detected)
        expected = {}
        for cycle in result.detected.values():
            expected[cycle] = expected.get(cycle, 0) + 1
        assert tracer.drop_cycles == expected
        assert tracer.detect_cycles == expected

    def test_element_lifecycle_balances(self, s27):
        tracer = RecordingTracer()
        run_stuck_at(s27, _tests(s27), "csim", tracer=tracer)
        assert tracer.diverges >= tracer.converges > 0
        live = [row["live_elements"] for row in tracer.cycles]
        assert max(live) == tracer.telemetry().peak_live_elements()

    def test_phase_times_cover_known_phases(self, s27):
        tracer = RecordingTracer()
        run_stuck_at(s27, _tests(s27), "csim-MV", tracer=tracer)
        assert set(tracer.phase_seconds) == {"apply", "settle", "detect", "clock"}
        assert all(seconds >= 0.0 for seconds in tracer.phase_seconds.values())


class TestExporters:
    def test_jsonl_round_trip(self, s27, tmp_path):
        tracer = RecordingTracer(record_events=True)
        run_stuck_at(s27, _tests(s27, 20), "csim-MV", tracer=tracer)
        path = tmp_path / "trace.jsonl"
        count = write_jsonl_trace(tracer.records, path)
        assert count == len(tracer.records) > 0
        assert read_jsonl_trace(path) == tracer.records

    def test_trace_stream_shape(self, s27):
        tracer = RecordingTracer(record_events=True)
        run_stuck_at(s27, _tests(s27, 10), "csim-MV", tracer=tracer)
        kinds = [record["t"] for record in tracer.records]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "cycle" in kinds and "drop" in kinds and "scheduled" in kinds

    def test_lightweight_stream_omits_hot_records(self, s27):
        tracer = RecordingTracer(record_events=False)
        run_stuck_at(s27, _tests(s27, 10), "csim-MV", tracer=tracer)
        kinds = {record["t"] for record in tracer.records}
        assert "fault_evals" not in kinds and "scheduled" not in kinds
        assert "cycle" in kinds

    def test_metrics_summary_is_json_safe(self, s27, tmp_path):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27, 20), "csim-MV", tracer=tracer)
        summary = metrics_summary(result.telemetry)
        text = json.dumps(summary)
        assert result.engine in text
        path = tmp_path / "metrics.json"
        write_metrics_json(result.telemetry, path)
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(text)
        assert on_disk["counters"]["cycles"] == result.counters.cycles

    def test_profile_report_reflects_counters(self, s27):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27, 30), "csim-MV", tracer=tracer)
        report = profile_report(result.telemetry, circuit=s27)
        assert str(result.counters.fault_evaluations) in report
        assert str(result.counters.total_work()) in report
        # With the circuit supplied, hot gates appear by netlist name.
        top_gate, _ = result.telemetry.top_gates_by_fault_evals(1)[0]
        assert s27.gates[top_gate].name in report

    def test_profile_report_without_circuit(self, s27):
        tracer = RecordingTracer()
        result = run_stuck_at(s27, _tests(s27, 10), "PROOFS", tracer=tracer)
        report = profile_report(result.telemetry)
        assert "PROOFS" in report and "work counters" in report


class TestHarnessIntegration:
    def test_compare_engines_tracer_factory(self, s27):
        tests = _tests(s27, 30)
        tracers = {}

        def factory(engine):
            tracers[engine] = RecordingTracer()
            return tracers[engine]

        results = compare_engines(
            s27, tests, ("csim-MV", "PROOFS"), tracer_factory=factory
        )
        assert set(tracers) == {"csim-MV", "PROOFS"}
        for result in results:
            assert tracers[result.engine].totals == result.counters

    def test_table6_telemetry_rows(self):
        rows, _ = table6(circuits=("s298",), scale=0.1, telemetry=True)
        summary = rows[0]["csim-TV_telemetry"]
        json.dumps(summary)
        assert summary["counters"]["cycles"] == summary["num_cycles"]

    def test_serial_oracle_reconciles(self, s27):
        tests = _tests(s27, 10)
        tracer = RecordingTracer()
        result = run_stuck_at(s27, tests, "serial", tracer=tracer)
        assert result.telemetry is not None
        assert tracer.totals == result.counters
        assert result.wall_seconds > 0.0


class TestCounterConsistency:
    """Satellite: every engine reports wall time and a memory model."""

    def test_serial_reports_memory_and_time(self, s27):
        result = simulate_serial(s27, _tests(s27, 5).vectors)
        assert result.wall_seconds > 0.0
        assert result.memory.num_descriptors == result.num_faults > 0

    def test_deductive_and_cpt_report_memory(self):
        from repro import parse_bench

        circuit = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
            "n = NAND(a, b)\ny = NAND(n, c)\n",
            name="tiny",
        )
        vectors = [[0, 0, 0], [1, 1, 1], [1, 0, 1], [0, 1, 0]]
        for result in (
            simulate_deductive(circuit, vectors),
            simulate_cpt(circuit, vectors),
        ):
            assert result.wall_seconds > 0.0
            assert result.memory.num_descriptors == result.num_faults > 0


class TestCli:
    def test_simulate_profile(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "25",
                     "--seed", "3", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile: csim-MV on s27" in out
        assert "work counters" in out
        assert "phase wall time" in out

    def test_simulate_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["simulate", "s27", "--random-patterns", "25",
                     "--seed", "3", "--trace", str(trace)]) == 0
        records = read_jsonl_trace(trace)
        assert records[0]["t"] == "run_start"
        assert records[-1]["t"] == "run_end"
        assert str(trace) in capsys.readouterr().err

    def test_transition_profile(self, capsys):
        assert main(["transition", "s27", "--random-patterns", "20",
                     "--profile"]) == 0
        assert "profile: csim-TV on s27" in capsys.readouterr().out

    def test_serial_profile_works(self, capsys):
        """The serial oracle records telemetry too — --profile prints it."""
        assert main(["simulate", "s27", "--engine", "serial",
                     "--random-patterns", "5", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "profile: serial" in captured.out

    def test_no_flags_no_tracing(self, capsys):
        assert main(["simulate", "s27", "--random-patterns", "10"]) == 0
        assert "profile" not in capsys.readouterr().out
