"""Result records: coverage arithmetic, memory model, work counters."""

from repro.faults.model import StuckAtFault
from repro.result import FaultSimResult, MemoryStats, WorkCounters


def _fault(index):
    return StuckAtFault.make(index, -1, 0)


class TestCoverage:
    def test_coverage_fraction(self):
        result = FaultSimResult("e", "c", num_faults=10, num_vectors=5)
        result.detected = {_fault(0): 1, _fault(1): 2}
        assert result.coverage == 0.2
        assert result.num_detected == 2

    def test_empty_universe(self):
        result = FaultSimResult("e", "c", num_faults=0, num_vectors=5)
        assert result.coverage == 0.0

    def test_detection_profile(self):
        result = FaultSimResult("e", "c", num_faults=5, num_vectors=5)
        result.detected = {_fault(0): 1, _fault(1): 1, _fault(2): 3}
        assert result.detection_profile() == {1: 2, 3: 1}

    def test_undetected(self):
        universe = [_fault(i) for i in range(4)]
        result = FaultSimResult("e", "c", num_faults=4, num_vectors=1)
        result.detected = {universe[0]: 1}
        assert result.undetected(universe) == universe[1:]

    def test_summary_mentions_engine(self):
        result = FaultSimResult("csim-MV", "s27", num_faults=4, num_vectors=1)
        assert "csim-MV" in result.summary()


class TestMemoryStats:
    def test_peak_tracking(self):
        memory = MemoryStats()
        memory.note_elements(10)
        memory.note_elements(3)
        memory.note_elements(7)
        assert memory.peak_elements == 10
        assert memory.live_elements == 7

    def test_bytes_model(self):
        memory = MemoryStats(num_descriptors=100, element_bytes=12, descriptor_bytes=20)
        memory.note_elements(1000)
        assert memory.peak_bytes == 1000 * 12 + 100 * 20
        assert memory.peak_megabytes == memory.peak_bytes / 1_000_000


class TestWorkCounters:
    def test_total_work(self):
        counters = WorkCounters(
            good_evaluations=5, fault_evaluations=7, element_visits=11, events=2
        )
        assert counters.total_work() == 25
