"""Levelization properties and combinational-cycle detection."""

import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.levelize import LevelizationError, levelize
from repro.circuit.netlist import Circuit, CircuitBuilder, Gate
from repro.logic.tables import GateType


class TestLevels:
    @pytest.mark.parametrize("seed", range(8))
    def test_levels_respect_fanin(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_gates=25, num_dffs=3)
        for gate in circuit.gates:
            if gate.gtype in (GateType.INPUT, GateType.DFF):
                assert gate.level == 0
            else:
                assert gate.level >= 1
                for source in gate.fanin:
                    assert circuit.gates[source].level < gate.level

    def test_order_is_level_sorted_and_complete(self):
        rng = random.Random(11)
        circuit = random_circuit(rng, num_gates=30, num_dffs=2)
        levels = [circuit.gates[index].level for index in circuit.order]
        assert levels == sorted(levels)
        combinational = {
            gate.index
            for gate in circuit.gates
            if gate.gtype not in (GateType.INPUT, GateType.DFF)
        }
        assert set(circuit.order) == combinational

    def test_num_levels(self):
        builder = CircuitBuilder("chain")
        builder.add_input("a")
        previous = "a"
        for index in range(5):
            builder.add_gate(f"n{index}", GateType.NOT, [previous])
            previous = f"n{index}"
        builder.set_output(previous)
        circuit = builder.build()
        assert circuit.num_levels == 5

    def test_dff_breaks_cycle(self):
        # q feeds g, g feeds q's D input: sequential loop, fine.
        builder = CircuitBuilder("loop")
        builder.add_input("a")
        builder.add_dff("q", "g")
        builder.add_gate("g", GateType.NAND, ["a", "q"])
        builder.set_output("g")
        circuit = builder.build()  # must not raise
        assert circuit.gate("g").level == 1

    def test_combinational_cycle_detected(self):
        # Build by hand: g1 -> g2 -> g1 with no flip-flop in between.
        gates = [
            Gate(0, "a", GateType.INPUT, ()),
            Gate(1, "g1", GateType.AND, (0, 2)),
            Gate(2, "g2", GateType.NOT, (1,)),
        ]
        gates[0].fanout = (1,)
        gates[1].fanout = (2,)
        gates[2].fanout = (1,)
        gates[2].is_output = True
        circuit = Circuit("cyclic", gates, [0], [2], [])
        with pytest.raises(LevelizationError, match="combinational cycle"):
            levelize(circuit)
