"""Levelization properties and combinational-cycle detection."""

import random

import pytest

from repro.circuit.generate import random_circuit
from repro.circuit.levelize import LevelizationError, find_cycle, levelize
from repro.circuit.netlist import Circuit, CircuitBuilder, Gate
from repro.logic.tables import GateType


def _two_gate_cycle():
    """``g1 -> g2 -> g1`` with no flip-flop in between."""
    gates = [
        Gate(0, "a", GateType.INPUT, ()),
        Gate(1, "g1", GateType.AND, (0, 2)),
        Gate(2, "g2", GateType.NOT, (1,)),
    ]
    gates[0].fanout = (1,)
    gates[1].fanout = (2,)
    gates[2].fanout = (1,)
    gates[2].is_output = True
    return Circuit("cyclic", gates, [0], [2], [])


def _self_loop():
    """``g`` feeding its own input directly."""
    gates = [
        Gate(0, "a", GateType.INPUT, ()),
        Gate(1, "g", GateType.AND, (0, 1)),
    ]
    gates[0].fanout = (1,)
    gates[1].fanout = (1,)
    gates[1].is_output = True
    return Circuit("selfloop", gates, [0], [1], [])


class TestLevels:
    @pytest.mark.parametrize("seed", range(8))
    def test_levels_respect_fanin(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_gates=25, num_dffs=3)
        for gate in circuit.gates:
            if gate.gtype in (GateType.INPUT, GateType.DFF):
                assert gate.level == 0
            else:
                assert gate.level >= 1
                for source in gate.fanin:
                    assert circuit.gates[source].level < gate.level

    def test_order_is_level_sorted_and_complete(self):
        rng = random.Random(11)
        circuit = random_circuit(rng, num_gates=30, num_dffs=2)
        levels = [circuit.gates[index].level for index in circuit.order]
        assert levels == sorted(levels)
        combinational = {
            gate.index
            for gate in circuit.gates
            if gate.gtype not in (GateType.INPUT, GateType.DFF)
        }
        assert set(circuit.order) == combinational

    def test_num_levels(self):
        builder = CircuitBuilder("chain")
        builder.add_input("a")
        previous = "a"
        for index in range(5):
            builder.add_gate(f"n{index}", GateType.NOT, [previous])
            previous = f"n{index}"
        builder.set_output(previous)
        circuit = builder.build()
        assert circuit.num_levels == 5

    def test_dff_breaks_cycle(self):
        # q feeds g, g feeds q's D input: sequential loop, fine.
        builder = CircuitBuilder("loop")
        builder.add_input("a")
        builder.add_dff("q", "g")
        builder.add_gate("g", GateType.NAND, ["a", "q"])
        builder.set_output("g")
        circuit = builder.build()  # must not raise
        assert circuit.gate("g").level == 1

    def test_combinational_cycle_detected(self):
        with pytest.raises(LevelizationError, match="combinational cycle"):
            levelize(_two_gate_cycle())


class TestCyclePaths:
    """The error must print one concrete offending path, not just names."""

    def test_two_gate_cycle_path_in_message(self):
        with pytest.raises(LevelizationError) as excinfo:
            levelize(_two_gate_cycle())
        message = str(excinfo.value)
        assert "cycle:" in message
        # One rotation of the closed walk g1 -> g2 -> g1.
        assert "g1 -> g2 -> g1" in message or "g2 -> g1 -> g2" in message

    def test_self_loop_path_in_message(self):
        with pytest.raises(LevelizationError) as excinfo:
            levelize(_self_loop())
        assert "g -> g" in str(excinfo.value)

    def test_find_cycle_returns_closed_real_path(self):
        circuit = _two_gate_cycle()
        path = find_cycle(circuit, [1, 2])
        assert len(path) >= 2
        assert path[0] == path[-1]
        for src, dst in zip(path, path[1:]):
            assert src in circuit.gates[dst].fanin

    def test_find_cycle_empty_on_acyclic_subgraph(self):
        builder = CircuitBuilder("acyclic")
        builder.add_input("a")
        builder.add_gate("m", GateType.NOT, ["a"])
        builder.add_gate("z", GateType.NOT, ["m"])
        builder.set_output("z")
        circuit = builder.build()
        combinational = [g.index for g in circuit.gates if g.gtype is GateType.NOT]
        assert find_cycle(circuit, combinational) == []

    def test_dff_broken_long_loop_levelizes(self):
        # a three-gate feedback path broken by a flip-flop is legal.
        builder = CircuitBuilder("seqloop")
        builder.add_input("a")
        builder.add_dff("q", "g3")
        builder.add_gate("g1", GateType.NAND, ["a", "q"])
        builder.add_gate("g2", GateType.NOT, ["g1"])
        builder.add_gate("g3", GateType.OR, ["g2", "a"])
        builder.set_output("g3")
        circuit = builder.build()  # levelizes inside build; must not raise
        assert circuit.gate("g3").level == 3
