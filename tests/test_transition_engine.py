"""Transition-fault simulation: paper example and serial cross-validation."""

import random

import pytest

from repro.baselines.serial import simulate_serial_transition
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.concurrent.options import CSIM_MV, SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.faults.transition import TransitionFault, all_transition_faults
from repro.logic.tables import GateType
from repro.logic.values import ONE, ZERO
from repro.patterns.random_gen import random_sequence


def figure4_circuit():
    """The paper's Figure 4 example, reconstructed from the text: G1's
    second input is a fault-free combinational copy of input 1, so a rise
    on input 1 sensitizes input 1 through G1 to the output ('the good
    machine will output 0 at the sampling time, but the faulty machine
    value remains at logic value 1')."""
    builder = CircuitBuilder("fig4")
    builder.add_input("i1")
    builder.add_gate("copy", GateType.BUF, ["i1"])
    builder.add_gate("g1", GateType.NAND, ["i1", "copy"])
    builder.set_output("g1")
    return builder.build()


class TestPaperExample:
    def test_slow_to_rise_detected_by_01(self):
        """Section 3: 'To detect this fault the 01 input sequence is
        enough' — a 0 then a 1 on input 1 of G1 exposes the slow rise."""
        circuit = figure4_circuit()
        g1 = circuit.index_of("g1")
        fault = TransitionFault.make(g1, 0, rise=True)
        sim = TransitionFaultSimulator(circuit, [fault])
        assert sim.step((ZERO,)) == []  # output 1, both machines agree
        assert sim.step((ONE,)) == [fault]  # good 0, faulty still 1
        serial = simulate_serial_transition(circuit, [(ZERO,), (ONE,)], [fault])
        assert serial.detected == {fault: 2}

    def test_stuck_at_tests_are_poor_transition_tests(self):
        """Table 6's observation: stuck-at test sets reach far lower
        transition coverage than stuck-at coverage."""
        from repro.concurrent.engine import ConcurrentFaultSimulator

        circuit = load("s27")
        tests = random_sequence(circuit, 60, seed=3)
        stuck = ConcurrentFaultSimulator(circuit).run(tests)
        transition = TransitionFaultSimulator(circuit).run(tests)
        assert transition.coverage < stuck.coverage


class TestEngineBehaviour:
    def test_macros_rejected(self):
        with pytest.raises(ValueError, match="macro"):
            TransitionFaultSimulator(load("s27"), options=CSIM_MV)

    def test_default_universe(self):
        circuit = load("s27")
        sim = TransitionFaultSimulator(circuit)
        assert sim.faults == sorted(all_transition_faults(circuit))

    def test_engine_name(self):
        circuit = load("s27")
        result = TransitionFaultSimulator(circuit).run(random_sequence(circuit, 5, seed=1))
        assert result.engine.startswith("csim-T")

    def test_two_passes_leave_combinational_converged(self):
        """After the firing pass, a fault with no latched errors must have
        no elements anywhere: its machine has settled to the good values
        (the paper: 'the combinational part of the circuit is assumed to
        settle down correctly')."""
        circuit = figure4_circuit()  # no flip-flops: nothing can latch
        g1 = circuit.index_of("g1")
        fault = TransitionFault.make(g1, 0, rise=True)
        sim = TransitionFaultSimulator(circuit, [fault])
        for vector in [(ZERO,), (ONE,), (ZERO,), (ONE,)]:
            sim.step(vector)
            assert sim._live_elements == 0


class TestCrossValidation:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_serial_reference(self, seed):
        rng = random.Random(seed + 500)
        circuit = random_circuit(
            rng,
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(6, 20),
            num_dffs=rng.randint(0, 4),
            num_outputs=rng.randint(1, 3),
            name=f"txval{seed}",
        )
        faults = all_transition_faults(circuit, include_outputs=(seed % 3 == 0))
        tests = random_sequence(
            circuit,
            rng.randint(4, 25),
            seed=seed * 13 + 2,
            x_probability=0.1 if seed % 4 == 0 else 0.0,
        )
        oracle = simulate_serial_transition(circuit, tests.vectors, faults)
        for split in (False, True):
            result = TransitionFaultSimulator(
                circuit, faults, SimOptions(split_lists=split)
            ).run(tests)
            assert result.detected == oracle.detected, f"split={split}"

    def test_s27_agreement(self, s27, s27_tests):
        faults = all_transition_faults(s27)
        oracle = simulate_serial_transition(s27, s27_tests.vectors, faults)
        result = TransitionFaultSimulator(s27, faults).run(s27_tests)
        assert result.detected == oracle.detected
