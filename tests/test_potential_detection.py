"""Potential detections: known good value vs unknown faulty value.

A fault whose machine carries X at an output whose good value is known may
or may not be detected on silicon; simulators of this era report these
separately.  All engines must agree on the potential set and cycles, with
the convention that potentials are recorded up to (and including) the
cycle of hard detection.
"""

import random

import pytest

from repro.baselines.proofs import ProofsSimulator
from repro.baselines.serial import simulate_serial, simulate_serial_transition
from repro.circuit.generate import random_circuit
from repro.circuit.netlist import CircuitBuilder
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM, CSIM_MV, CSIM_V, SimOptions
from repro.concurrent.transition_engine import TransitionFaultSimulator
from repro.faults.model import OUTPUT_PIN, StuckAtFault
from repro.faults.transition import all_transition_faults
from repro.faults.universe import stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence


def xor_with_ff():
    """g = XOR(a, q); q latches a.  Until q initializes, the faulty (and
    good) machines disagree only through X values."""
    builder = CircuitBuilder("xff")
    builder.add_input("a")
    builder.add_dff("q", "a")
    builder.add_gate("g", GateType.XOR, ["a", "q"])
    builder.set_output("g")
    return builder.build()


class TestUnitBehaviour:
    def test_x_faulty_value_is_potential_not_hard(self):
        """good binary, faulty X at the output -> potential detection.

        In the XOR/FF circuit, a D-pin stuck-at-X cannot be expressed, so
        drive the faulty X from the uninitialized flip-flop: fault forces
        input a to 0, so the faulty machine's q never initializes the way
        the good one does... simplest construction: XOR of PI with a
        flip-flop the fault keeps at X is not constructible from stuck-at
        values, so instead check via the serial oracle on an X-rich run.
        """
        circuit = xor_with_ff()
        faults = stuck_at_universe(circuit)
        tests = TestSequence(1, [(X,), (ONE,), (ZERO,), (ONE,)])
        oracle = simulate_serial(circuit, tests.vectors, faults)
        result = ConcurrentFaultSimulator(circuit, faults).run(tests)
        assert result.potentially_detected == oracle.potentially_detected
        # Every potential was seen at a cycle where it was not yet hard.
        for fault, cycle in result.potentially_detected.items():
            hard = result.detected.get(fault)
            assert hard is None or cycle <= hard

    def test_hard_detection_still_hard(self):
        circuit = xor_with_ff()
        q = circuit.index_of("q")
        sim = ConcurrentFaultSimulator(circuit, [StuckAtFault.make(q, OUTPUT_PIN, 0)])
        sim.step((ONE,))
        newly = sim.step((ONE,))
        # good q latched 1 -> g = XOR(1,1) = 0; faulty q forced 0 -> g = 1.
        assert newly == [StuckAtFault.make(q, OUTPUT_PIN, 0)]

    def test_potential_coverage_superset(self, s27):
        tests = random_sequence(s27, 30, seed=3, x_probability=0.3)
        result = ConcurrentFaultSimulator(s27, options=CSIM_V).run(tests)
        assert result.potential_coverage >= result.coverage


class TestCrossEngineAgreement:
    @pytest.mark.parametrize("seed", range(10))
    def test_stuck_at_potentials_match(self, seed):
        rng = random.Random(seed + 900)
        circuit = random_circuit(
            rng,
            num_inputs=rng.randint(2, 5),
            num_gates=rng.randint(6, 20),
            num_dffs=rng.randint(0, 3),
            num_outputs=rng.randint(1, 3),
            name=f"pot{seed}",
        )
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, rng.randint(5, 18), seed=seed, x_probability=0.3)
        oracle = simulate_serial(circuit, tests.vectors, faults)
        for options in (CSIM, CSIM_V, CSIM_MV):
            result = ConcurrentFaultSimulator(circuit, faults, options).run(tests)
            assert result.potentially_detected == oracle.potentially_detected
        proofs = ProofsSimulator(circuit, faults, word_size=8).run(tests)
        assert proofs.potentially_detected == oracle.potentially_detected

    @pytest.mark.parametrize("seed", range(5))
    def test_transition_potentials_match(self, seed):
        rng = random.Random(seed + 1900)
        circuit = random_circuit(
            rng,
            num_inputs=rng.randint(2, 4),
            num_gates=rng.randint(6, 16),
            num_dffs=rng.randint(0, 3),
            num_outputs=rng.randint(1, 2),
            name=f"tpot{seed}",
        )
        faults = all_transition_faults(circuit)
        tests = random_sequence(circuit, rng.randint(5, 15), seed=seed, x_probability=0.2)
        oracle = simulate_serial_transition(circuit, tests.vectors, faults)
        result = TransitionFaultSimulator(
            circuit, faults, SimOptions(split_lists=True)
        ).run(tests)
        assert result.potentially_detected == oracle.potentially_detected

    def test_dropping_convention(self, s27):
        """No potentials recorded after a fault's hard detection, whether
        or not elements are dropped."""
        tests = random_sequence(s27, 40, seed=3, x_probability=0.25)
        faults = stuck_at_universe(s27)
        dropped = ConcurrentFaultSimulator(s27, faults, CSIM_V).run(tests)
        kept = ConcurrentFaultSimulator(
            s27, faults, CSIM_V.with_(drop_detected=False)
        ).run(tests)
        assert dropped.potentially_detected == kept.potentially_detected
        for fault, cycle in dropped.potentially_detected.items():
            if fault in dropped.detected:
                assert cycle <= dropped.detected[fault]
