"""Hypothesis properties for the vector kernel's two load-bearing claims.

1. The two-mask word encoding is a lossless round-trip for *any* slot
   values at *any* width — including the X-dense patterns that word
   engines are most likely to get wrong (an ``ones & xs`` overlap or a
   dropped X collapses three-valued logic to two).
2. Axis choice is invisible in the results: for any circuit, fault
   universe and vector set, the fault-axis, pattern-axis and scheduled
   runs — scalar or numpy plane — produce identical detections and
   potential detections.  This is what makes the scheduler a pure
   performance knob and shard-level re-planning safe.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import make_circuit

from repro.circuit.generate import random_circuit
from repro.faults.universe import all_stuck_at_faults
from repro.logic.values import VALUES, X
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence
from repro.vector import plane
from repro.vector.kernel import VectorFaultSimulator
from repro.vector.packing import pack_values, unpack_values

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestPackingRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.sampled_from(VALUES), max_size=300))
    def test_round_trip_lossless(self, values):
        ones, xs = pack_values(values)
        assert ones & xs == 0, "the two masks must never overlap"
        assert unpack_values(ones, xs, len(values)) == values

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.sampled_from((X, X, X, X) + tuple(VALUES)),  # ~70% X slots
            min_size=1,
            max_size=300,
        )
    )
    def test_x_dense_round_trip(self, values):
        ones, xs = pack_values(values)
        assert unpack_values(ones, xs, len(values)) == values
        assert xs.bit_count() == sum(1 for value in values if value == X)


@st.composite
def vector_instance(draw):
    """A small sequential circuit, its full fault universe, vectors, and
    a word width — the axis-invariance quantifier."""
    seed = draw(st.integers(0, 2**20))
    rng = random.Random(seed)
    num_inputs = draw(st.integers(2, 4))
    circuit = random_circuit(
        rng,
        num_inputs=num_inputs,
        num_gates=draw(st.integers(4, 18)),
        num_dffs=draw(st.integers(0, 4)),
        num_outputs=draw(st.integers(1, 2)),
        name=f"vhyp{seed}",
    )
    vectors = draw(
        st.lists(
            st.tuples(*[st.sampled_from(VALUES) for _ in range(num_inputs)]),
            min_size=1,
            max_size=14,
        )
    )
    width = draw(st.sampled_from([1, 2, 5, 8, 16, 64]))
    return circuit, TestSequence(num_inputs, vectors), width


def _outcomes(result):
    return (result.detected, result.potentially_detected)


class TestAxisInvariance:
    @SLOW
    @given(vector_instance())
    def test_axis_choice_never_changes_detections(self, instance):
        circuit, tests, width = instance
        faults = all_stuck_at_faults(circuit)
        reference = None
        for axis in ("fault", "pattern", "auto"):
            numpy_paths = (False, True) if (
                plane.available() and width <= plane.MAX_PLANE_WIDTH
            ) else (False,)
            for use_numpy in numpy_paths:
                result = VectorFaultSimulator(
                    circuit,
                    faults,
                    word_width=width,
                    axis_mode=axis,
                    use_numpy=use_numpy,
                ).run(tests)
                if reference is None:
                    reference = _outcomes(result)
                else:
                    assert _outcomes(result) == reference, (
                        f"axis={axis} numpy={use_numpy} width={width}"
                    )

    @SLOW
    @given(st.integers(0, 2**16), st.sampled_from([3, 7, 16]))
    def test_width_never_changes_detections(self, seed, width):
        circuit = make_circuit(seed % 100, num_dffs=seed % 4)
        faults = all_stuck_at_faults(circuit)
        tests = TestSequence(
            len(circuit.inputs),
            random_sequence(circuit, 12, seed=seed).vectors,
        )
        wide = VectorFaultSimulator(circuit, faults, word_width=width).run(tests)
        narrow = VectorFaultSimulator(circuit, faults, word_width=1).run(tests)
        assert _outcomes(wide) == _outcomes(narrow)
