"""Structural-untestability analysis: SCOAP, pruning, bit-identity.

The load-bearing property: dropping pruned faults changes *nothing* about
the surviving faults — detections and potential detections are
bit-identical to a full-universe run, on every engine and under fault
sharding.  Everything else here pins the analyses the pruner rests on.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analyze import (
    INF,
    constant_values,
    observable_gates,
    prune_untestable,
    scoap,
)
from repro.analyze.untestable import CONSTANT_LINE, MASKED, UNOBSERVABLE
from repro.circuit.bench import parse_bench
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder
from repro.faults.transition import all_transition_faults
from repro.faults.universe import stuck_at_universe
from repro.harness.runner import run_stuck_at, run_transition
from repro.logic.tables import GateType
from repro.logic.values import ONE, VALUES, X, ZERO
from repro.patterns.random_gen import random_sequence
from repro.patterns.vectors import TestSequence

#: A clean cone to z plus an unobservable cone {u1, u2} (u2 dangles).
DANGLING_BENCH = """
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
u1 = OR(a, b)
u2 = NOT(u1)
"""


def _constant_circuit():
    """``z = AND(a, c0)`` with a declared constant-0 input: z is constant."""
    builder = CircuitBuilder("const")
    builder.add_input("a")
    builder.add_gate("c0", GateType.CONST0, [])
    builder.add_gate("z", GateType.AND, ["a", "c0"])
    builder.set_output("z")
    return builder.build()


def _constant_fanout_circuit():
    """A constant-0 stem with fanout 2: its stem faults survive collapsing,
    so the same-value stuck-at (and the slow-to-rise) must be pruned."""
    builder = CircuitBuilder("constfan")
    builder.add_input("a")
    builder.add_input("b")
    builder.add_gate("c0", GateType.CONST0, [])
    builder.add_gate("y", GateType.OR, ["a", "c0"])
    builder.add_gate("z", GateType.OR, ["b", "c0"])
    builder.set_output("y")
    builder.set_output("z")
    return builder.build()


class TestScoap:
    def test_primary_inputs_cost_one(self):
        circuit = load("s27")
        result = scoap(circuit)
        for pi in circuit.inputs:
            assert result.cc0[pi] == 1
            assert result.cc1[pi] == 1

    def test_not_gate_swaps_controllabilities(self):
        circuit = parse_bench("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n", name="inv")
        result = scoap(circuit)
        z = circuit.gate("z").index
        a = circuit.gate("a").index
        assert result.cc0[z] == result.cc1[a] + 1
        assert result.cc1[z] == result.cc0[a] + 1

    def test_outputs_observe_free(self):
        circuit = load("s27")
        result = scoap(circuit)
        for out in circuit.outputs:
            assert result.co[out] == 0

    def test_constant_line_unattainable_side_is_inf(self):
        circuit = _constant_circuit()
        result = scoap(circuit)
        c0 = circuit.gate("c0").index
        assert result.cc0[c0] < INF
        assert result.cc1[c0] == INF
        assert result.controllability(c0, ONE) == INF

    def test_inverter_chain_costs_finite(self):
        # Along a pure inverter path nothing needs sensitizing, so every
        # cost is finite and grows by one per stage.
        circuit = parse_bench(
            "INPUT(a)\nOUTPUT(z)\nm = NOT(a)\nz = NOT(m)\n", name="chain"
        )
        result = scoap(circuit)
        a = circuit.gate("a").index
        m = circuit.gate("m").index
        assert result.co[a] == result.co[m] + 1
        assert result.co[a] < INF

    def test_some_internal_lines_finite_on_s27(self):
        # SCOAP is reporting-only; conservative INF is allowed on state
        # loops, but a real benchmark must not collapse to all-INF.
        circuit = load("s27")
        result = scoap(circuit)
        assert any(0 < cost < INF for cost in result.co)
        assert any(cost < INF for cost in result.cc1)


class TestStructuralAnalyses:
    def test_observable_gates_excludes_dangling_cone(self):
        circuit = parse_bench(DANGLING_BENCH, name="dangling")
        observable = observable_gates(circuit)
        assert circuit.gate("z").index in observable
        assert circuit.gate("a").index in observable
        assert circuit.gate("u1").index not in observable
        assert circuit.gate("u2").index not in observable

    def test_constant_values_propagate_declared_constants(self):
        circuit = _constant_circuit()
        constants = constant_values(circuit)
        assert constants[circuit.gate("c0").index] == ZERO
        assert constants[circuit.gate("z").index] == ZERO  # AND with 0
        assert constants[circuit.gate("a").index] == X

    def test_dffs_stay_unknown(self):
        # A DFF fed by a constant still powers up X; the analysis must not
        # assume the settled value (cycle-1 behaviour differs).
        builder = CircuitBuilder("ffconst")
        builder.add_gate("c1", GateType.CONST1, [])
        builder.add_dff("q", "c1")
        builder.add_input("a")
        builder.add_gate("z", GateType.AND, ["a", "q"])
        builder.set_output("z")
        circuit = builder.build()
        constants = constant_values(circuit)
        assert constants[circuit.gate("q").index] == X


class TestPruneReport:
    def test_unobservable_faults_pruned_with_reason(self):
        circuit = parse_bench(DANGLING_BENCH, name="dangling")
        report = prune_untestable(circuit, stuck_at_universe(circuit))
        unobservable = {circuit.gate("u1").index, circuit.gate("u2").index}
        assert report.pruned, "expected pruned faults on the dangling cone"
        for pruned in report.pruned:
            assert pruned.reason in (UNOBSERVABLE, CONSTANT_LINE, MASKED)
        # Collapsing may fold the cone's faults onto one representative
        # site, but every remaining cone fault must be pruned, none kept.
        assert {p.fault.gate for p in report.pruned} <= unobservable
        for fault in report.kept:
            assert fault.gate not in unobservable

    def test_constant_line_faults_pruned(self):
        circuit = _constant_fanout_circuit()
        report = prune_untestable(circuit, stuck_at_universe(circuit))
        reasons = {p.reason for p in report.pruned}
        assert CONSTANT_LINE in reasons
        c0 = circuit.gate("c0").index
        from repro.faults.model import FaultKind

        # Stuck-at-0 on a constant-0 stem is the faulty machine equal to
        # the good one; stuck-at-1 on it is detectable and must be kept.
        assert any(
            p.fault.gate == c0 and p.fault.kind is FaultKind.STUCK_AT_0
            for p in report.pruned
        )
        assert all(
            not (fault.gate == c0 and fault.kind is FaultKind.STUCK_AT_0)
            for fault in report.kept
        )

    def test_survivors_keep_universe_order(self):
        circuit = load("s386")
        universe = stuck_at_universe(circuit)
        report = prune_untestable(circuit, universe)
        positions = {fault: i for i, fault in enumerate(universe)}
        kept_positions = [positions[fault] for fault in report.kept]
        assert kept_positions == sorted(kept_positions)

    def test_report_arithmetic(self):
        circuit = parse_bench(DANGLING_BENCH, name="dangling")
        universe = stuck_at_universe(circuit)
        report = prune_untestable(circuit, universe)
        assert report.total == len(universe)
        assert report.total == len(report.kept) + len(report.pruned)
        assert 0.0 <= report.reduction <= 1.0
        assert "pruned" in report.summary()

    def test_transition_pruning_only_safe_directions(self):
        # STR on a constant-0 line is prunable; STR on a constant-1 line
        # must be KEPT (the X power-up state can still expose it).
        from repro.faults.model import FaultKind

        circuit = _constant_fanout_circuit()
        report = prune_untestable(circuit, all_transition_faults(circuit))
        constant_pruned = [p for p in report.pruned if p.reason == CONSTANT_LINE]
        assert constant_pruned, "expected slow-to-rise faults on the constant-0 stem"
        c0 = circuit.gate("c0").index
        for pruned in constant_pruned:
            gate = circuit.gates[pruned.fault.gate]
            line = (
                pruned.fault.gate
                if pruned.fault.pin < 0
                else gate.fanin[pruned.fault.pin]
            )
            assert line == c0
            assert pruned.fault.kind is FaultKind.SLOW_TO_RISE
        # The mirror direction (slow-to-fall on the constant-0 line) must
        # be kept: the X power-up state can still expose it.
        kept_on_c0 = [
            fault
            for fault in report.kept
            if (
                fault.gate
                if fault.pin < 0
                else circuit.gates[fault.gate].fanin[fault.pin]
            )
            == c0
        ]
        assert any(f.kind is FaultKind.SLOW_TO_FALL for f in kept_on_c0)


class TestBitIdentity:
    """Pruning must not change any surviving fault's outcome."""

    def _assert_identical(self, circuit, tests, engine="csim-MV"):
        universe = stuck_at_universe(circuit)
        report = prune_untestable(circuit, universe)
        full = run_stuck_at(circuit, tests, engine, faults=universe)
        pruned = run_stuck_at(circuit, tests, engine, faults=report.kept)
        kept = set(report.kept)
        assert pruned.detected == {
            fault: cycle for fault, cycle in full.detected.items() if fault in kept
        }
        assert pruned.potentially_detected == {
            fault: cycle
            for fault, cycle in full.potentially_detected.items()
            if fault in kept
        }
        # Soundness: nothing pruned was ever detected, even potentially.
        for entry in report.pruned:
            assert entry.fault not in full.detected
            assert entry.fault not in full.potentially_detected

    def test_s386_stuck_at(self):
        circuit = load("s386")
        tests = random_sequence(circuit, 48, seed=11)
        self._assert_identical(circuit, tests)

    def test_dangling_circuit_every_engine(self):
        circuit = parse_bench(DANGLING_BENCH, name="dangling")
        tests = random_sequence(circuit, 24, seed=5)
        for engine in ("csim", "csim-V", "csim-M", "csim-MV"):
            self._assert_identical(circuit, tests, engine)

    def test_transition_bit_identity(self):
        circuit = load("s386")
        tests = random_sequence(circuit, 32, seed=13)
        universe = all_transition_faults(circuit)
        report = prune_untestable(circuit, universe)
        full = run_transition(circuit, tests, faults=universe)
        pruned = run_transition(circuit, tests, faults=report.kept)
        kept = set(report.kept)
        assert pruned.detected == {
            fault: cycle for fault, cycle in full.detected.items() if fault in kept
        }
        for entry in report.pruned:
            assert entry.fault not in full.detected
            assert entry.fault not in full.potentially_detected

    def test_composes_with_jobs(self):
        circuit = load("s386")
        tests = random_sequence(circuit, 32, seed=17)
        kept = prune_untestable(circuit, stuck_at_universe(circuit)).kept
        serial = run_stuck_at(circuit, tests, "csim-MV", faults=kept)
        sharded = run_stuck_at(circuit, tests, "csim-MV", faults=kept, jobs=2)
        assert sharded.detected == serial.detected

    @settings(
        max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        seed=st.integers(0, 2**20),
        num_gates=st.integers(6, 20),
        num_dffs=st.integers(0, 3),
        vectors=st.integers(2, 10),
    )
    def test_random_circuits(self, seed, num_gates, num_dffs, vectors):
        rng = random.Random(seed)
        circuit = random_circuit(
            rng, num_inputs=3, num_gates=num_gates, num_dffs=num_dffs
        )
        values = [
            tuple(rng.choice(VALUES) for _ in circuit.inputs) for _ in range(vectors)
        ]
        tests = TestSequence(len(circuit.inputs), values)
        self._assert_identical(circuit, tests)


class TestPruneResume:
    def test_pruned_checkpoint_resumes_to_straight_result(self, tmp_path):
        from repro.robust import Budget, run_checkpointed

        circuit = load("s386")
        tests = random_sequence(circuit, 40, seed=23)
        kept = prune_untestable(circuit, stuck_at_universe(circuit)).kept
        straight = run_stuck_at(circuit, tests, "csim-MV", faults=kept)
        path = str(tmp_path / "ck.pkl")
        first = run_checkpointed(
            circuit,
            tests,
            faults=kept,
            checkpoint_path=path,
            budget=Budget(max_cycles=15),
        )
        assert first.truncated
        resumed = run_checkpointed(
            circuit, tests, faults=kept, checkpoint_path=path, resume=True
        )
        assert resumed.detected == straight.detected

    def test_pruned_checkpoint_rejects_full_universe_resume(self, tmp_path):
        # The fingerprint covers the fault list, so a checkpoint written
        # with pruned faults must not silently resume an unpruned run.
        from repro.robust import Budget, run_checkpointed
        from repro.robust.checkpoint import CheckpointError

        circuit = load("s386")
        tests = random_sequence(circuit, 40, seed=23)
        universe = stuck_at_universe(circuit)
        kept = prune_untestable(circuit, universe).kept
        path = str(tmp_path / "ck.pkl")
        run_checkpointed(
            circuit,
            tests,
            faults=kept,
            checkpoint_path=path,
            budget=Budget(max_cycles=15),
        )
        with pytest.raises(CheckpointError):
            run_checkpointed(
                circuit, tests, faults=universe, checkpoint_path=path, resume=True
            )
