"""ISCAS-89 .bench parser/writer tests, including round-trip properties."""

import random

import pytest

from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.generate import random_circuit
from repro.circuit.library import S27_BENCH
from repro.circuit.netlist import NetlistError
from repro.logic.tables import GateType


class TestParse:
    def test_s27_shape(self):
        circuit = parse_bench(S27_BENCH, "s27")
        assert len(circuit.inputs) == 4
        assert len(circuit.outputs) == 1
        assert len(circuit.dffs) == 3
        assert circuit.num_combinational == 10

    def test_comments_and_blank_lines_ignored(self):
        circuit = parse_bench(
            """
            # a comment
            INPUT(a)   # trailing comment
            OUTPUT(g)

            g = NOT(a)
            """
        )
        assert circuit.gate("g").gtype is GateType.NOT

    def test_case_insensitive_keywords(self):
        circuit = parse_bench("INPUT(a)\noutput(g)\ng = nand(a, a)\n")
        assert circuit.gate("g").gtype is GateType.NAND

    def test_buff_and_inv_aliases(self):
        circuit = parse_bench(
            "INPUT(a)\nOUTPUT(g)\nb = BUFF(a)\ng = INV(b)\n"
        )
        assert circuit.gate("b").gtype is GateType.BUF
        assert circuit.gate("g").gtype is GateType.NOT

    def test_unknown_keyword_rejected(self):
        with pytest.raises(NetlistError, match="unknown gate keyword"):
            parse_bench("INPUT(a)\nOUTPUT(g)\ng = FROB(a)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(NetlistError, match="cannot parse"):
            parse_bench("INPUT(a)\nOUTPUT(a)\nwhat is this\n")

    def test_dff_must_have_one_fanin(self):
        with pytest.raises(NetlistError, match="exactly one fanin"):
            parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(a, b)\n")

    def test_whitespace_tolerant(self):
        circuit = parse_bench("INPUT( a )\nOUTPUT( g )\ng   =  AND( a ,a )\n")
        assert circuit.gate("g").arity == 2


class TestWrite:
    def test_s27_roundtrip(self):
        original = parse_bench(S27_BENCH, "s27")
        text = write_bench(original)
        again = parse_bench(text, "s27")
        assert len(again) == len(original)
        for gate in original.gates:
            twin = again.gate(gate.name)
            assert twin.gtype is gate.gtype
            assert [again.gates[i].name for i in twin.fanin] == [
                original.gates[i].name for i in gate.fanin
            ]

    @pytest.mark.parametrize("seed", range(5))
    def test_random_circuit_roundtrip(self, seed):
        rng = random.Random(seed)
        circuit = random_circuit(rng, num_gates=20, num_dffs=3)
        again = parse_bench(write_bench(circuit), circuit.name)
        assert len(again) == len(circuit)
        assert {g.name for g in again.gates if g.is_output} == {
            g.name for g in circuit.gates if g.is_output
        }

    def test_macro_circuit_rejected(self):
        from repro.circuit.library import load
        from repro.circuit.macro import extract_macros

        macro = extract_macros(load("s27")).circuit
        with pytest.raises(NetlistError, match="no .bench form"):
            write_bench(macro)

    def test_writes_to_stream(self):
        import io

        circuit = parse_bench(S27_BENCH, "s27")
        stream = io.StringIO()
        text = write_bench(circuit, stream)
        assert stream.getvalue() == text


class TestParseFile:
    def test_parse_bench_file(self, tmp_path):
        from repro.circuit.bench import parse_bench_file

        path = tmp_path / "mini.bench"
        path.write_text("INPUT(a)\nOUTPUT(g)\ng = NOT(a)\n")
        circuit = parse_bench_file(str(path))
        assert circuit.name == "mini"
        assert circuit.gate("g").gtype is GateType.NOT
