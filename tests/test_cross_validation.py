"""The load-bearing test: every engine computes identical detections.

For randomized (circuit, fault-universe, test-sequence) instances, the
serial oracle, the PROOFS baseline, and every concurrent variant must agree
on the *exact* set of detected faults and the cycle of each first
detection.  Any divergence/convergence, scheduling, dropping, macro
translation or word-parallel bug shows up here.
"""

import random

import pytest

from repro.baselines.proofs import ProofsSimulator
from repro.baselines.serial import simulate_serial
from repro.circuit.generate import random_circuit
from repro.concurrent.engine import ConcurrentFaultSimulator
from repro.concurrent.options import CSIM, CSIM_M, CSIM_MV, CSIM_V
from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.patterns.random_gen import random_sequence

ALL_VARIANTS = (CSIM, CSIM_V, CSIM_M, CSIM_MV)


def _instance(seed):
    rng = random.Random(seed)
    circuit = random_circuit(
        rng,
        num_inputs=rng.randint(2, 5),
        num_gates=rng.randint(6, 25),
        num_dffs=rng.randint(0, 4),
        num_outputs=rng.randint(1, 3),
        name=f"xval{seed}",
    )
    collapse = seed % 3 != 0
    faults = (
        stuck_at_universe(circuit) if collapse else all_stuck_at_faults(circuit)
    )
    tests = random_sequence(
        circuit,
        rng.randint(4, 25),
        seed=seed * 7 + 1,
        x_probability=0.1 if seed % 4 == 0 else 0.0,
    )
    return circuit, faults, tests


@pytest.mark.parametrize("seed", range(20))
def test_concurrent_variants_match_serial(seed):
    circuit, faults, tests = _instance(seed)
    oracle = simulate_serial(circuit, tests.vectors, faults)
    for options in ALL_VARIANTS:
        result = ConcurrentFaultSimulator(circuit, faults, options).run(tests)
        assert result.detected == oracle.detected, options.variant_name


@pytest.mark.parametrize("seed", range(20))
def test_proofs_matches_serial(seed):
    circuit, faults, tests = _instance(seed)
    oracle = simulate_serial(circuit, tests.vectors, faults)
    result = ProofsSimulator(circuit, faults, word_size=8).run(tests)
    assert result.detected == oracle.detected


@pytest.mark.parametrize("word_size", [1, 2, 8, 32, 64, 256])
def test_proofs_word_size_irrelevant(word_size):
    circuit, faults, tests = _instance(5)
    oracle = simulate_serial(circuit, tests.vectors, faults)
    result = ProofsSimulator(circuit, faults, word_size=word_size).run(tests)
    assert result.detected == oracle.detected


def test_s27_full_agreement(s27, s27_tests):
    faults = stuck_at_universe(s27)
    oracle = simulate_serial(s27, s27_tests.vectors, faults)
    engines = [
        ConcurrentFaultSimulator(s27, faults, options).run(s27_tests)
        for options in ALL_VARIANTS
    ]
    engines.append(ProofsSimulator(s27, faults).run(s27_tests))
    for result in engines:
        assert result.detected == oracle.detected, result.engine
    # s27 with 50 random vectors detects most of its faults.
    assert oracle.coverage > 0.8


def test_dropping_disabled_still_matches(s27, s27_tests):
    faults = stuck_at_universe(s27)
    oracle = simulate_serial(s27, s27_tests.vectors, faults)
    result = ConcurrentFaultSimulator(
        s27, faults, CSIM_MV.with_(drop_detected=False)
    ).run(s27_tests)
    assert result.detected == oracle.detected


@pytest.mark.parametrize("seed", [3, 11])
def test_macro_cap_variations_match(seed):
    circuit, faults, tests = _instance(seed)
    oracle = simulate_serial(circuit, tests.vectors, faults)
    for cap in (1, 2, 3, 4, 6):
        result = ConcurrentFaultSimulator(
            circuit, faults, CSIM_MV.with_(macro_max_inputs=cap)
        ).run(tests)
        assert result.detected == oracle.detected, f"cap={cap}"


def test_combinational_only_circuits():
    rng = random.Random(123)
    circuit = random_circuit(rng, num_gates=15, num_dffs=0, name="comb")
    faults = stuck_at_universe(circuit)
    tests = random_sequence(circuit, 10, seed=5)
    oracle = simulate_serial(circuit, tests.vectors, faults)
    for options in ALL_VARIANTS:
        result = ConcurrentFaultSimulator(circuit, faults, options).run(tests)
        assert result.detected == oracle.detected
    assert ProofsSimulator(circuit, faults).run(tests).detected == oracle.detected
