"""Critical path tracing: local rules, stem analysis, deductive equality."""

import random

import pytest

from repro.baselines.cpt import cpt_detects, critical_lines, simulate_cpt
from repro.baselines.deductive import deductive_detects, simulate_deductive
from repro.circuit.generate import random_circuit
from repro.circuit.library import load
from repro.circuit.netlist import CircuitBuilder

from repro.faults.universe import all_stuck_at_faults, stuck_at_universe
from repro.logic.tables import GateType
from repro.logic.values import ONE, X, ZERO
from repro.patterns.random_gen import random_sequence


def _comb(seed, gates=15):
    rng = random.Random(seed)
    return random_circuit(rng, num_gates=gates, num_dffs=0, name=f"cpt{seed}")


class TestGuards:
    def test_sequential_rejected(self):
        with pytest.raises(ValueError, match="combinational-only"):
            cpt_detects(load("s27"), (ZERO, ZERO, ZERO, ZERO))

    def test_x_rejected(self):
        circuit = _comb(1)
        with pytest.raises(ValueError, match="two-valued"):
            cpt_detects(circuit, (X,) * len(circuit.inputs))


class TestLocalRules:
    def _and_circuit(self):
        builder = CircuitBuilder("and2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.AND, ["a", "b"])
        builder.set_output("g")
        return builder.build()

    def test_no_controlling_input_all_critical(self):
        circuit = self._and_circuit()
        g = circuit.index_of("g")
        _, pins, _ = critical_lines(circuit, (ONE, ONE))
        assert pins == {(g, 0), (g, 1)}

    def test_single_controlling_input_critical_alone(self):
        circuit = self._and_circuit()
        g = circuit.index_of("g")
        _, pins, _ = critical_lines(circuit, (ZERO, ONE))
        assert pins == {(g, 0)}

    def test_two_controlling_inputs_none_critical(self):
        circuit = self._and_circuit()
        _, pins, _ = critical_lines(circuit, (ZERO, ZERO))
        assert pins == set()

    def test_xor_inputs_always_critical(self):
        builder = CircuitBuilder("x2")
        builder.add_input("a")
        builder.add_input("b")
        builder.add_gate("g", GateType.XOR, ["a", "b"])
        builder.set_output("g")
        circuit = builder.build()
        g = circuit.index_of("g")
        _, pins, _ = critical_lines(circuit, (ZERO, ZERO))
        assert pins == {(g, 0), (g, 1)}


class TestStems:
    def test_self_masking_stem_not_critical(self):
        """g = XOR(a, a): both branches critical by local rules, but the
        stem a is self-masking — flipping it leaves g unchanged."""
        builder = CircuitBuilder("mask")
        builder.add_input("a")
        builder.add_gate("g", GateType.XOR, ["a", "a"])
        builder.set_output("g")
        circuit = builder.build()
        a = circuit.index_of("a")
        outs, pins, _ = critical_lines(circuit, (ONE,))
        assert a not in outs
        assert len(pins) == 2  # the branches are individually critical

    def test_multiple_path_stem_critical(self):
        """g = AND(a, NOT(NOT(a))): flipping a flips g — stem critical."""
        builder = CircuitBuilder("re")
        builder.add_input("a")
        builder.add_gate("n1", GateType.NOT, ["a"])
        builder.add_gate("n2", GateType.NOT, ["n1"])
        builder.add_gate("g", GateType.AND, ["a", "n2"])
        builder.set_output("g")
        circuit = builder.build()
        a = circuit.index_of("a")
        outs, _, _ = critical_lines(circuit, (ONE,))
        assert a in outs


class TestAgainstDeductive:
    @pytest.mark.parametrize("seed", range(10))
    def test_per_vector_equality(self, seed):
        """Exact stem analysis makes CPT's detections identical to
        deductive simulation's, vector for vector."""
        circuit = _comb(seed + 40, gates=18)
        faults = all_stuck_at_faults(circuit)
        rng = random.Random(seed)
        for _ in range(5):
            vector = tuple(rng.choice((ZERO, ONE)) for _ in circuit.inputs)
            assert cpt_detects(circuit, vector, faults) == deductive_detects(
                circuit, vector, faults
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_sequence_equality(self, seed):
        circuit = _comb(seed + 90)
        faults = stuck_at_universe(circuit)
        tests = random_sequence(circuit, 8, seed=seed)
        cpt = simulate_cpt(circuit, tests.vectors, faults)
        deductive = simulate_deductive(circuit, tests.vectors, faults)
        assert cpt.detected == deductive.detected

    def test_result_record(self):
        circuit = _comb(7)
        tests = random_sequence(circuit, 5, seed=2)
        result = simulate_cpt(circuit, tests.vectors)
        assert result.engine == "critical-path-tracing"
        assert result.counters.cycles == 5
        # CPT's cost is fault-count independent: far fewer fault
        # evaluations than one per (fault, vector).
        assert result.counters.fault_evaluations < result.num_faults * 5
